//! Multi-process execution: the worker pool behind
//! `cip-trace --transport tcp` and the per-rank entry point behind the
//! `cip-worker` binary.
//!
//! One OS process per rank. The driver ([`WorkerPool`]) spawns `k`
//! workers, each of which binds a mesh listener, dials the driver's
//! control socket, and announces itself with [`Ctrl::Hello`]. The
//! driver gossips the collected mesh addresses back
//! ([`Ctrl::Peers`]), the workers assemble the rank-to-rank TCP mesh
//! among themselves ([`cip_transport::tcp::connect_mesh`]), and from
//! then on the control sockets carry only batch assignments
//! ([`Ctrl::Run`]) and their outcomes ([`Ctrl::Done`]).
//!
//! A worker holds the full simulation (rebuilt deterministically from
//! the scenario name), so a [`RunSpec`] only needs the driver's mutable
//! state: the node assignment, the live-rank routing table, the
//! epoch base for [`SteppedMailbox`], and where the current search-tree
//! chain was induced. The node assignment changes exactly where the
//! tree chain resets (repartition and recovery), so replaying the chain
//! from `chain_start` under the shipped `node_parts` reproduces the
//! driver's incrementally refreshed tree bit for bit — the worker's
//! step inputs equal the in-process driver's, and so do the totals.
//!
//! Failure model: a worker whose fault plan kills its rank reports
//! [`RankBatchOutcome::Dead`] and then exits — the logical death is a
//! real process death. A worker that dies *without* reporting (crash,
//! `kill -9`) is detected by the driver as control-channel EOF and
//! folded in as `Dead` at step 0 of the batch, which surfaces as
//! [`cip_runtime::RuntimeError::RankLost`] and drives the same
//! recovery path.

use crate::trace::{scenario_config, TraceError};
use cip_contact::DtreeFilter;
use cip_core::SnapshotView;
use cip_dtree::{induce_recorded, refresh_recorded, DecisionTree, DtreeConfig};
use cip_runtime::{
    build_decomposition, execute_rank_steps, Decomposition, ExecOptions, FaultInjector, FaultPlan,
    KillSpec, MigrationPlan, Msg, RankBatchOutcome, RankResult, Schedule, StepInput,
    SteppedMailbox,
};
use cip_sim::SimResult;
use cip_telemetry::Recorder;
use cip_transport::frame::{read_frame, write_frame, ReadError};
use cip_transport::tcp::{bind_mesh, connect_mesh, mesh_mailbox};
use cip_transport::{
    ByteReader, ByteWriter, ChannelMailbox, Mailbox, MailboxConfig, TransportStats, Wire, WireError,
};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Contact capture tolerance used by every traced run (the same
/// constant the in-process driver hardcodes in its step inputs).
const TOLERANCE: f64 = 0.4;

// ---------------------------------------------------------------------
// Control protocol
// ---------------------------------------------------------------------

/// One batch assignment: everything a worker cannot derive from the
/// scenario itself. See the module docs for why this is sufficient.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// First snapshot index of the batch.
    pub start: u32,
    /// One past the last snapshot index.
    pub end: u32,
    /// Snapshot where the live search-tree chain was induced
    /// (`chain_start <= start`); the worker replays refreshes from
    /// there.
    pub chain_start: u32,
    /// Live rank count of this batch.
    pub live_k: u32,
    /// The live rank this worker plays.
    pub rank: u32,
    /// Epoch base for [`SteppedMailbox`]; strictly increasing across
    /// attempts so stale frames of aborted batches are dropped.
    pub epoch: u32,
    /// Node-to-part assignment (`u32::MAX` = unassigned), constant
    /// within a tree chain.
    pub node_parts: Vec<u32>,
    /// `route[live]` = original worker id playing live rank `live`.
    pub route: Vec<u32>,
    /// Per-step fault plans (`None` = clean step); same length as the
    /// batch.
    pub plans: Vec<Option<FaultPlan>>,
    /// Overlapped-repartition migrate stage riding this batch: the
    /// accepted [`MigrationPlan`]'s `moves` matrix (`live_k * live_k`
    /// rows, `moves[from * live_k + to]`), or `None` for no stage
    /// (DESIGN.md §6f).
    pub migrate: Option<Vec<Vec<u32>>>,
    /// Executor drain timeout, milliseconds.
    pub timeout_ms: u64,
    /// Executor repair rounds before declaring peers dead.
    pub retries: u32,
    /// Pipelined lookahead (the barrier oracle ships 1).
    pub lookahead: u32,
}

/// Messages on a worker's control socket, framed exactly like mesh
/// traffic ([`cip_transport::frame`]) so the corruption guarantees are
/// shared. Control corruption is fatal (there is no NACK layer here);
/// the driver treats it as a dead worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Ctrl {
    /// Worker -> driver: "rank `rank` is up, my mesh listener is at
    /// `mesh_addr`".
    Hello {
        /// The worker's original rank id.
        rank: u32,
        /// The worker's bound mesh listener address.
        mesh_addr: String,
    },
    /// Driver -> workers: every worker's mesh address, indexed by rank.
    Peers {
        /// `mesh_addrs[r]` = rank `r`'s listener.
        mesh_addrs: Vec<String>,
    },
    /// Driver -> worker: execute one batch.
    Run(RunSpec),
    /// Worker -> driver: the batch outcome plus cumulative transport
    /// counters (the driver folds the per-batch delta into telemetry).
    Done {
        /// How the rank ended the batch.
        outcome: RankBatchOutcome,
        /// Cumulative mesh-socket counters of this worker.
        stats: TransportStats,
    },
    /// Driver -> worker: shut down cleanly.
    Exit,
}

/// Frame tag of [`Ctrl::Hello`].
pub const TAG_HELLO: u8 = 1;
/// Frame tag of [`Ctrl::Peers`].
pub const TAG_PEERS: u8 = 2;
/// Frame tag of [`Ctrl::Run`].
pub const TAG_RUN: u8 = 3;
/// Frame tag of [`Ctrl::Done`].
pub const TAG_DONE: u8 = 4;
/// Frame tag of [`Ctrl::Exit`].
pub const TAG_EXIT: u8 = 5;

fn w_str(w: &mut ByteWriter<'_>, s: &str) {
    w.u32(s.len() as u32);
    for &b in s.as_bytes() {
        w.u8(b);
    }
}

fn r_str(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::Malformed { what: "string length exceeds payload" });
    }
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(r.u8()?);
    }
    String::from_utf8(bytes).map_err(|_| WireError::Malformed { what: "string is not utf-8" })
}

fn w_u32s(w: &mut ByteWriter<'_>, v: &[u32]) {
    w.u32(v.len() as u32);
    for &x in v {
        w.u32(x);
    }
}

fn r_u32s(r: &mut ByteReader<'_>) -> Result<Vec<u32>, WireError> {
    let count = r.u32()? as usize;
    if count * 4 > r.remaining() {
        return Err(WireError::Malformed { what: "u32 count exceeds payload" });
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(r.u32()?);
    }
    Ok(v)
}

fn w_u64s(w: &mut ByteWriter<'_>, v: &[u64]) {
    w.u32(v.len() as u32);
    for &x in v {
        w.u64(x);
    }
}

fn r_u64s(r: &mut ByteReader<'_>) -> Result<Vec<u64>, WireError> {
    let count = r.u32()? as usize;
    if count * 8 > r.remaining() {
        return Err(WireError::Malformed { what: "u64 count exceeds payload" });
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(r.u64()?);
    }
    Ok(v)
}

fn w_plan(w: &mut ByteWriter<'_>, p: &FaultPlan) {
    w.u64(p.seed);
    w.u16(p.drop_permille);
    w.u16(p.dup_permille);
    w.u16(p.delay_permille);
    w.u16(p.reorder_permille);
    match &p.kill {
        None => w.u8(0),
        Some(k) => {
            w.u8(1);
            w.u32(k.rank);
            w.u64(k.after_sends);
        }
    }
}

fn r_plan(r: &mut ByteReader<'_>) -> Result<FaultPlan, WireError> {
    let seed = r.u64()?;
    let drop_permille = r.u16()?;
    let dup_permille = r.u16()?;
    let delay_permille = r.u16()?;
    let reorder_permille = r.u16()?;
    let kill = match r.u8()? {
        0 => None,
        _ => Some(KillSpec { rank: r.u32()?, after_sends: r.u64()? }),
    };
    Ok(FaultPlan { seed, drop_permille, dup_permille, delay_permille, reorder_permille, kill })
}

fn w_result(w: &mut ByteWriter<'_>, res: &RankResult) {
    w.u32(res.pairs.len() as u32);
    for p in &res.pairs {
        w.u32(p.a);
        w.u32(p.b);
    }
    w_u64s(w, &res.halo_sent);
    w_u64s(w, &res.shipments_sent);
    w.u64(res.halo_msgs);
    w.u64(res.done_msgs);
    w.u64(res.ghost_mismatches as u64);
}

fn r_result(r: &mut ByteReader<'_>) -> Result<RankResult, WireError> {
    let count = r.u32()? as usize;
    if count * 8 > r.remaining() {
        return Err(WireError::Malformed { what: "pair count exceeds payload" });
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        pairs.push(cip_contact::ContactPair { a: r.u32()?, b: r.u32()? });
    }
    let halo_sent = r_u64s(r)?;
    let shipments_sent = r_u64s(r)?;
    Ok(RankResult {
        pairs,
        halo_sent,
        shipments_sent,
        halo_msgs: r.u64()?,
        done_msgs: r.u64()?,
        ghost_mismatches: r.u64()? as usize,
    })
}

fn w_results(w: &mut ByteWriter<'_>, v: &[RankResult]) {
    w.u32(v.len() as u32);
    for res in v {
        w_result(w, res);
    }
}

fn r_results(r: &mut ByteReader<'_>) -> Result<Vec<RankResult>, WireError> {
    let count = r.u32()? as usize;
    // A RankResult is never smaller than its three length fields plus
    // the three scalar counters.
    if count * 36 > r.remaining() {
        return Err(WireError::Malformed { what: "result count exceeds payload" });
    }
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(r_result(r)?);
    }
    Ok(v)
}

fn w_outcome(w: &mut ByteWriter<'_>, o: &RankBatchOutcome) {
    match o {
        RankBatchOutcome::Completed(done) => {
            w.u8(0);
            w_results(w, done);
        }
        RankBatchOutcome::Dead { done } => {
            w.u8(1);
            w_results(w, done);
        }
        RankBatchOutcome::Lost { done, partial, dead } => {
            w.u8(2);
            w_results(w, done);
            match partial {
                None => w.u8(0),
                Some(res) => {
                    w.u8(1);
                    w_result(w, res);
                }
            }
            w_u32s(w, dead);
        }
    }
}

fn r_outcome(r: &mut ByteReader<'_>) -> Result<RankBatchOutcome, WireError> {
    match r.u8()? {
        0 => Ok(RankBatchOutcome::Completed(r_results(r)?)),
        1 => Ok(RankBatchOutcome::Dead { done: r_results(r)? }),
        2 => {
            let done = r_results(r)?;
            let partial = match r.u8()? {
                0 => None,
                _ => Some(r_result(r)?),
            };
            let dead = r_u32s(r)?;
            Ok(RankBatchOutcome::Lost { done, partial, dead })
        }
        _ => Err(WireError::Malformed { what: "unknown outcome variant" }),
    }
}

impl Wire for Ctrl {
    fn tag(&self) -> u8 {
        match self {
            Ctrl::Hello { .. } => TAG_HELLO,
            Ctrl::Peers { .. } => TAG_PEERS,
            Ctrl::Run(_) => TAG_RUN,
            Ctrl::Done { .. } => TAG_DONE,
            Ctrl::Exit => TAG_EXIT,
        }
    }

    fn src_rank(&self) -> u32 {
        match self {
            Ctrl::Hello { rank, .. } => *rank,
            _ => 0,
        }
    }

    fn step(&self) -> u32 {
        0
    }

    fn seq(&self) -> u64 {
        0
    }

    fn encode_payload(&self, w: &mut ByteWriter<'_>) {
        match self {
            Ctrl::Hello { mesh_addr, .. } => w_str(w, mesh_addr),
            Ctrl::Peers { mesh_addrs } => {
                w.u32(mesh_addrs.len() as u32);
                for a in mesh_addrs {
                    w_str(w, a);
                }
            }
            Ctrl::Run(spec) => {
                w.u32(spec.start);
                w.u32(spec.end);
                w.u32(spec.chain_start);
                w.u32(spec.live_k);
                w.u32(spec.rank);
                w.u32(spec.epoch);
                w.u64(spec.timeout_ms);
                w.u32(spec.retries);
                w.u32(spec.lookahead);
                w_u32s(w, &spec.node_parts);
                w_u32s(w, &spec.route);
                w.u32(spec.plans.len() as u32);
                for p in &spec.plans {
                    match p {
                        None => w.u8(0),
                        Some(plan) => {
                            w.u8(1);
                            w_plan(w, plan);
                        }
                    }
                }
                match &spec.migrate {
                    None => w.u8(0),
                    Some(moves) => {
                        w.u8(1);
                        w.u32(moves.len() as u32);
                        for row in moves {
                            w_u32s(w, row);
                        }
                    }
                }
            }
            Ctrl::Done { outcome, stats } => {
                w_outcome(w, outcome);
                w.u64(stats.bytes_sent);
                w.u64(stats.bytes_recv);
                w.u64(stats.frames_sent);
                w.u64(stats.frames_recv);
                w.u64(stats.recv_corrupt);
            }
            Ctrl::Exit => {}
        }
    }

    fn decode_payload(
        tag: u8,
        from: u32,
        _step: u32,
        _seq: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError> {
        match tag {
            TAG_HELLO => Ok(Ctrl::Hello { rank: from, mesh_addr: r_str(r)? }),
            TAG_PEERS => {
                let count = r.u32()? as usize;
                if count * 4 > r.remaining() {
                    return Err(WireError::Malformed { what: "peer count exceeds payload" });
                }
                let mut mesh_addrs = Vec::with_capacity(count);
                for _ in 0..count {
                    mesh_addrs.push(r_str(r)?);
                }
                Ok(Ctrl::Peers { mesh_addrs })
            }
            TAG_RUN => {
                let start = r.u32()?;
                let end = r.u32()?;
                let chain_start = r.u32()?;
                let live_k = r.u32()?;
                let rank = r.u32()?;
                let epoch = r.u32()?;
                let timeout_ms = r.u64()?;
                let retries = r.u32()?;
                let lookahead = r.u32()?;
                let node_parts = r_u32s(r)?;
                let route = r_u32s(r)?;
                let count = r.u32()? as usize;
                if count > r.remaining() {
                    return Err(WireError::Malformed { what: "plan count exceeds payload" });
                }
                let mut plans = Vec::with_capacity(count);
                for _ in 0..count {
                    plans.push(match r.u8()? {
                        0 => None,
                        _ => Some(r_plan(r)?),
                    });
                }
                let migrate = match r.u8()? {
                    0 => None,
                    _ => {
                        let rows = r.u32()? as usize;
                        // Every row costs at least its 4-byte length.
                        if rows * 4 > r.remaining() {
                            return Err(WireError::Malformed {
                                what: "migrate row count exceeds payload",
                            });
                        }
                        let mut moves = Vec::with_capacity(rows);
                        for _ in 0..rows {
                            moves.push(r_u32s(r)?);
                        }
                        Some(moves)
                    }
                };
                Ok(Ctrl::Run(RunSpec {
                    start,
                    end,
                    chain_start,
                    live_k,
                    rank,
                    epoch,
                    node_parts,
                    route,
                    plans,
                    migrate,
                    timeout_ms,
                    retries,
                    lookahead,
                }))
            }
            TAG_DONE => {
                let outcome = r_outcome(r)?;
                let stats = TransportStats {
                    bytes_sent: r.u64()?,
                    bytes_recv: r.u64()?,
                    frames_sent: r.u64()?,
                    frames_recv: r.u64()?,
                    recv_corrupt: r.u64()?,
                };
                Ok(Ctrl::Done { outcome, stats })
            }
            TAG_EXIT => Ok(Ctrl::Exit),
            got => Err(WireError::BadTag { got }),
        }
    }
}

// ---------------------------------------------------------------------
// Driver side: the worker pool
// ---------------------------------------------------------------------

/// How to spawn a worker pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker (= initial rank) count.
    pub k: usize,
    /// Scenario name every worker rebuilds (see
    /// [`crate::trace::scenario_config`]).
    pub scenario: String,
    /// Snapshot count (the driver's, post-override — workers must
    /// simulate the identical trajectory).
    pub snapshots: usize,
    /// Mesh mailbox capacity per lane.
    pub capacity: usize,
    /// Control-listener bind address (`127.0.0.1:0` = loopback,
    /// OS-assigned port).
    pub bind: String,
    /// Worker executable; `None` resolves `CIP_WORKER_BIN`, then a
    /// `cip-worker` sibling of the current executable.
    pub worker_bin: Option<PathBuf>,
}

/// One live worker process and its control socket.
struct Worker {
    child: Child,
    ctrl: TcpStream,
}

/// `k` worker processes plus the driver-side control plumbing. Dropping
/// the pool shuts every worker down.
pub struct WorkerPool {
    workers: Vec<Option<Worker>>,
    last_stats: Vec<TransportStats>,
}

/// One batch assignment from the driver's point of view; per-rank
/// [`RunSpec`]s are derived from it.
#[derive(Debug)]
pub struct BatchSpec<'a> {
    /// First snapshot index.
    pub start: usize,
    /// One past the last snapshot index.
    pub end: usize,
    /// Where the live tree chain was induced.
    pub chain_start: usize,
    /// Live rank count.
    pub live_k: usize,
    /// Epoch base of this attempt.
    pub epoch: u32,
    /// Node assignment.
    pub node_parts: &'a [u32],
    /// Per-step fault plans.
    pub plans: Vec<Option<FaultPlan>>,
    /// Overlapped-repartition migrate stage riding this batch.
    pub migrate: Option<&'a MigrationPlan>,
    /// Executor drain timeout, milliseconds.
    pub timeout_ms: u64,
    /// Executor repair rounds.
    pub retries: u32,
    /// Pipelined lookahead.
    pub lookahead: usize,
}

/// Shorthand for the worker-protocol error variant.
fn werr(what: String) -> TraceError {
    TraceError::Worker { what }
}

fn resolve_worker_bin(explicit: Option<&Path>) -> PathBuf {
    if let Some(p) = explicit {
        return p.to_path_buf();
    }
    if let Ok(p) = std::env::var("CIP_WORKER_BIN") {
        return p.into();
    }
    match std::env::current_exe() {
        Ok(exe) => exe.with_file_name("cip-worker"),
        Err(_) => PathBuf::from("cip-worker"),
    }
}

impl WorkerPool {
    /// Spawn `cfg.k` worker processes and run the hello/peers
    /// handshake until the mesh is ready for batches.
    pub fn spawn(cfg: &PoolConfig) -> Result<Self, TraceError> {
        let listener = TcpListener::bind(&cfg.bind)
            .map_err(|e| werr(format!("bind control listener on {}: {e}", cfg.bind)))?;
        let addr =
            listener.local_addr().map_err(|e| werr(format!("control listener address: {e}")))?;
        let bin = resolve_worker_bin(cfg.worker_bin.as_deref());
        let mut children: Vec<Option<Child>> = Vec::with_capacity(cfg.k);
        for r in 0..cfg.k {
            let child = Command::new(&bin)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--rank")
                .arg(r.to_string())
                .arg("--ranks")
                .arg(cfg.k.to_string())
                .arg("--scenario")
                .arg(&cfg.scenario)
                .arg("--snapshots")
                .arg(cfg.snapshots.to_string())
                .arg("--capacity")
                .arg(cfg.capacity.to_string())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| werr(format!("spawn worker '{}': {e}", bin.display())))?;
            children.push(Some(child));
        }

        // Non-blocking accept with a deadline: a worker that crashes
        // before dialing (bad binary, failed dynamic link) must fail
        // the spawn, not hang it.
        listener
            .set_nonblocking(true)
            .map_err(|e| werr(format!("control listener non-blocking: {e}")))?;
        let handshake_deadline = Instant::now() + Duration::from_secs(120);
        let mut workers: Vec<Option<Worker>> = (0..cfg.k).map(|_| None).collect();
        let mut mesh_addrs = vec![String::new(); cfg.k];
        let mut payload = Vec::new();
        for _ in 0..cfg.k {
            let (mut s, _) = loop {
                match listener.accept() {
                    Ok(pair) => break pair,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() >= handshake_deadline {
                            return Err(werr(
                                "worker handshake timed out (did a worker die before connecting?)"
                                    .to_string(),
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => return Err(werr(format!("accept worker: {e}"))),
                }
            };
            s.set_nonblocking(false).ok();
            s.set_nodelay(true).ok();
            s.set_read_timeout(Some(Duration::from_secs(120))).ok();
            let msg = match read_frame::<Ctrl>(&mut s, &mut payload) {
                Ok((m, _, _)) => m,
                Err(e) => return Err(werr(format!("worker hello failed: {e:?}"))),
            };
            let Ctrl::Hello { rank, mesh_addr } = msg else {
                return Err(werr("worker spoke out of turn during the handshake".to_string()));
            };
            let r = rank as usize;
            if r >= cfg.k || workers[r].is_some() {
                return Err(werr(format!("unexpected hello from rank {rank}")));
            }
            let Some(child) = children[r].take() else {
                return Err(werr(format!("duplicate hello from rank {rank}")));
            };
            mesh_addrs[r] = mesh_addr;
            workers[r] = Some(Worker { child, ctrl: s });
        }

        let peers = Ctrl::Peers { mesh_addrs };
        let mut buf = Vec::new();
        for w in workers.iter_mut().flatten() {
            write_frame(&mut w.ctrl, &peers, 0, &mut buf)
                .map_err(|e| werr(format!("send peer list: {e}")))?;
        }
        Ok(Self { workers, last_stats: vec![TransportStats::default(); cfg.k] })
    }

    /// Run one batch across the live workers named by `route`
    /// (`route[live]` = worker id). Returns one outcome per live rank,
    /// ready for [`cip_runtime::collect_batch`]; a worker that cannot
    /// report (dead process, broken control channel) comes back as
    /// [`RankBatchOutcome::Dead`] at step 0. Per-batch transport byte
    /// deltas are folded into `rec`'s `transport.*` counters.
    pub fn execute_batch(
        &mut self,
        spec: &BatchSpec<'_>,
        route: &[u32],
        rec: &Recorder,
    ) -> Vec<RankBatchOutcome> {
        let mut buf = Vec::new();
        for (live, &wid) in route.iter().enumerate().take(spec.live_k) {
            let run = Ctrl::Run(RunSpec {
                start: spec.start as u32,
                end: spec.end as u32,
                chain_start: spec.chain_start as u32,
                live_k: spec.live_k as u32,
                rank: live as u32,
                epoch: spec.epoch,
                node_parts: spec.node_parts.to_vec(),
                route: route.to_vec(),
                plans: spec.plans.clone(),
                migrate: spec.migrate.map(|p| p.moves.clone()),
                timeout_ms: spec.timeout_ms,
                retries: spec.retries,
                lookahead: spec.lookahead as u32,
            });
            let wid = wid as usize;
            let ok = match self.workers.get_mut(wid).and_then(|w| w.as_mut()) {
                Some(w) => write_frame(&mut w.ctrl, &run, 0, &mut buf).is_ok(),
                None => false,
            };
            if !ok {
                self.kill(wid);
            }
        }

        // A worker is never slower than its own executor's give-up
        // budget plus the batch prep; anything beyond that is a dead
        // process, not a slow one.
        let steps = (spec.end - spec.start).max(1) as u64;
        let deadline = Duration::from_millis(
            60_000 + steps * spec.timeout_ms.max(1_000) * (u64::from(spec.retries) + 2),
        );
        let mut payload = Vec::new();
        let mut outcomes = Vec::with_capacity(spec.live_k);
        for &wid in route.iter().take(spec.live_k) {
            let wid = wid as usize;
            let outcome = match self.workers.get_mut(wid).and_then(|w| w.as_mut()) {
                None => RankBatchOutcome::Dead { done: Vec::new() },
                Some(w) => {
                    w.ctrl.set_read_timeout(Some(deadline)).ok();
                    match read_frame::<Ctrl>(&mut w.ctrl, &mut payload) {
                        Ok((Ctrl::Done { outcome, stats }, _, _)) => {
                            let prev = self.last_stats[wid];
                            rec.add(
                                "transport.bytes_sent",
                                stats.bytes_sent.saturating_sub(prev.bytes_sent),
                            );
                            rec.add(
                                "transport.bytes_recv",
                                stats.bytes_recv.saturating_sub(prev.bytes_recv),
                            );
                            self.last_stats[wid] = stats;
                            outcome
                        }
                        // EOF, timeout, corruption, or a non-Done
                        // frame: the worker is unusable — fold it in
                        // as dead and let recovery handle it.
                        _ => {
                            self.kill(wid);
                            RankBatchOutcome::Dead { done: Vec::new() }
                        }
                    }
                }
            };
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Shut down the given workers (by original worker id) — used when
    /// recovery removes their ranks from the computation.
    pub fn retire(&mut self, worker_ids: &[u32]) {
        for &wid in worker_ids {
            self.kill(wid as usize);
        }
    }

    /// Live worker count (diagnostics).
    pub fn live(&self) -> usize {
        self.workers.iter().flatten().count()
    }

    fn kill(&mut self, wid: usize) {
        let Some(slot) = self.workers.get_mut(wid) else { return };
        let Some(mut w) = slot.take() else { return };
        let mut buf = Vec::new();
        let _ = write_frame(&mut w.ctrl, &Ctrl::Exit, 0, &mut buf);
        let _ = w.ctrl.shutdown(Shutdown::Both);
        let _ = w.child.kill();
        let _ = w.child.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for wid in 0..self.workers.len() {
            self.kill(wid);
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Parsed `cip-worker` arguments.
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Driver control address to dial.
    pub connect: String,
    /// This worker's original rank.
    pub rank: usize,
    /// Total worker count (mesh size).
    pub ranks: usize,
    /// Scenario to rebuild.
    pub scenario: String,
    /// Snapshot-count override.
    pub snapshots: Option<usize>,
    /// Mesh mailbox capacity per lane.
    pub capacity: usize,
}

/// Owned per-step inputs staged for one batch (the worker's mirror of
/// the driver's prep).
struct Prepared {
    view: SnapshotView,
    elements: Vec<cip_contact::SurfaceElementInfo<3>>,
    bodies: Vec<u16>,
    decomposition: Decomposition,
}

/// The `cip-worker` main loop: handshake, then execute [`Ctrl::Run`]
/// batches until [`Ctrl::Exit`] or driver EOF. Returns `Ok` on clean
/// shutdown — including after this rank was killed by its fault plan,
/// in which case the outcome has already been reported and the caller
/// should simply exit (the process death *is* the simulated death).
pub fn run_worker(args: &WorkerArgs) -> Result<(), TraceError> {
    // Handshake before the (potentially slow) simulation rebuild, so a
    // worker that dies during setup is an ordinary mid-protocol EOF for
    // the driver rather than a never-connected hole in the handshake.
    let lst = bind_mesh("127.0.0.1:0").map_err(|e| werr(format!("bind mesh listener: {e}")))?;
    let mut ctrl = TcpStream::connect(&args.connect)
        .map_err(|e| werr(format!("dial driver at {}: {e}", args.connect)))?;
    ctrl.set_nodelay(true).ok();
    let mut buf = Vec::new();
    let hello = Ctrl::Hello { rank: args.rank as u32, mesh_addr: lst.addr.to_string() };
    write_frame(&mut ctrl, &hello, 0, &mut buf).map_err(|e| werr(format!("send hello: {e}")))?;

    let mut scfg = scenario_config(&args.scenario)?;
    if let Some(s) = args.snapshots {
        scfg.snapshots = s;
    }
    let sim = cip_sim::run(&scfg);

    let mut payload = Vec::new();
    let msg = match read_frame::<Ctrl>(&mut ctrl, &mut payload) {
        Ok((m, _, _)) => m,
        Err(e) => return Err(werr(format!("read peer list: {e:?}"))),
    };
    let Ctrl::Peers { mesh_addrs } = msg else {
        return Err(werr("expected the peer list after hello".to_string()));
    };
    let addrs: Vec<SocketAddr> = mesh_addrs
        .iter()
        .map(|a| a.parse().map_err(|e| werr(format!("bad mesh address '{a}': {e}"))))
        .collect::<Result<_, _>>()?;
    let node = connect_mesh(args.rank, args.ranks, lst, &addrs)
        .map_err(|e| werr(format!("connect mesh: {e}")))?;
    let cfg = MailboxConfig { capacity: args.capacity.max(1), recorder: Recorder::disabled() };
    let mut mesh =
        mesh_mailbox::<Msg>(node, &cfg).map_err(|e| werr(format!("mesh mailbox: {e}")))?;

    loop {
        let msg = match read_frame::<Ctrl>(&mut ctrl, &mut payload) {
            Ok((m, _, _)) => m,
            Err(ReadError::Eof) => break, // driver gone: clean exit
            Err(e) => return Err(werr(format!("control channel failed: {e:?}"))),
        };
        match msg {
            Ctrl::Run(spec) => {
                if abrupt_death_requested(args.rank) {
                    // Chaos hook: vanish without reporting — no Done,
                    // no clean shutdown — exactly like an external
                    // `kill -9` mid-protocol. The driver must
                    // synthesize the death from control-channel EOF.
                    std::process::exit(137);
                }
                let outcome = run_batch(&sim, &spec, &mut mesh);
                let died = matches!(outcome, RankBatchOutcome::Dead { .. });
                let done = Ctrl::Done { outcome, stats: mesh.stats() };
                write_frame(&mut ctrl, &done, 0, &mut buf)
                    .map_err(|e| werr(format!("report outcome: {e}")))?;
                if died {
                    // The logical kill becomes a real process death —
                    // in-flight mesh frames from this zombie are stale
                    // epochs by the time survivors re-run the step.
                    break;
                }
            }
            Ctrl::Exit => break,
            other => return Err(werr(format!("unexpected control message: {other:?}"))),
        }
    }
    Ok(())
}

/// Chaos hook: `CIP_WORKER_DIE=N` makes the worker spawned as original
/// rank `N` exit abruptly when its first batch assignment arrives,
/// without reporting an outcome. This exercises the driver's
/// EOF-synthesis path (`Dead` at step 0 → `RankLost` → recovery) the
/// same way an out-of-band `kill -9` would, but deterministically.
fn abrupt_death_requested(original_rank: usize) -> bool {
    std::env::var("CIP_WORKER_DIE").ok().as_deref() == Some(original_rank.to_string().as_str())
}

/// Execute one batch assignment: replay the driver's search-tree chain
/// under the shipped assignment, rebuild the step inputs exactly as the
/// in-process driver stages them, and run this rank's executor loop
/// over the epoch-tagged mesh.
fn run_batch(sim: &SimResult, spec: &RunSpec, mesh: &mut ChannelMailbox<Msg>) -> RankBatchOutcome {
    let (start, end) = (spec.start as usize, spec.end as usize);
    let chain_start = spec.chain_start as usize;
    let live_k = spec.live_k as usize;
    let rec = Recorder::disabled();
    let dcfg = DtreeConfig::search_tree();

    // Tree-chain replay: `node_parts` is constant within a chain (it
    // only changes where the driver resets the chain), so inducing at
    // `chain_start` and refreshing forward reproduces the driver's
    // incrementally refreshed tree exactly.
    let mut chain: Option<DecisionTree<3>> = None;
    let mut trees: Vec<DecisionTree<3>> = Vec::with_capacity(end - start);
    let mut prepped: Vec<Prepared> = Vec::with_capacity(end - start);
    for j in chain_start..end {
        let view = SnapshotView::build(sim, j, 5);
        let labels = view.contact.labels_from_node_parts(&spec.node_parts);
        let t = match trees.last().or(chain.as_ref()) {
            None => induce_recorded(&view.contact.positions, &labels, live_k, &dcfg, &rec),
            Some(prev) => {
                refresh_recorded(prev, &view.contact.positions, &labels, live_k, &dcfg, &rec).0
            }
        };
        if j < start {
            chain = Some(t);
            continue;
        }
        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| spec.node_parts[n as usize]).collect();
        let elements = view.surface_elements(&spec.node_parts);
        let bodies = view.face_bodies();
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let decomposition = build_decomposition(
            &view.graph2.graph,
            &view.graph2.node_of_vertex,
            &asg_now,
            &owners,
            live_k,
        );
        trees.push(t);
        prepped.push(Prepared { view, elements, bodies, decomposition });
    }

    let filters: Vec<DtreeFilter<'_, 3>> =
        trees.iter().map(|t| DtreeFilter::new(t, live_k)).collect();
    let inputs: Vec<StepInput<'_, DtreeFilter<'_, 3>>> = prepped
        .iter()
        .zip(filters.iter())
        .map(|(p, filter)| StepInput {
            decomposition: &p.decomposition,
            positions: &p.view.mesh.points,
            elements: &p.elements,
            bodies: &p.bodies,
            filter,
            tolerance: TOLERANCE,
            recorder: rec.clone(),
        })
        .collect();
    let faults: Vec<FaultInjector> = spec
        .plans
        .iter()
        .map(|p| match p {
            None => FaultInjector::none(),
            Some(plan) => FaultInjector::with_plan(plan.clone()),
        })
        .collect();
    let opts = ExecOptions {
        timeout: Duration::from_millis(spec.timeout_ms),
        retries: spec.retries,
        schedule: Schedule::Pipelined { lookahead: (spec.lookahead as usize).max(1) },
        ..ExecOptions::default()
    };

    // Rebuild the migrate stage's plan from the shipped moves matrix; a
    // size mismatch (hostile or corrupt control data) degrades to no
    // stage rather than an out-of-bounds index in the prologue.
    let migrate = spec
        .migrate
        .as_ref()
        .filter(|moves| moves.len() == live_k * live_k)
        .map(|moves| MigrationPlan { k: live_k, moves: moves.clone() });

    let mut mb = SteppedMailbox::new(mesh, spec.epoch, &spec.route);
    execute_rank_steps(
        spec.rank as usize,
        live_k,
        &inputs,
        &faults,
        &opts,
        migrate.as_ref(),
        &mut mb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_transport::frame::{decode_frame, encode_frame};

    fn round_trip(msg: &Ctrl) {
        let mut buf = Vec::new();
        encode_frame(msg, 0, &mut buf);
        let (back, _, consumed) = decode_frame::<Ctrl>(&buf).expect("control frame decodes");
        assert_eq!(&back, msg);
        assert_eq!(consumed, buf.len());
    }

    fn sample_result(n: usize) -> RankResult {
        RankResult {
            pairs: vec![cip_contact::ContactPair { a: 1, b: 9 }; n],
            halo_sent: vec![3, 0, 7],
            shipments_sent: vec![0, 2, 0],
            halo_msgs: 5,
            done_msgs: 2,
            ghost_mismatches: 0,
        }
    }

    #[test]
    fn every_control_variant_round_trips() {
        round_trip(&Ctrl::Hello { rank: 3, mesh_addr: "127.0.0.1:45123".into() });
        round_trip(&Ctrl::Peers { mesh_addrs: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()] });
        round_trip(&Ctrl::Peers { mesh_addrs: Vec::new() });
        round_trip(&Ctrl::Run(RunSpec {
            start: 4,
            end: 8,
            chain_start: 2,
            live_k: 3,
            rank: 1,
            epoch: 12,
            node_parts: vec![0, 1, 2, u32::MAX],
            route: vec![0, 2, 3],
            plans: vec![
                None,
                Some(FaultPlan {
                    seed: 99,
                    drop_permille: 10,
                    dup_permille: 0,
                    delay_permille: 5,
                    reorder_permille: 0,
                    kill: Some(KillSpec { rank: 2, after_sends: 7 }),
                }),
            ],
            migrate: None,
            timeout_ms: 2000,
            retries: 3,
            lookahead: 2,
        }));
        // A 2x2 migrate stage rides the spec (empty diagonal rows).
        round_trip(&Ctrl::Run(RunSpec {
            start: 0,
            end: 2,
            chain_start: 0,
            live_k: 2,
            rank: 0,
            epoch: 0,
            node_parts: vec![0, 1],
            route: vec![0, 1],
            plans: vec![None, None],
            migrate: Some(vec![vec![], vec![5, 6, 7], vec![9], vec![]]),
            timeout_ms: 1000,
            retries: 1,
            lookahead: 1,
        }));
        round_trip(&Ctrl::Done {
            outcome: RankBatchOutcome::Completed(vec![sample_result(2), sample_result(0)]),
            stats: TransportStats {
                bytes_sent: 100,
                bytes_recv: 200,
                frames_sent: 3,
                frames_recv: 4,
                recv_corrupt: 1,
            },
        });
        round_trip(&Ctrl::Done {
            outcome: RankBatchOutcome::Dead { done: vec![sample_result(1)] },
            stats: TransportStats::default(),
        });
        round_trip(&Ctrl::Done {
            outcome: RankBatchOutcome::Lost {
                done: vec![sample_result(3)],
                partial: Some(sample_result(1)),
                dead: vec![2],
            },
            stats: TransportStats::default(),
        });
        round_trip(&Ctrl::Done {
            outcome: RankBatchOutcome::Lost { done: Vec::new(), partial: None, dead: vec![0, 1] },
            stats: TransportStats::default(),
        });
        round_trip(&Ctrl::Exit);
    }

    #[test]
    fn hostile_control_counts_are_rejected() {
        // A Peers frame claiming 2^30 strings in a tiny payload.
        let msg = Ctrl::Peers { mesh_addrs: Vec::new() };
        let mut buf = Vec::new();
        encode_frame(&msg, 0, &mut buf);
        let hdr = cip_transport::HEADER_LEN;
        buf[hdr..hdr + 4].copy_from_slice(&(1u32 << 30).to_le_bytes());
        let crc = cip_transport::wire::crc32(&[&buf[..26], &buf[hdr..]]);
        buf[26..30].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame::<Ctrl>(&buf).expect_err("hostile count rejected");
        assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn worker_bin_resolution_prefers_explicit_path() {
        let p = resolve_worker_bin(Some(Path::new("/tmp/custom-worker")));
        assert_eq!(p, PathBuf::from("/tmp/custom-worker"));
        // Without an explicit path we fall back to the environment or a
        // sibling — either way the file name is `cip-worker` unless the
        // env var overrides it.
        if std::env::var("CIP_WORKER_BIN").is_err() {
            let p = resolve_worker_bin(None);
            assert_eq!(p.file_name().and_then(|s| s.to_str()), Some("cip-worker"));
        }
    }
}
