//! Facade crate: re-exports the full contact/impact partitioning stack.
//!
//! See the README for a quickstart and `DESIGN.md` for the architecture.

pub use cip_contact as contact;
pub use cip_core as core;
pub use cip_dtree as dtree;
pub use cip_geom as geom;
pub use cip_graph as graph;
pub use cip_mesh as mesh;
pub use cip_partition as partition;
pub use cip_runtime as runtime;
pub use cip_server as server;
pub use cip_sim as sim;
pub use cip_telemetry as telemetry;
pub use cip_transport as transport;

pub mod service;
pub mod trace;
pub mod worker;
