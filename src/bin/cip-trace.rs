//! `cip-trace` — run a simulation scenario with telemetry enabled and
//! export the timeline.
//!
//! Executes the full MCML+DT pipeline (partition → DT-friendly correction
//! → search tree → threaded rank executor → optional diffusion
//! repartitioning) with a live [`cip::telemetry::Recorder`], then writes
//!
//! * `trace.json` — chrome://tracing timeline, one lane per logical rank
//!   (open in `about:tracing` or <https://ui.perfetto.dev>),
//! * `summary.json` — executed totals + aggregated span/counter/histogram
//!   summary in the shared `cip-results-v1` envelope,
//!
//! and prints the summary table. The tool asserts that the telemetry
//! counters equal the executed `TrafficLog` totals exactly before writing
//! anything.
//!
//! Chaos mode (`--chaos SEED`) injects deterministic message faults into
//! the executor; `--kill STEP:RANK` kills a rank mid-run, and the driver
//! recovers by diffusion-repartitioning over the survivors (DESIGN.md
//! §6c). The `fault.*` / `recovery.*` counters land in `summary.json`.
//!
//! Repartition boundaries are planned in the background by default
//! (`--repartition-mode overlapped`, DESIGN.md §6f); `--repartition-mode
//! barrier` restores the stop-the-world oracle with bit-identical
//! totals.
//!
//! ```text
//! cip-trace --scenario head_on --k 8 --snapshots 20 --out results
//! cip-trace --scenario thick_plates --k 4 --no-repart
//! cip-trace --scenario tiny --k 4 --chaos 7 --kill 3:2
//! cip-trace --scenario head_on --k 8 --repartition-mode barrier --max-batch 4
//! cip-trace --list-scenarios
//! cip-trace --scenario head_on --k 4 --server 127.0.0.1:PORT   # job client
//! ```
//!
//! With `--server ADDR`, the run is submitted as a job to a running
//! `cip-serve` instead of executing in-process; the deterministic totals
//! come back over the wire (bit-identical to a local run) and land in
//! `totals.json`.

use cip::service::{JobRequest, TraceTotals};
use cip::trace::{run_traced, ChaosOptions, TraceOptions, TransportKind};
use cip_runtime::{RepartitionMode, Schedule};
use cip_server::{Client, ClientConfig, JobOutcome};
use cip_sim::scenarios;

struct Args {
    opts: TraceOptions,
    out_dir: String,
    /// Submit to a running `cip-serve` at this address instead of
    /// executing in-process.
    server: Option<String>,
    /// Client retry/timeout policy for `--server` mode.
    client: ClientConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        opts: TraceOptions::default(),
        out_dir: "results".to_string(),
        server: None,
        client: ClientConfig::default(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scenario" if i + 1 < argv.len() => {
                args.opts.scenario = argv[i + 1].clone();
                i += 2;
            }
            "--k" if i + 1 < argv.len() => {
                args.opts.k = argv[i + 1].parse().expect("--k takes an integer");
                i += 2;
            }
            "--snapshots" if i + 1 < argv.len() => {
                args.opts.snapshots =
                    Some(argv[i + 1].parse().expect("--snapshots takes an integer"));
                i += 2;
            }
            "--seed" if i + 1 < argv.len() => {
                args.opts.seed = argv[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--period" if i + 1 < argv.len() => {
                args.opts.repartition_period =
                    Some(argv[i + 1].parse().expect("--period takes an integer"));
                i += 2;
            }
            "--no-repart" => {
                args.opts.repartition_period = None;
                i += 1;
            }
            "--out" if i + 1 < argv.len() => {
                args.out_dir = argv[i + 1].clone();
                i += 2;
            }
            "--chaos" if i + 1 < argv.len() => {
                let seed = argv[i + 1].parse().expect("--chaos takes an integer seed");
                args.opts.chaos.get_or_insert_with(ChaosOptions::default).seed = seed;
                i += 2;
            }
            "--kill" if i + 1 < argv.len() => {
                let spec = &argv[i + 1];
                let (step, rank) = spec
                    .split_once(':')
                    .and_then(|(s, r)| Some((s.parse().ok()?, r.parse().ok()?)))
                    .expect("--kill takes STEP:RANK");
                args.opts.chaos.get_or_insert_with(ChaosOptions::default).kill = Some((step, rank));
                i += 2;
            }
            "--schedule" if i + 1 < argv.len() => {
                args.opts.schedule = parse_schedule(&argv[i + 1]);
                i += 2;
            }
            "--max-batch" if i + 1 < argv.len() => {
                let n: usize = argv[i + 1].parse().unwrap_or(0);
                if n < 1 {
                    eprintln!("--max-batch takes an integer >= 1, got '{}'", argv[i + 1]);
                    std::process::exit(2);
                }
                args.opts.max_batch = n;
                i += 2;
            }
            "--repartition-mode" if i + 1 < argv.len() => {
                args.opts.repartition_mode = match argv[i + 1].as_str() {
                    "barrier" => RepartitionMode::Barrier,
                    "overlapped" => RepartitionMode::Overlapped,
                    other => {
                        eprintln!("--repartition-mode takes barrier or overlapped, got '{other}'");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--transport" if i + 1 < argv.len() => {
                args.opts.transport = parse_transport(&argv[i + 1]);
                i += 2;
            }
            "--server" if i + 1 < argv.len() => {
                args.server = Some(argv[i + 1].clone());
                i += 2;
            }
            "--client-retries" if i + 1 < argv.len() => {
                args.client.retries =
                    argv[i + 1].parse().expect("--client-retries takes an integer");
                i += 2;
            }
            "--client-timeout-ms" if i + 1 < argv.len() => {
                let ms: u64 =
                    argv[i + 1].parse().expect("--client-timeout-ms takes an integer >= 1");
                args.client.read_timeout = Some(std::time::Duration::from_millis(ms.max(1)));
                i += 2;
            }
            "--retry-seed" if i + 1 < argv.len() => {
                args.client.seed = argv[i + 1].parse().expect("--retry-seed takes an integer");
                i += 2;
            }
            "--list-scenarios" => {
                for d in scenarios::list() {
                    println!("{:<16} {}", d.name, d.summary);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: cip-trace [--scenario NAME] [--list-scenarios] [--k K] \
                     [--snapshots N] [--seed N] \
                     [--period N | --no-repart] [--chaos SEED] [--kill STEP:RANK] \
                     [--schedule barrier|pipelined[:LOOKAHEAD]] [--max-batch N>=1] \
                     [--repartition-mode barrier|overlapped] \
                     [--transport inproc|tcp-threads[:BIND]|tcp[:BIND]] \
                     [--server ADDR:PORT] [--client-retries N] [--client-timeout-ms N] \
                     [--retry-seed N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Parses `inproc` (the in-memory oracle), `tcp-threads[:BIND]` (rank
/// threads over loopback sockets), or `tcp[:BIND]` (one `cip-worker`
/// process per rank; the worker binary comes from `$CIP_WORKER_BIN` or
/// sits next to `cip-trace`).
fn parse_transport(spec: &str) -> TransportKind {
    let default_bind = "127.0.0.1:0";
    match spec {
        "inproc" => TransportKind::InProcess,
        "tcp-threads" => TransportKind::TcpThreads { bind: default_bind.to_string() },
        "tcp" => TransportKind::Workers { bind: default_bind.to_string(), worker_bin: None },
        other => {
            if let Some(bind) = other.strip_prefix("tcp-threads:") {
                TransportKind::TcpThreads { bind: bind.to_string() }
            } else if let Some(bind) = other.strip_prefix("tcp:") {
                TransportKind::Workers { bind: bind.to_string(), worker_bin: None }
            } else {
                eprintln!(
                    "--transport takes inproc, tcp-threads[:BIND], or tcp[:BIND], got '{spec}'"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Parses `barrier`, `pipelined`, or `pipelined:N` (N = lookahead).
fn parse_schedule(spec: &str) -> Schedule {
    match spec {
        "barrier" => Schedule::Barrier,
        "pipelined" => Schedule::pipelined(),
        other => match other.strip_prefix("pipelined:").and_then(|n| n.parse().ok()) {
            Some(lookahead) => Schedule::Pipelined { lookahead },
            None => {
                eprintln!("--schedule takes barrier or pipelined[:LOOKAHEAD], got '{spec}'");
                std::process::exit(2);
            }
        },
    }
}

/// Client mode: submit the run as a job to a `cip-serve` instance, wait
/// for the result, and write `totals.json` (the deterministic totals —
/// byte-identical to what the in-process oracle reports). With
/// `--client-retries`, transient failures (server restart, connection
/// reset) are retried with seeded backoff: the payload is resubmitted
/// idempotently and a completed result replays from the server's
/// content-hash cache bit-identically.
fn run_remote(addr: &str, args: &Args) {
    let mut client = Client::connect_with(addr, args.client.clone()).unwrap_or_else(|e| {
        eprintln!("cip-trace: {e}");
        std::process::exit(1);
    });
    let payload = JobRequest::new(args.opts.clone()).encode();
    eprintln!(
        "submitting job to {addr} (retries {}, timeout {:?}), waiting...",
        args.client.retries, args.client.read_timeout
    );
    let (outcome, cached) = client.run_job(&payload).unwrap_or_else(|e| {
        eprintln!("cip-trace: {e}");
        std::process::exit(1);
    });
    match outcome {
        JobOutcome::Done { payload } => {
            let totals = TraceTotals::decode(&payload).unwrap_or_else(|e| {
                eprintln!("cip-trace: bad result payload: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "job done{}: {} steps, halo {}, shipments {}, migrated {}, pairs {}",
                if cached { " (cache hit)" } else { "" },
                totals.steps,
                totals.halo,
                totals.shipments,
                totals.migrated,
                totals.contact_pairs
            );
            println!("{}", totals.to_json());
            let dir = std::path::Path::new(&args.out_dir);
            std::fs::create_dir_all(dir).expect("create output directory");
            let path = dir.join("totals.json");
            std::fs::write(&path, totals.to_json()).expect("write totals.json");
            eprintln!("wrote {}", path.display());
        }
        JobOutcome::Failed { reason } => {
            eprintln!("cip-trace: job failed: {reason}");
            std::process::exit(1);
        }
        JobOutcome::Cancelled => {
            eprintln!("cip-trace: job was cancelled");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Err(e) = args.opts.validate() {
        eprintln!("cip-trace: {e}");
        std::process::exit(2);
    }
    if let Some(addr) = args.server.clone() {
        run_remote(&addr, &args);
        return;
    }
    eprintln!("tracing scenario '{}' across {} rank threads...", args.opts.scenario, args.opts.k);
    let report = run_traced(&args.opts).unwrap_or_else(|e| {
        eprintln!("cip-trace: {e}");
        std::process::exit(1);
    });
    report.verify_totals().expect("telemetry counters must equal the executed TrafficLog totals");

    eprintln!(
        "\nexecuted {} steps: halo {}, shipments {}, migrated {}, pairs {} \
         ({} repartitions, {} rank losses)",
        report.steps,
        report.halo,
        report.shipments,
        report.migrated,
        report.contact_pairs,
        report.repartitions,
        report.rank_losses
    );
    print!("{}", report.summary().render());

    let dir = std::path::Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).expect("create output directory");
    let trace_path = dir.join("trace.json");
    std::fs::write(&trace_path, report.chrome_trace()).expect("write trace.json");
    let summary_path = dir.join("summary.json");
    std::fs::write(&summary_path, report.summary_json()).expect("write summary.json");
    eprintln!(
        "\nwrote {} and {} (load the trace in about:tracing or ui.perfetto.dev)",
        trace_path.display(),
        summary_path.display()
    );
}
