//! `cip-serve` — the multi-tenant partition/trace job server.
//!
//! Binds a TCP listener, spawns a bounded worker pool, and serves
//! partition/trace jobs submitted on the versioned binary wire format
//! (`cip_server::protocol::JobMsg`). Each job is a canonical
//! `cip::service::JobRequest` payload; results are deterministic
//! `TraceTotals` bytes, so the content-hash cache answers repeated
//! submissions bit-identically without recomputation.
//!
//! The first stdout line is `listening on ADDR` — scripts bind to port 0
//! and parse the line to discover the real port. The process then serves
//! until stdin reaches EOF (or a `quit` line), which triggers a graceful
//! drain: admission stops, in-flight jobs get `--drain-ms` to finish
//! (stragglers are cancelled), workers join, and the final
//! `server.jobs.*` counters are printed to stderr — even when the accept
//! loop was blocked in `accept()` with no client in sight (shutdown
//! nudges it loose).
//!
//! ```text
//! cip-serve --bind 127.0.0.1:0 --workers 4
//! cip-trace --scenario head_on --k 4 --server 127.0.0.1:PORT
//! ```

use cip::service::TraceJobRunner;
use cip_server::{Server, ServerConfig};
use cip_telemetry::Recorder;
use std::io::BufRead;

struct Args {
    cfg: ServerConfig,
}

/// Reports a usage error and exits (exit code 2, like the other CLIs).
fn usage_error(msg: &str) -> ! {
    eprintln!("cip-serve: {msg}");
    std::process::exit(2);
}

/// Parses `--flag N` as an integer >= 1, or exits with a usage error.
fn positive(flag: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage_error(&format!("{flag} takes an integer >= 1, got '{value}'")),
    }
}

fn parse_args() -> Args {
    let mut args =
        Args { cfg: ServerConfig { recorder: Recorder::enabled(), ..ServerConfig::default() } };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--bind" if i + 1 < argv.len() => {
                args.cfg.bind = argv[i + 1].clone();
                i += 2;
            }
            "--workers" if i + 1 < argv.len() => {
                args.cfg.workers = positive("--workers", &argv[i + 1]);
                i += 2;
            }
            "--queue" if i + 1 < argv.len() => {
                args.cfg.queue_capacity = positive("--queue", &argv[i + 1]);
                i += 2;
            }
            "--deadline-ms" if i + 1 < argv.len() => {
                args.cfg.job_deadline =
                    Some(std::time::Duration::from_millis(
                        positive("--deadline-ms", &argv[i + 1]) as u64
                    ));
                i += 2;
            }
            "--drain-ms" if i + 1 < argv.len() => {
                let ms = match argv[i + 1].parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => usage_error(&format!(
                        "--drain-ms takes an integer >= 0, got '{}'",
                        argv[i + 1]
                    )),
                };
                args.cfg.drain_timeout = std::time::Duration::from_millis(ms);
                i += 2;
            }
            "--max-payload" if i + 1 < argv.len() => {
                args.cfg.max_payload = positive("--max-payload", &argv[i + 1]);
                i += 2;
            }
            "--cache-entries" if i + 1 < argv.len() => {
                args.cfg.cache_max_entries = positive("--cache-entries", &argv[i + 1]);
                i += 2;
            }
            "--cache-bytes" if i + 1 < argv.len() => {
                args.cfg.cache_max_bytes = positive("--cache-bytes", &argv[i + 1]);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: cip-serve [--bind ADDR:PORT] [--workers N>=1] [--queue N>=1] \
                     [--deadline-ms N>=1] [--drain-ms N>=0] [--max-payload BYTES>=1] \
                     [--cache-entries N>=1] [--cache-bytes BYTES>=1]"
                );
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut server = match Server::start(TraceJobRunner, &args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cip-serve: {e}");
            std::process::exit(1);
        }
    };
    // Scripts parse this exact line to discover the OS-assigned port.
    println!("listening on {}", server.addr());
    eprintln!(
        "cip-serve: {} workers, queue capacity {} (EOF or 'quit' on stdin stops the server)",
        args.cfg.workers, args.cfg.queue_capacity
    );

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    server.shutdown();
    let stats = server.stats();
    eprintln!(
        "cip-serve: shut down — submitted {}, completed {}, cached {}, cancelled {}, failed {}, \
         rejected {}, panicked {}, deadline-exceeded {}, evictions {}, respawned {}",
        stats.submitted,
        stats.completed,
        stats.cache_hits,
        stats.cancelled,
        stats.failed,
        stats.rejected,
        stats.panicked,
        stats.deadline_exceeded,
        stats.cache_evictions,
        stats.workers_respawned
    );
}
