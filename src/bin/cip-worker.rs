//! `cip-worker` — one rank of a multi-process traced run.
//!
//! Spawned by `cip-trace --transport tcp` (one process per rank), not
//! meant to be run by hand. The worker dials the driver's control
//! address, joins the rank-to-rank TCP mesh, and executes the batches
//! the driver assigns until it is told to exit — or until its fault
//! plan kills its rank, at which point the process exits for real and
//! the driver recovers over the survivors. See `cip::worker`.

use cip::worker::{run_worker, WorkerArgs};

fn parse_args() -> WorkerArgs {
    let mut args = WorkerArgs {
        connect: String::new(),
        rank: usize::MAX,
        ranks: 0,
        scenario: "tiny".to_string(),
        snapshots: None,
        capacity: 256,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" if i + 1 < argv.len() => {
                args.connect = argv[i + 1].clone();
                i += 2;
            }
            "--rank" if i + 1 < argv.len() => {
                args.rank = argv[i + 1].parse().expect("--rank takes an integer");
                i += 2;
            }
            "--ranks" if i + 1 < argv.len() => {
                args.ranks = argv[i + 1].parse().expect("--ranks takes an integer");
                i += 2;
            }
            "--scenario" if i + 1 < argv.len() => {
                args.scenario = argv[i + 1].clone();
                i += 2;
            }
            "--snapshots" if i + 1 < argv.len() => {
                args.snapshots = Some(argv[i + 1].parse().expect("--snapshots takes an integer"));
                i += 2;
            }
            "--capacity" if i + 1 < argv.len() => {
                args.capacity = argv[i + 1].parse().expect("--capacity takes an integer");
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (cip-worker is spawned by \
                     cip-trace --transport tcp)"
                );
                std::process::exit(2);
            }
        }
    }
    if args.connect.is_empty() || args.ranks == 0 || args.rank >= args.ranks {
        eprintln!(
            "usage: cip-worker --connect ADDR --rank R --ranks K --scenario NAME \
             [--snapshots N] [--capacity C]"
        );
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    if let Err(e) = run_worker(&args) {
        eprintln!("cip-worker rank {}: {e}", args.rank);
        std::process::exit(1);
    }
}
