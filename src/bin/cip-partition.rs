//! `cip-partition` — decompose a contact/impact mesh from the command
//! line.
//!
//! Reads a mesh (JSON serialization of `cip::mesh::Mesh<3>`), marks its
//! boundary surface as the contact surface (or a caller-supplied node
//! list), runs the full MCML+DT pipeline — two-constraint partitioning,
//! DT-friendly correction, search-tree induction — and writes the
//! per-node part assignment plus the search tree.
//!
//! ```text
//! cip-partition --demo demo-mesh.json          # write a sample input
//! cip-partition --mesh demo-mesh.json --k 16 \
//!     --out partition.json --dot tree.dot
//! ```

use cip::contact::{n_remote, DtreeFilter, SurfaceElementInfo};
use cip::core::{dt_friendly_correct, face_owner, quality_report, DtFriendlyConfig};
use cip::dtree::{induce, DtreeConfig};
use cip::geom::{Aabb, Point};
use cip::graph::{edge_cut, total_comm_volume, Partition};
use cip::mesh::graphs::{nodal_graph, NodalGraphOptions};
use cip::mesh::{extract_surface, generators, Mesh};
use cip::partition::{partition_kway, PartitionerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    k: usize,
    num_nodes: usize,
    num_contact_nodes: usize,
    /// Part of each mesh node (`u32::MAX` = node unused by live elements).
    node_parts: Vec<u32>,
    edge_cut: i64,
    fe_comm: u64,
    n_remote: u64,
    imbalance_fe: f64,
    imbalance_contact: f64,
    tree_nodes: usize,
}

struct Args {
    mesh: Option<String>,
    demo: Option<String>,
    k: usize,
    out: Option<String>,
    dot: Option<String>,
    seed: u64,
    friendly: bool,
}

fn parse_args() -> Args {
    let mut args =
        Args { mesh: None, demo: None, k: 8, out: None, dot: None, seed: 1, friendly: true };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--mesh" if i + 1 < argv.len() => {
                args.mesh = Some(argv[i + 1].clone());
                i += 2;
            }
            "--demo" if i + 1 < argv.len() => {
                args.demo = Some(argv[i + 1].clone());
                i += 2;
            }
            "--k" if i + 1 < argv.len() => {
                args.k = argv[i + 1].parse().expect("--k takes an integer");
                i += 2;
            }
            "--out" if i + 1 < argv.len() => {
                args.out = Some(argv[i + 1].clone());
                i += 2;
            }
            "--dot" if i + 1 < argv.len() => {
                args.dot = Some(argv[i + 1].clone());
                i += 2;
            }
            "--seed" if i + 1 < argv.len() => {
                args.seed = argv[i + 1].parse().expect("--seed takes an integer");
                i += 2;
            }
            "--no-friendly" => {
                args.friendly = false;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: cip-partition [--demo FILE] [--mesh FILE --k K] \
                     [--out FILE] [--dot FILE] [--seed N] [--no-friendly]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.demo {
        // Two stacked boxes make a minimal two-body contact problem.
        let mut mesh = generators::hex_box([8, 8, 2], Point::new([0.0, 0.0, 0.0]), [1.0; 3], 0);
        let upper = generators::hex_box([4, 4, 4], Point::new([2.0, 2.0, 2.5]), [1.0; 3], 1);
        mesh.append(&upper);
        std::fs::write(path, serde_json::to_string(&mesh).expect("serialize demo mesh"))
            .expect("write demo mesh");
        eprintln!("wrote demo mesh ({} nodes) to {path}", mesh.num_nodes());
        if args.mesh.is_none() {
            return;
        }
    }

    let Some(mesh_path) = &args.mesh else {
        eprintln!("--mesh is required (or --demo to generate an input); see --help");
        std::process::exit(2);
    };
    let data = std::fs::read_to_string(mesh_path).expect("read mesh file");
    // Accept either the JSON serialization or the `cipmesh 1` text format.
    let mesh: Mesh<3> = if data.trim_start().starts_with("cipmesh") {
        cip::mesh::read_text(&data).expect("parse cipmesh text")
    } else {
        serde_json::from_str(&data).expect("parse mesh JSON")
    };
    mesh.validate().expect("invalid mesh");
    let k = args.k;

    // Contact surface = boundary of the live mesh.
    let surface = extract_surface(&mesh);
    let mask = surface.contact_node_mask(mesh.num_nodes());
    eprintln!(
        "mesh: {} nodes, {} elements, {} surface faces, {} contact nodes",
        mesh.num_nodes(),
        mesh.num_elements(),
        surface.num_faces(),
        surface.num_contact_nodes()
    );

    // MCML+DT pipeline.
    let ng = nodal_graph(&mesh, &mask, NodalGraphOptions::default());
    let pcfg = PartitionerConfig::with_seed(args.seed);
    let mut asg = partition_kway(&ng.graph, k, &pcfg);
    if args.friendly {
        let positions: Vec<_> =
            ng.node_of_vertex.iter().map(|&n| mesh.points[n as usize]).collect();
        let stats =
            dt_friendly_correct(&ng.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
        eprintln!(
            "DT-friendly correction: {} regions, {} relabeled, {} refined",
            stats.regions, stats.relabeled, stats.refined
        );
    }
    let node_parts = ng.assignment_on_nodes(&asg);

    // Search tree + global-search stats.
    let contact_positions: Vec<Point<3>> =
        surface.contact_nodes.iter().map(|&n| mesh.points[n as usize]).collect();
    let labels: Vec<u32> = surface.contact_nodes.iter().map(|&n| node_parts[n as usize]).collect();
    let tree = induce(&contact_positions, &labels, k, &DtreeConfig::search_tree());
    let elements: Vec<SurfaceElementInfo<3>> = surface
        .faces
        .iter()
        .map(|sf| {
            let mut bbox = Aabb::empty();
            for &n in sf.face.nodes() {
                bbox.grow(&mesh.points[n as usize]);
            }
            SurfaceElementInfo { bbox, owner: face_owner(sf.face.nodes(), &node_parts) }
        })
        .collect();
    let shipped = n_remote(&elements, &DtreeFilter::new(&tree, k));

    let part = Partition::from_assignment(&ng.graph, k, asg.clone());
    eprint!("{}", quality_report(&ng.graph, &asg, k, Some(&tree)).render());
    let output = Output {
        k,
        num_nodes: mesh.num_nodes(),
        num_contact_nodes: surface.num_contact_nodes(),
        node_parts,
        edge_cut: edge_cut(&ng.graph, &asg),
        fe_comm: total_comm_volume(&ng.graph, &asg),
        n_remote: shipped,
        imbalance_fe: part.imbalance(0),
        imbalance_contact: part.imbalance(1),
        tree_nodes: tree.num_nodes(),
    };
    eprintln!(
        "k = {k}: cut {}, FEComm {}, NRemote {}, tree {} nodes, imbalance {:.3}/{:.3}",
        output.edge_cut,
        output.fe_comm,
        output.n_remote,
        output.tree_nodes,
        output.imbalance_fe,
        output.imbalance_contact
    );

    if let Some(path) = &args.dot {
        std::fs::write(path, tree.to_dot()).expect("write DOT file");
        eprintln!("wrote search tree to {path}");
    }
    match &args.out {
        Some(path) => {
            std::fs::write(path, serde_json::to_string_pretty(&output).expect("serialize"))
                .expect("write output");
            eprintln!("wrote partition to {path}");
        }
        None => println!("{}", serde_json::to_string(&output).expect("serialize")),
    }
}
