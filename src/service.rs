//! Partitioning-as-a-service: the glue between the generic
//! [`cip_server`] job machinery and the traced partition/execute
//! pipeline in [`crate::trace`].
//!
//! A job submission is a [`JobRequest`] — a versioned, deterministic
//! byte encoding of [`TraceOptions`] (minus the transport, which the
//! service pins to in-process ranks inside the worker thread). The
//! encoding is canonical: equal options produce equal bytes, so the
//! server's content-hash cache recognises repeated submissions and
//! answers them with the exact result bytes of the first run.
//!
//! The result payload is a [`TraceTotals`] — the deterministic
//! conservation totals of the run (the same numbers
//! [`crate::trace::TraceReport::verify_totals`] cross-checks against
//! telemetry). Timing-dependent artifacts (spans, chrome traces) stay
//! server-side; only bit-stable bytes cross the wire, which is what
//! makes cached and fresh replies indistinguishable.
//!
//! [`TraceJobRunner`] implements [`JobRunner`] on top of
//! [`Session`]: build → advance (with the job's
//! [`cip_runtime::CancelToken`] checked at every batch boundary, and
//! the server's per-job deadline threaded in as the session's time
//! budget) → totals. Each
//! server worker owns one [`SessionWorkspace`], so steady-state service
//! traffic reuses partitioner scratch instead of reallocating per job.

use crate::trace::{
    ChaosOptions, RunBudget, RunControl, Session, SessionWorkspace, TraceError, TraceOptions,
    TraceReport,
};
use cip_runtime::{RepartitionMode, Schedule};
use cip_server::{CatalogEntry, JobContext, JobError, JobRunner};
use cip_sim::scenarios;
use cip_transport::wire::{ByteReader, ByteWriter};
use cip_transport::WireError;

/// Payload format version; bump on any encoding change.
const REQUEST_VERSION: u8 = 1;
/// Result format version.
const TOTALS_VERSION: u8 = 1;

fn w_str(w: &mut ByteWriter<'_>, s: &str) {
    w.u32(s.len() as u32);
    for &b in s.as_bytes() {
        w.u8(b);
    }
}

fn r_str(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    let len = r.u32()? as usize;
    let mut bytes = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        bytes.push(r.u8()?);
    }
    String::from_utf8(bytes).map_err(|_| WireError::Malformed { what: "non-utf8 string" })
}

fn w_opt_u64(w: &mut ByteWriter<'_>, v: Option<u64>) {
    match v {
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
        None => w.u8(0),
    }
}

fn r_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>, WireError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(WireError::Malformed { what: "bad option tag" }),
    })
}

/// A job submission: what to run and how, in a canonical byte form.
///
/// Wraps the subset of [`TraceOptions`] that makes sense server-side —
/// everything except the transport, which the service fixes to
/// in-process ranks (each job runs entirely inside one worker thread).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The options to run. `opts.transport` is ignored by the service.
    pub opts: TraceOptions,
}

impl JobRequest {
    /// A request for `opts` (the transport field is not transmitted).
    pub fn new(opts: TraceOptions) -> Self {
        Self { opts }
    }

    /// The canonical byte encoding — the server's cache key input.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ByteWriter::new(&mut out);
        let o = &self.opts;
        w.u8(REQUEST_VERSION);
        w_str(&mut w, &o.scenario);
        w.u64(o.k as u64);
        w_opt_u64(&mut w, o.snapshots.map(|n| n as u64));
        w.u64(o.seed);
        w_opt_u64(&mut w, o.repartition_period.map(|n| n as u64));
        match &o.chaos {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                w.u64(c.seed);
                w.u16(c.drop_permille);
                w.u16(c.dup_permille);
                w.u16(c.delay_permille);
                w.u16(c.reorder_permille);
                match c.kill {
                    None => w.u8(0),
                    Some((step, rank)) => {
                        w.u8(1);
                        w.u64(step as u64);
                        w.u32(rank);
                    }
                }
                w.u64(c.timeout_ms);
                w.u32(c.retries);
            }
        }
        match o.schedule {
            Schedule::Barrier => w.u8(0),
            Schedule::Pipelined { lookahead } => {
                w.u8(1);
                w.u64(lookahead as u64);
            }
        }
        w.u64(o.max_batch as u64);
        w.u8(match o.repartition_mode {
            RepartitionMode::Barrier => 0,
            RepartitionMode::Overlapped => 1,
        });
        out
    }

    /// Decodes a request; rejects unknown versions and malformed bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version != REQUEST_VERSION {
            return Err(WireError::Malformed { what: "unsupported job request version" });
        }
        let scenario = r_str(&mut r)?;
        let k = r.u64()? as usize;
        let snapshots = r_opt_u64(&mut r)?.map(|n| n as usize);
        let seed = r.u64()?;
        let repartition_period = r_opt_u64(&mut r)?.map(|n| n as usize);
        let chaos = match r.u8()? {
            0 => None,
            1 => {
                let seed = r.u64()?;
                let drop_permille = r.u16()?;
                let dup_permille = r.u16()?;
                let delay_permille = r.u16()?;
                let reorder_permille = r.u16()?;
                let kill = match r.u8()? {
                    0 => None,
                    1 => Some((r.u64()? as usize, r.u32()?)),
                    _ => return Err(WireError::Malformed { what: "bad kill tag" }),
                };
                Some(ChaosOptions {
                    seed,
                    drop_permille,
                    dup_permille,
                    delay_permille,
                    reorder_permille,
                    kill,
                    timeout_ms: r.u64()?,
                    retries: r.u32()?,
                })
            }
            _ => return Err(WireError::Malformed { what: "bad chaos tag" }),
        };
        let schedule = match r.u8()? {
            0 => Schedule::Barrier,
            1 => Schedule::Pipelined { lookahead: r.u64()? as usize },
            _ => return Err(WireError::Malformed { what: "bad schedule tag" }),
        };
        let max_batch = r.u64()? as usize;
        let repartition_mode = match r.u8()? {
            0 => RepartitionMode::Barrier,
            1 => RepartitionMode::Overlapped,
            _ => return Err(WireError::Malformed { what: "bad repartition mode" }),
        };
        r.finish()?;
        Ok(Self {
            opts: TraceOptions {
                scenario,
                k,
                snapshots,
                seed,
                repartition_period,
                chaos,
                schedule,
                max_batch,
                repartition_mode,
                transport: Default::default(),
            },
        })
    }
}

/// The deterministic totals of one traced run — the job result payload.
///
/// These are exactly the conservation totals the in-process oracle
/// ([`crate::trace::run_traced`]) reports, so a byte-equal comparison
/// against a direct run is the service's end-to-end correctness check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceTotals {
    /// Ranks used.
    pub k: u64,
    /// Steps executed.
    pub steps: u64,
    /// Total executed halo traffic.
    pub halo: u64,
    /// Total executed element shipments.
    pub shipments: u64,
    /// Total nodes migrated by repartitioning.
    pub migrated: u64,
    /// Total contact pairs detected.
    pub contact_pairs: u64,
    /// Repartitions performed.
    pub repartitions: u64,
    /// Ranks lost to faults (each recovered over the survivors).
    pub rank_losses: u64,
}

impl TraceTotals {
    /// Extracts the deterministic totals from a finished report.
    pub fn from_report(report: &TraceReport) -> Self {
        Self {
            k: report.k as u64,
            steps: report.steps as u64,
            halo: report.halo,
            shipments: report.shipments,
            migrated: report.migrated,
            contact_pairs: report.contact_pairs,
            repartitions: report.repartitions as u64,
            rank_losses: report.rank_losses as u64,
        }
    }

    /// Canonical byte encoding (what the cache stores and replays).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = ByteWriter::new(&mut out);
        w.u8(TOTALS_VERSION);
        for v in [
            self.k,
            self.steps,
            self.halo,
            self.shipments,
            self.migrated,
            self.contact_pairs,
            self.repartitions,
            self.rank_losses,
        ] {
            w.u64(v);
        }
        out
    }

    /// Decodes a totals payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(payload);
        if r.u8()? != TOTALS_VERSION {
            return Err(WireError::Malformed { what: "unsupported totals version" });
        }
        let t = Self {
            k: r.u64()?,
            steps: r.u64()?,
            halo: r.u64()?,
            shipments: r.u64()?,
            migrated: r.u64()?,
            contact_pairs: r.u64()?,
            repartitions: r.u64()?,
            rank_losses: r.u64()?,
        };
        r.finish()?;
        Ok(t)
    }

    /// The totals as one stable JSON object (keys in fixed order) —
    /// what the CI smoke diff compares against the in-process oracle.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"k\":{},\"steps\":{},\"halo\":{},\"shipments\":{},",
                "\"migrated\":{},\"contact_pairs\":{},\"repartitions\":{},",
                "\"rank_losses\":{}}}"
            ),
            self.k,
            self.steps,
            self.halo,
            self.shipments,
            self.migrated,
            self.contact_pairs,
            self.repartitions,
            self.rank_losses
        )
    }
}

/// Per-worker scratch: one [`SessionWorkspace`] reused across jobs.
#[derive(Default)]
pub struct ServiceWorkspace {
    session: SessionWorkspace,
}

/// [`JobRunner`] that executes [`JobRequest`]s as traced sessions.
#[derive(Debug, Default, Clone, Copy)]
pub struct TraceJobRunner;

fn classify(e: TraceError) -> JobError {
    match e {
        TraceError::UnknownScenario { .. } | TraceError::Config(_) | TraceError::Wire(_) => {
            JobError::Invalid { reason: e.to_string() }
        }
        other => JobError::Failed { reason: other.to_string() },
    }
}

impl JobRunner for TraceJobRunner {
    type Workspace = ServiceWorkspace;

    fn workspace(&self) -> ServiceWorkspace {
        ServiceWorkspace::default()
    }

    fn run(
        &self,
        payload: &[u8],
        ctx: &JobContext,
        ws: &mut ServiceWorkspace,
    ) -> Result<Vec<u8>, JobError> {
        let req =
            JobRequest::decode(payload).map_err(|e| JobError::Invalid { reason: e.to_string() })?;
        let mut session = Session::build_with(&req.opts, &mut ws.session).map_err(classify)?;
        // The server's per-job deadline becomes the session's time
        // budget, so an overrunning trace stops cooperatively at a
        // batch boundary — the watchdog only has to force the issue for
        // runners that ignore their budget.
        let ctrl = RunControl {
            cancel: ctx.cancel.clone(),
            budget: RunBudget { max_time: ctx.deadline, ..RunBudget::default() },
        };
        match session.advance(&ctrl).map_err(classify)? {
            crate::trace::Advance::Cancelled => return Err(JobError::Cancelled),
            crate::trace::Advance::BudgetExhausted => {
                let limit_ms = ctx.deadline.map_or(0, |d| d.as_millis() as u64);
                return Err(JobError::DeadlineExceeded { limit_ms });
            }
            crate::trace::Advance::Finished => {}
        }
        let report = session.into_report();
        report.verify_totals().map_err(classify)?;
        Ok(TraceTotals::from_report(&report).encode())
    }

    fn catalog(&self) -> Vec<CatalogEntry> {
        scenarios::list()
            .iter()
            .map(|d| CatalogEntry { name: d.name.to_string(), summary: d.summary.to_string() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOptions;

    fn sample_opts() -> TraceOptions {
        TraceOptions::builder()
            .scenario("head_on")
            .k(3)
            .snapshots(4)
            .seed(7)
            .repartition_period(Some(2))
            .build()
            .expect("valid options")
    }

    #[test]
    fn job_request_roundtrips_and_is_canonical() {
        let req = JobRequest::new(sample_opts());
        let bytes = req.encode();
        let back = JobRequest::decode(&bytes).expect("decodes");
        assert_eq!(back.opts.scenario, "head_on");
        assert_eq!(back.opts.k, 3);
        assert_eq!(back.opts.snapshots, Some(4));
        assert_eq!(back.opts.repartition_period, Some(2));
        // Canonical: encoding the decoded request reproduces the bytes.
        assert_eq!(back.encode(), bytes);
        // And a different seed changes them.
        let mut other = sample_opts();
        other.seed = 8;
        assert_ne!(JobRequest::new(other).encode(), bytes);
    }

    #[test]
    fn chaos_options_roundtrip_through_the_payload() {
        let mut opts = sample_opts();
        opts.chaos = Some(ChaosOptions { kill: Some((3, 1)), ..ChaosOptions::default() });
        let bytes = JobRequest::new(opts.clone()).encode();
        let back = JobRequest::decode(&bytes).expect("decodes");
        assert_eq!(back.opts.chaos, opts.chaos);
    }

    #[test]
    fn totals_roundtrip_bit_exactly() {
        let t = TraceTotals {
            k: 3,
            steps: 12,
            halo: 999,
            shipments: 44,
            migrated: 17,
            contact_pairs: 5,
            repartitions: 2,
            rank_losses: 1,
        };
        let bytes = t.encode();
        assert_eq!(TraceTotals::decode(&bytes).expect("decodes"), t);
        let json = t.to_json();
        assert!(json.contains("\"halo\":999"), "{json}");
        assert!(json.contains("\"contact_pairs\":5"), "{json}");
    }

    #[test]
    fn malformed_payloads_are_rejected_not_fatal() {
        assert!(JobRequest::decode(&[]).is_err());
        assert!(JobRequest::decode(&[9, 0, 0]).is_err(), "unknown version");
        let mut bytes = JobRequest::new(sample_opts()).encode();
        bytes.push(0);
        assert!(JobRequest::decode(&bytes).is_err(), "trailing bytes");
        assert!(TraceTotals::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn catalog_mirrors_the_scenario_registry() {
        let entries = TraceJobRunner.catalog();
        assert_eq!(entries.len(), scenarios::list().len());
        assert!(entries.iter().any(|e| e.name == "head_on"));
    }
}
