//! Traced end-to-end execution — the engine behind the `cip-trace`
//! binary.
//!
//! Runs a simulation scenario through the full MCML+DT pipeline — §4.2
//! partitioning with DT-friendly correction, §4.1 search-tree induction
//! (incrementally refreshed between steps), the threaded rank executor,
//! and optional §4.3 diffusion repartitioning with executed migration —
//! with an **enabled** [`Recorder`] threaded through every layer. The
//! result is a chrome://tracing timeline (one lane per logical rank, the
//! driver on its own lane above them) and a flat summary whose traffic
//! counters equal the executed [`cip_runtime::TrafficLog`] exactly.

use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce_recorded, refresh_recorded, DecisionTree, DtreeConfig};
use cip_partition::{diffusion_repartition, partition_kway, PartitionerConfig};
use cip_runtime::{build_decomposition, build_migration_recorded, execute_step, StepInput};
use cip_sim::{scenarios, SimConfig};
use cip_telemetry::{export::Summary, Recorder};

/// What to run and how.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Scenario name (see [`scenario_config`] for the accepted names).
    pub scenario: String,
    /// Number of logical ranks.
    pub k: usize,
    /// Snapshot-count override (`None` = the scenario's default).
    pub snapshots: Option<usize>,
    /// Partitioner seed.
    pub seed: u64,
    /// Diffusion-repartition period (`None` = fixed decomposition).
    pub repartition_period: Option<usize>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            scenario: "head_on".to_string(),
            k: 4,
            snapshots: None,
            seed: 1,
            repartition_period: Some(10),
        }
    }
}

/// Resolves a scenario name to its simulation config. Accepted names:
/// `head_on`, `offset_strike`, `thick_plates`, `blunt_impactor`, and the
/// unit-test-sized `tiny`.
pub fn scenario_config(name: &str) -> Option<SimConfig> {
    match name {
        "head_on" => Some(scenarios::head_on()),
        "offset_strike" => Some(scenarios::offset_strike()),
        "thick_plates" => Some(scenarios::thick_plates()),
        "blunt_impactor" => Some(scenarios::blunt_impactor()),
        "tiny" => Some(SimConfig::tiny()),
        _ => None,
    }
}

/// A completed traced run: the recorder (still holding every event) plus
/// the executed totals the telemetry must agree with.
#[derive(Debug)]
pub struct TraceReport {
    /// The recorder that observed the run.
    pub recorder: Recorder,
    /// Ranks used.
    pub k: usize,
    /// Steps executed.
    pub steps: usize,
    /// Total executed halo traffic (sum of per-step
    /// [`cip_runtime::TrafficLog::total_halo`]).
    pub halo: u64,
    /// Total executed element shipments.
    pub shipments: u64,
    /// Total nodes migrated by repartitioning.
    pub migrated: u64,
    /// Total contact pairs detected.
    pub contact_pairs: u64,
    /// Repartitions performed.
    pub repartitions: usize,
}

impl TraceReport {
    /// The chrome://tracing JSON of the run.
    pub fn chrome_trace(&self) -> String {
        self.recorder.chrome_trace().expect("trace recorder is always enabled")
    }

    /// The aggregated span/counter/histogram summary.
    pub fn summary(&self) -> Summary {
        self.recorder.summary().expect("trace recorder is always enabled")
    }

    /// The executed totals as a JSON object (the `totals` field of
    /// `summary.json`).
    pub fn totals_json(&self) -> String {
        format!(
            concat!(
                "{{\"k\":{},\"steps\":{},\"halo\":{},\"shipments\":{},",
                "\"migrated\":{},\"contact_pairs\":{},\"repartitions\":{}}}"
            ),
            self.k,
            self.steps,
            self.halo,
            self.shipments,
            self.migrated,
            self.contact_pairs,
            self.repartitions,
        )
    }

    /// The full `summary.json` document: executed totals next to the
    /// telemetry summary, wrapped in the shared results envelope
    /// ([`cip_core::RESULTS_SCHEMA`]).
    pub fn summary_json(&self) -> String {
        let payload = format!(
            "{{\"totals\":{},\"telemetry\":{}}}",
            self.totals_json(),
            self.summary().to_json()
        );
        cip_core::results_document("trace-summary", &payload)
    }

    /// Verifies the acceptance invariant: the summary's traffic counters
    /// equal the executed totals exactly. Returns an error message
    /// naming the first mismatch.
    pub fn verify_totals(&self) -> Result<(), String> {
        let checks = [
            ("traffic.halo_units", self.halo),
            ("traffic.shipment_units", self.shipments),
            ("traffic.migrated_units", self.migrated),
        ];
        for (name, expect) in checks {
            let got = self.recorder.counter_value(name);
            if got != expect {
                return Err(format!("counter {name} = {got}, executed total = {expect}"));
            }
        }
        Ok(())
    }
}

/// Runs `opts` end to end with telemetry enabled.
///
/// Returns `Err` only for an unknown scenario name.
pub fn run_traced(opts: &TraceOptions) -> Result<TraceReport, String> {
    let mut scfg = scenario_config(&opts.scenario)
        .ok_or_else(|| format!("unknown scenario '{}'", opts.scenario))?;
    if let Some(s) = opts.snapshots {
        scfg.snapshots = s;
    }
    let sim = cip_sim::run(&scfg);
    let k = opts.k;

    let rec = Recorder::enabled();
    // Ranks own lanes 0..k; the driver thread sits above them.
    rec.set_lane(k as u32);
    rec.name_lane(k as u32, "driver");

    let mut pcfg = PartitionerConfig::with_seed(opts.seed);
    pcfg.recorder = rec.clone();

    // Initial MCML+DT decomposition on snapshot 0.
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &pcfg);
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let mut node_parts = view0.graph2.assignment_on_nodes(&asg);

    let dcfg = DtreeConfig::search_tree();
    let mut tree: Option<DecisionTree<3>> = None;
    let mut report = TraceReport {
        recorder: rec.clone(),
        k,
        steps: sim.len(),
        halo: 0,
        shipments: 0,
        migrated: 0,
        contact_pairs: 0,
        repartitions: 0,
    };

    for i in 0..sim.len() {
        let mut step_span = rec.span("trace.step").attr("step", i);
        let view = SnapshotView::build(&sim, i, 5);

        // §4.3 hybrid policy: periodic diffusion repartition + executed
        // migration.
        if let Some(period) = opts.repartition_period {
            if i > 0 && i % period == 0 {
                let old: Vec<u32> =
                    view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
                let fresh = diffusion_repartition(&view.graph2.graph, k, &old, &pcfg);
                let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
                let plan = build_migration_recorded(&node_parts, &new_node_parts, k, &rec);
                report.migrated += plan.total_moved();
                report.repartitions += 1;
                for (n, &p) in new_node_parts.iter().enumerate() {
                    if p != u32::MAX {
                        node_parts[n] = p;
                    }
                }
                // The decomposition changed: the old tree no longer
                // matches the labels, so induce from scratch.
                tree = None;
            }
        }

        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
        let elements = view.surface_elements(&node_parts);
        let bodies = view.face_bodies();
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let decomposition = build_decomposition(
            &view.graph2.graph,
            &view.graph2.node_of_vertex,
            &asg_now,
            &owners,
            k,
        );

        // Search tree: fresh induction on the first step (and after
        // repartitions), incremental refresh otherwise.
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let new_tree = match &tree {
            None => induce_recorded(&view.contact.positions, &labels, k, &dcfg, &rec),
            Some(t) => refresh_recorded(t, &view.contact.positions, &labels, k, &dcfg, &rec).0,
        };
        let filter = DtreeFilter::new(&new_tree, k);

        let out = execute_step(&StepInput {
            decomposition: &decomposition,
            positions: &view.mesh.points,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.4,
            recorder: rec.clone(),
        });
        assert_eq!(out.ghost_mismatches, 0, "step {i}: halo exchange delivered stale ghosts");
        report.halo += out.traffic.total_halo();
        report.shipments += out.traffic.total_shipments();
        report.contact_pairs += out.contact_pairs.len() as u64;
        step_span.set_attr("halo", out.traffic.total_halo());
        step_span.set_attr("shipments", out.traffic.total_shipments());
        step_span.set_attr("pairs", out.contact_pairs.len());
        tree = Some(new_tree);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_telemetry::json;

    fn tiny_report() -> TraceReport {
        run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(4),
            seed: 7,
            repartition_period: Some(2),
        })
        .expect("tiny scenario runs")
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err =
            run_traced(&TraceOptions { scenario: "bogus".to_string(), ..TraceOptions::default() });
        assert!(err.is_err());
        assert!(scenario_config("head_on").is_some());
        assert!(scenario_config("bogus").is_none());
    }

    #[test]
    fn summary_totals_match_traffic_log() {
        let report = tiny_report();
        report.verify_totals().expect("summary counters must equal executed totals");
        assert!(report.repartitions >= 1, "period 2 over 4 snapshots must repartition");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_rank_lanes() {
        let report = tiny_report();
        let trace = report.chrome_trace();
        json::validate(&trace).expect("chrome trace must be valid JSON");
        // One thread-name row per rank, plus the phase spans on them.
        for rank in 0..report.k {
            assert!(trace.contains(&format!("\"rank {rank}\"")), "missing lane for rank {rank}");
        }
        assert!(trace.contains("\"driver\""), "missing the driver lane label");
        for name in
            ["exec.halo", "exec.ship", "exec.drain", "exec.search", "dtree.induce", "trace.step"]
        {
            assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing span {name}");
        }
    }

    #[test]
    fn summary_json_is_valid_and_self_describing() {
        let report = tiny_report();
        let doc = report.summary_json();
        json::validate(&doc).expect("summary.json must be valid JSON");
        assert!(doc.contains(&format!("\"schema\":\"{}\"", cip_core::RESULTS_SCHEMA)));
        assert!(doc.contains("\"totals\":"));
        assert!(doc.contains("traffic.halo_units"));
    }

    #[test]
    fn refresh_is_exercised_between_steps() {
        let report = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 1,
            repartition_period: None,
        })
        .expect("tiny scenario runs");
        let summary = report.summary();
        // 1 fresh induction + 2 incremental refreshes (refresh may nest
        // further inductions for impure leaves, so only a lower bound on
        // induce counts holds).
        assert_eq!(summary.span("dtree.refresh").map(|s| s.count), Some(2));
        assert!(summary.span("dtree.induce").map(|s| s.count).unwrap_or(0) >= 1);
    }
}
