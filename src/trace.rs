//! Traced end-to-end execution — the engine behind the `cip-trace`
//! binary.
//!
//! Runs a simulation scenario through the full MCML+DT pipeline — §4.2
//! partitioning with DT-friendly correction, §4.1 search-tree induction
//! (incrementally refreshed between steps), the threaded rank executor,
//! and optional §4.3 diffusion repartitioning with executed migration —
//! with an **enabled** [`Recorder`] threaded through every layer. The
//! result is a chrome://tracing timeline (one lane per logical rank, the
//! driver on its own lane above them) and a flat summary whose traffic
//! counters equal the executed [`cip_runtime::TrafficLog`] exactly.

use crate::worker::{BatchSpec, PoolConfig, WorkerPool};
use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce_recorded, refresh_recorded, DecisionTree, DtreeConfig};
use cip_partition::{
    compact_parts_after_loss, diffusion_repartition, partition_kway_with, PartitionWorkspace,
    PartitionerConfig,
};
use cip_runtime::{
    build_decomposition, build_migration, build_migration_recorded, collect_batch,
    execute_steps_overlapped, BatchError, CancelToken, ConfigError, Decomposition, ExecOptions,
    FaultInjector, FaultPlan, KillSpec, MigrationPlan, RepartitionMode, Replanner, RuntimeError,
    Schedule, StepInput,
};
use cip_sim::{scenarios, SimConfig, SimResult};
use cip_telemetry::{export::Summary, Recorder};
use cip_transport::tcp::Tcp;
use cip_transport::{InProcess, TransportError, WireError};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A failed traced run — every way [`run_traced`] / [`Session`] can go
/// wrong, as a typed error instead of a formatted string, so callers
/// (the CLI, the job server, tests) can match on the cause.
#[derive(Debug)]
pub enum TraceError {
    /// The scenario name is not in the registry
    /// ([`cip_sim::scenarios::list`]).
    UnknownScenario {
        /// The rejected name.
        name: String,
    },
    /// A trace/executor option failed builder validation.
    Config(ConfigError),
    /// Step execution failed beyond recovery (transport breakdown; rank
    /// deaths are recovered internally and never surface here).
    Runtime(RuntimeError),
    /// A wire-format violation outside the executor (worker control
    /// protocol).
    Wire(WireError),
    /// The worker pool could not be brought up or driven (spawn,
    /// handshake, control socket).
    Worker {
        /// What failed.
        what: String,
    },
    /// [`TraceReport::verify_totals`] found a telemetry counter that
    /// disagrees with the executed total.
    TotalsMismatch {
        /// The counter name.
        counter: &'static str,
        /// The counter's value.
        got: u64,
        /// The executed total it must equal.
        expected: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownScenario { name } => {
                write!(f, "unknown scenario '{name}' (known: {})", scenarios::known_names())
            }
            Self::Config(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "execution failed: {e}"),
            Self::Wire(e) => write!(f, "wire protocol violation: {e}"),
            Self::Worker { what } => write!(f, "worker pool: {what}"),
            Self::TotalsMismatch { counter, got, expected } => {
                write!(f, "counter {counter} = {got}, executed total = {expected}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Runtime(e) => Some(e),
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for TraceError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<RuntimeError> for TraceError {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

impl From<TransportError> for TraceError {
    fn from(e: TransportError) -> Self {
        Self::Runtime(RuntimeError::Transport(e))
    }
}

impl From<WireError> for TraceError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Chaos-mode settings for a traced run: deterministic message faults,
/// an optional scripted rank kill, and the executor's loss-detection
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOptions {
    /// Base seed; each step derives an independent fate stream.
    pub seed: u64,
    /// Permille of payload messages dropped.
    pub drop_permille: u16,
    /// Permille of payload messages duplicated.
    pub dup_permille: u16,
    /// Permille of payload messages delayed past `Done`.
    pub delay_permille: u16,
    /// Permille of payload messages reordered.
    pub reorder_permille: u16,
    /// Kill `(step, rank)`: that rank dies before its first send of that
    /// step, and the driver recovers over the survivors.
    pub kill: Option<(usize, u32)>,
    /// Executor drain timeout in milliseconds.
    pub timeout_ms: u64,
    /// Executor repair rounds before declaring a peer dead.
    pub retries: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            drop_permille: 20,
            dup_permille: 10,
            delay_permille: 10,
            reorder_permille: 10,
            kill: None,
            timeout_ms: 2000,
            retries: 3,
        }
    }
}

/// Which message transport carries the rank-to-rank traffic.
///
/// All three execute the identical protocol and produce bit-identical
/// `TrafficLog` totals; they differ only in where the ranks live and
/// what the bytes travel through (DESIGN.md §6e).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Rank threads exchanging in-memory messages — the default and
    /// the oracle every other backend is measured against.
    #[default]
    InProcess,
    /// Rank threads in this process, but every message serialized
    /// through a real loopback TCP socket (wire-format coverage with
    /// full per-frame telemetry).
    TcpThreads {
        /// Mesh listener bind address (`127.0.0.1:0` = OS ports).
        bind: String,
    },
    /// One `cip-worker` OS process per rank, meshed over TCP; the
    /// driver assigns batches over per-worker control sockets.
    Workers {
        /// Control listener bind address.
        bind: String,
        /// Worker executable override (`None` = `$CIP_WORKER_BIN`,
        /// then a `cip-worker` sibling of the current executable).
        worker_bin: Option<PathBuf>,
    },
}

/// What to run and how.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Scenario name (see [`scenario_config`] for the accepted names).
    pub scenario: String,
    /// Number of logical ranks.
    pub k: usize,
    /// Snapshot-count override (`None` = the scenario's default).
    pub snapshots: Option<usize>,
    /// Partitioner seed.
    pub seed: u64,
    /// Diffusion-repartition period (`None` = fixed decomposition).
    pub repartition_period: Option<usize>,
    /// Fault injection (`None` = clean run).
    pub chaos: Option<ChaosOptions>,
    /// Step schedule: [`Schedule::pipelined`] (the default) batches the
    /// steps between repartition barriers onto persistent rank threads
    /// with cross-step overlap; [`Schedule::Barrier`] is the one-step-
    /// at-a-time oracle.
    pub schedule: Schedule,
    /// Longest stretch of steps one batch may cover (clamped to at
    /// least 1; repartition boundaries cut batches shorter).
    pub max_batch: usize,
    /// How repartition boundaries are handled:
    /// [`RepartitionMode::Overlapped`] (the default) plans the next
    /// boundary on a background thread during the preceding batch and
    /// splices the node migration into the following batch as a
    /// `Migrate` prologue; [`RepartitionMode::Barrier`] is the
    /// stop-the-world oracle it must match bit for bit.
    pub repartition_mode: RepartitionMode,
    /// Where the ranks live and what carries their messages.
    pub transport: TransportKind,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            scenario: "head_on".to_string(),
            k: 4,
            snapshots: None,
            seed: 1,
            repartition_period: Some(10),
            chaos: None,
            schedule: Schedule::pipelined(),
            max_batch: 8,
            repartition_mode: RepartitionMode::default(),
            transport: TransportKind::InProcess,
        }
    }
}

impl TraceOptions {
    /// A validating builder over the defaults — the one construction
    /// path the CLI and the job server share, so every flag is checked
    /// by the same rules.
    pub fn builder() -> TraceOptionsBuilder {
        TraceOptionsBuilder { opts: Self::default() }
    }

    /// Checks every option against the rules [`TraceOptionsBuilder::build`]
    /// enforces — for options constructed literally (struct syntax) or
    /// deserialized from a job payload. [`Session::build`] calls this, so
    /// no invalid configuration reaches execution by any path.
    pub fn validate(&self) -> Result<(), TraceError> {
        scenario_config(&self.scenario)?;
        let reject = |field: &'static str, reason: &str| {
            Err(TraceError::Config(ConfigError { field, reason: reason.to_string() }))
        };
        if self.k < 1 {
            return reject("k", "need at least one rank");
        }
        if self.snapshots == Some(0) {
            return reject("snapshots", "need at least one snapshot");
        }
        if self.max_batch < 1 {
            return reject("max_batch", "a batch must cover at least one step");
        }
        if let Schedule::Pipelined { lookahead } = self.schedule {
            if lookahead < 1 {
                return reject("schedule", "pipelined lookahead must be at least 1");
            }
        }
        if let Some(c) = &self.chaos {
            if c.timeout_ms == 0 {
                return reject("chaos", "drain timeout must be non-zero");
            }
            for (name, permille) in [
                ("drop_permille", c.drop_permille),
                ("dup_permille", c.dup_permille),
                ("delay_permille", c.delay_permille),
                ("reorder_permille", c.reorder_permille),
            ] {
                if permille > 1000 {
                    return reject("chaos", &format!("{name} exceeds 1000"));
                }
            }
        }
        Ok(())
    }
}

/// Validating builder for [`TraceOptions`] — see [`TraceOptions::builder`].
#[derive(Debug, Clone)]
pub struct TraceOptionsBuilder {
    opts: TraceOptions,
}

impl TraceOptionsBuilder {
    /// Scenario name (checked against the registry at [`Self::build`]).
    pub fn scenario(mut self, name: impl Into<String>) -> Self {
        self.opts.scenario = name.into();
        self
    }

    /// Number of logical ranks (≥ 1).
    pub fn k(mut self, k: usize) -> Self {
        self.opts.k = k;
        self
    }

    /// Snapshot-count override (≥ 1).
    pub fn snapshots(mut self, n: usize) -> Self {
        self.opts.snapshots = Some(n);
        self
    }

    /// Partitioner seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Diffusion-repartition period (`None` = fixed decomposition).
    pub fn repartition_period(mut self, period: Option<usize>) -> Self {
        self.opts.repartition_period = period;
        self
    }

    /// Fault injection (`None` = clean run).
    pub fn chaos(mut self, chaos: Option<ChaosOptions>) -> Self {
        self.opts.chaos = chaos;
        self
    }

    /// Step schedule (pipelined lookahead must be ≥ 1).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.opts.schedule = schedule;
        self
    }

    /// Longest stretch of steps one batch may cover (≥ 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.opts.max_batch = max_batch;
        self
    }

    /// How repartition boundaries are handled.
    pub fn repartition_mode(mut self, mode: RepartitionMode) -> Self {
        self.opts.repartition_mode = mode;
        self
    }

    /// Where the ranks live and what carries their messages.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.opts.transport = transport;
        self
    }

    /// Validates every option and returns the finished [`TraceOptions`].
    pub fn build(self) -> Result<TraceOptions, TraceError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Resolves a scenario name through the registry
/// ([`cip_sim::scenarios::get`]). An unknown name is a
/// [`TraceError::UnknownScenario`] listing the valid alternatives.
pub fn scenario_config(name: &str) -> Result<SimConfig, TraceError> {
    scenarios::get(name)
        .map(|d| d.config())
        .ok_or_else(|| TraceError::UnknownScenario { name: name.to_string() })
}

/// A completed traced run: the recorder (still holding every event) plus
/// the executed totals the telemetry must agree with.
#[derive(Debug)]
pub struct TraceReport {
    /// The recorder that observed the run.
    pub recorder: Recorder,
    /// Ranks used.
    pub k: usize,
    /// Steps executed.
    pub steps: usize,
    /// Total executed halo traffic (sum of per-step
    /// [`cip_runtime::TrafficLog::total_halo`]).
    pub halo: u64,
    /// Total executed element shipments.
    pub shipments: u64,
    /// Total nodes migrated by repartitioning.
    pub migrated: u64,
    /// Total contact pairs detected.
    pub contact_pairs: u64,
    /// Repartitions performed.
    pub repartitions: usize,
    /// Ranks lost to faults over the run (each one recovered by
    /// repartitioning over the survivors).
    pub rank_losses: usize,
}

impl TraceReport {
    /// The chrome://tracing JSON of the run.
    pub fn chrome_trace(&self) -> String {
        self.recorder.chrome_trace().expect("trace recorder is always enabled")
    }

    /// The aggregated span/counter/histogram summary.
    pub fn summary(&self) -> Summary {
        self.recorder.summary().expect("trace recorder is always enabled")
    }

    /// The executed totals as a JSON object (the `totals` field of
    /// `summary.json`).
    pub fn totals_json(&self) -> String {
        format!(
            concat!(
                "{{\"k\":{},\"steps\":{},\"halo\":{},\"shipments\":{},",
                "\"migrated\":{},\"contact_pairs\":{},\"repartitions\":{},",
                "\"rank_losses\":{}}}"
            ),
            self.k,
            self.steps,
            self.halo,
            self.shipments,
            self.migrated,
            self.contact_pairs,
            self.repartitions,
            self.rank_losses,
        )
    }

    /// The full `summary.json` document: executed totals next to the
    /// telemetry summary, wrapped in the shared results envelope
    /// ([`cip_core::RESULTS_SCHEMA`]).
    pub fn summary_json(&self) -> String {
        let payload = format!(
            "{{\"totals\":{},\"telemetry\":{}}}",
            self.totals_json(),
            self.summary().to_json()
        );
        cip_core::results_document("trace-summary", &payload)
    }

    /// Verifies the acceptance invariant: the summary's traffic counters
    /// equal the executed totals exactly. Returns a
    /// [`TraceError::TotalsMismatch`] naming the first mismatch.
    pub fn verify_totals(&self) -> Result<(), TraceError> {
        let checks = [
            ("traffic.halo_units", self.halo),
            ("traffic.shipment_units", self.shipments),
            ("traffic.migrated_units", self.migrated),
        ];
        for (name, expect) in checks {
            let got = self.recorder.counter_value(name);
            if got != expect {
                return Err(TraceError::TotalsMismatch { counter: name, got, expected: expect });
            }
        }
        Ok(())
    }
}

/// Cancellation and budget for one [`Session::advance`] call.
///
/// The default control never cancels and never exhausts — `advance`
/// runs to completion, which is exactly what [`run_traced`] does.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Checked at every batch boundary; when tripped, `advance` winds
    /// down cleanly and returns [`Advance::Cancelled`]. Committed steps
    /// stay committed — the session can still report what it executed.
    pub cancel: CancelToken,
    /// Step/time budget for this `advance` call.
    pub budget: RunBudget,
}

/// A step/time budget for one [`Session::advance`] call — the unit a
/// job scheduler hands out per quantum. Either bound may be `None`
/// (unlimited); both are checked at batch boundaries, so a budget never
/// tears a batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunBudget {
    /// Commit at most this many steps in this call.
    pub max_steps: Option<usize>,
    /// Stop starting new batches after this much wall time.
    pub max_time: Option<Duration>,
}

impl RunBudget {
    /// A budget of at most `n` committed steps.
    pub fn steps(n: usize) -> Self {
        Self { max_steps: Some(n), max_time: None }
    }
}

/// Why [`Session::advance`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// Every step has been executed; [`Session::into_report`] is ready.
    Finished,
    /// The step/time budget ran out at a batch boundary; call `advance`
    /// again to continue.
    BudgetExhausted,
    /// The cancel token tripped; the session stops scheduling batches.
    Cancelled,
}

/// Reusable scratch for repeated [`Session`] builds — what a job-server
/// worker keeps warm across the jobs it runs ([`Session::build_with`]).
#[derive(Default)]
pub struct SessionWorkspace {
    /// Partitioner scratch for the initial MCML+DT decomposition.
    pub partition: PartitionWorkspace,
}

impl SessionWorkspace {
    /// A fresh (cold) workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A resumable traced run: `build → advance … → into_report`.
///
/// [`Session::build`] resolves the scenario, runs the simulation, and
/// computes the initial MCML+DT decomposition (spawning the worker pool
/// in multi-process mode). [`Session::advance`] then executes batches of
/// steps until it finishes — or until the [`RunControl`]'s cancel token
/// trips or its budget runs out, both checked at batch boundaries so
/// in-flight batches always commit or recover whole. A budget-exhausted
/// session resumes exactly where it stopped on the next `advance`.
/// [`run_traced`] is the one-shot wrapper; the job server drives
/// sessions directly so it can cancel and time-slice them.
pub struct Session {
    opts: TraceOptions,
    sim: Arc<SimResult>,
    rec: Recorder,
    pcfg: PartitionerConfig,
    node_parts: Vec<u32>,
    pool: Option<WorkerPool>,
    route: Vec<u32>,
    epoch: u32,
    chain_start: usize,
    dcfg: DtreeConfig,
    tree: Option<DecisionTree<3>>,
    live_k: usize,
    report: TraceReport,
    spent: Vec<bool>,
    boundaries_done: usize,
    planner: Replanner<(Vec<u32>, MigrationPlan)>,
    plan_version: u64,
    pending_migrate: Option<MigrationPlan>,
    next_step: usize,
}

impl Session {
    /// Builds a session with its own (cold) workspace.
    pub fn build(opts: &TraceOptions) -> Result<Self, TraceError> {
        Self::build_with(opts, &mut SessionWorkspace::new())
    }

    /// Builds a session reusing caller-supplied scratch. Bit-identical
    /// to [`Session::build`] for any workspace state.
    pub fn build_with(opts: &TraceOptions, ws: &mut SessionWorkspace) -> Result<Self, TraceError> {
        opts.validate()?;
        let mut scfg = scenario_config(&opts.scenario)?;
        if let Some(s) = opts.snapshots {
            scfg.snapshots = s;
        }
        let sim = Arc::new(cip_sim::run(&scfg));
        let k = opts.k;

        let rec = Recorder::enabled();
        // Ranks own lanes 0..k; the driver thread sits above them, and
        // the background repartition planner above the driver.
        rec.set_lane(k as u32);
        rec.name_lane(k as u32, "driver");
        rec.name_lane((k + 1) as u32, "planner");

        let mut pcfg = PartitionerConfig::with_seed(opts.seed);
        pcfg.recorder = rec.clone();

        // Initial MCML+DT decomposition on snapshot 0.
        let view0 = SnapshotView::build(&sim, 0, 5);
        let mut asg = partition_kway_with(&view0.graph2.graph, k, &pcfg, &mut ws.partition.refine);
        let positions: Vec<_> =
            view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
        dt_friendly_correct(
            &view0.graph2.graph,
            &positions,
            k,
            &mut asg,
            &DtFriendlyConfig::default(),
        );
        let node_parts = view0.graph2.assignment_on_nodes(&asg);

        // Multi-process mode: spawn the worker pool once; it outlives
        // every batch, repartition, and recovery (dead workers are
        // retired).
        let pool: Option<WorkerPool> = match &opts.transport {
            TransportKind::Workers { bind, worker_bin } => Some(WorkerPool::spawn(&PoolConfig {
                k,
                scenario: opts.scenario.clone(),
                snapshots: scfg.snapshots,
                capacity: ExecOptions::default().mailbox_capacity,
                bind: bind.clone(),
                worker_bin: worker_bin.clone(),
            })?),
            _ => None,
        };

        let steps = sim.len();
        Ok(Self {
            opts: opts.clone(),
            sim,
            rec: rec.clone(),
            pcfg,
            node_parts,
            pool,
            // Pool bookkeeping: `route[live]` = worker id playing live
            // rank `live`; `epoch` grows by every *attempted* batch so
            // stale frames of aborted batches can never alias into a
            // live step; and `chain_start` is the snapshot where the
            // current search-tree chain was induced, which workers
            // replay to reproduce the driver's incrementally refreshed
            // tree (the assignment is constant within a chain — it only
            // changes where the chain resets).
            route: (0..k as u32).collect(),
            epoch: 0,
            chain_start: 0,
            dcfg: DtreeConfig::search_tree(),
            tree: None,
            live_k: k,
            report: TraceReport {
                recorder: rec,
                k,
                steps: 0,
                halo: 0,
                shipments: 0,
                migrated: 0,
                contact_pairs: 0,
                repartitions: 0,
                rank_losses: 0,
            },
            // Faults apply to the first attempt of a step only — the
            // recovery re-execution runs clean (the injected fate stream
            // of a step is considered "spent" once its failure has been
            // handled).
            spent: vec![false; steps],
            // Repartition boundaries fire once per period region even
            // when a failed batch resumes exactly at a boundary step:
            // the monotone region counter makes re-firing impossible by
            // construction.
            boundaries_done: 0,
            // Overlapped-repartition state (DESIGN.md §6f): the
            // background planner, the rank-space version its plans are
            // keyed under (bumped on every recovery, so a plan computed
            // over dead ranks can never be applied), and a plan accepted
            // at the last boundary whose node migration still has to
            // ride the next batch's Migrate prologue.
            planner: Replanner::new(),
            plan_version: 0,
            pending_migrate: None,
            next_step: 0,
        })
    }

    /// Steps committed so far.
    pub fn executed(&self) -> usize {
        self.next_step
    }

    /// Total steps the scenario will execute.
    pub fn total_steps(&self) -> usize {
        self.sim.len()
    }

    /// Whether every step has been committed.
    pub fn is_finished(&self) -> bool {
        self.next_step >= self.sim.len()
    }

    /// Finishes the session: the report of everything committed so far.
    /// `steps` is the *executed* count — equal to the scenario length
    /// for a finished session, smaller for a cancelled one.
    pub fn into_report(mut self) -> TraceReport {
        self.report.steps = self.next_step;
        self.report
    }

    /// Executes batches until the run finishes, the control's budget
    /// runs out, or its cancel token trips — all checked at batch
    /// boundaries, so batches always commit (or recover) whole.
    pub fn advance(&mut self, ctrl: &RunControl) -> Result<Advance, TraceError> {
        let start_step = self.next_step;
        let t0 = Instant::now();
        let rec = self.rec.clone();
        let k = self.opts.k;
        let max_batch = self.opts.max_batch.max(1);
        while self.next_step < self.sim.len() {
            // Checkpoint: cancellation and budget, between batches only.
            if ctrl.cancel.is_cancelled() {
                rec.add("session.cancelled", 1);
                return Ok(Advance::Cancelled);
            }
            if let Some(max) = ctrl.budget.max_steps {
                if self.next_step - start_step >= max {
                    return Ok(Advance::BudgetExhausted);
                }
            }
            if let Some(limit) = ctrl.budget.max_time {
                if t0.elapsed() >= limit {
                    return Ok(Advance::BudgetExhausted);
                }
            }
            let i = self.next_step;
            // §4.3 hybrid policy: periodic diffusion repartition +
            // executed migration. Boundaries still end every batch; in
            // Overlapped mode the plan was computed in the background
            // during the preceding batch and the driver only flips
            // `node_parts` here — the migration itself rides the next
            // batch as a prologue.
            if let Some(period) = self.opts.repartition_period.filter(|&p| p > 0) {
                let region = i / period;
                if i > 0
                    && i.is_multiple_of(period)
                    && region > self.boundaries_done
                    && self.live_k >= 2
                {
                    self.boundaries_done = region;
                    let planned = match self.opts.repartition_mode {
                        RepartitionMode::Overlapped => {
                            self.planner.take(i, self.plan_version, &rec)
                        }
                        RepartitionMode::Barrier => None,
                    };
                    let (new_node_parts, plan) = match planned {
                        Some(p) => p,
                        None => {
                            // Synchronous fallback — and the Barrier
                            // oracle: the whole plan is a stall, charged
                            // to the same span `Replanner::take` uses for
                            // its join wait so the modes compare
                            // directly.
                            let _stall = rec.span("repartition.stall").attr("boundary", i as u64);
                            plan_boundary(&self.sim, i, self.live_k, &self.node_parts, &self.pcfg)
                        }
                    };
                    record_migration(&rec, &plan, self.node_parts.len());
                    self.report.migrated += plan.total_moved();
                    self.report.repartitions += 1;
                    for (n, &p) in new_node_parts.iter().enumerate() {
                        if p != u32::MAX {
                            self.node_parts[n] = p;
                        }
                    }
                    if self.opts.repartition_mode == RepartitionMode::Overlapped && !plan.is_empty()
                    {
                        self.pending_migrate = Some(plan);
                    }
                    // The decomposition changed: the old tree no longer
                    // matches the labels, so induce from scratch.
                    self.tree = None;
                    self.chain_start = i;
                }
            }

            // Batch every step up to the next repartition boundary
            // (capped at `max_batch` so the per-batch state stays
            // small), prepare their inputs, and hand the whole stretch
            // to the batch executor.
            let mut end = (i + max_batch).min(self.sim.len());
            if let Some(period) = self.opts.repartition_period.filter(|&p| p > 0) {
                end = end.min((i / period + 1) * period);
            }

            // Overlapped mode: if this batch ends at the next
            // repartition boundary, start planning it in the background
            // now. The simulation snapshots are precomputed, so the
            // planner reads exactly the inputs the boundary will read —
            // the plan is bit-identical to the synchronous one by
            // construction (DESIGN.md §6f, snapshot-staleness rule).
            if self.opts.repartition_mode == RepartitionMode::Overlapped && self.live_k >= 2 {
                if let Some(period) = self.opts.repartition_period.filter(|&p| p > 0) {
                    if end < self.sim.len()
                        && end.is_multiple_of(period)
                        && end / period > self.boundaries_done
                    {
                        let sim2 = Arc::clone(&self.sim);
                        let parts = self.node_parts.clone();
                        let pcfg2 = self.pcfg.clone();
                        let (at, lk, lane) = (end, self.live_k, (k + 1) as u32);
                        self.planner.submit(end, self.plan_version, &rec, move || {
                            pcfg2.recorder.set_lane(lane);
                            let _compute =
                                pcfg2.recorder.span("replan.compute").attr("boundary", at as u64);
                            plan_boundary(&sim2, at, lk, &parts, &pcfg2)
                        });
                    }
                }
            }

            let faults: Vec<FaultInjector> = (i..end)
                .map(|j| {
                    if self.spent[j] {
                        FaultInjector::none()
                    } else {
                        step_fault(&self.opts.chaos, j, self.live_k)
                    }
                })
                .collect();
            let exec_opts = exec_options(&self.opts);

            // A serial survivor (live_k == 1) exchanges no messages, so
            // the pool adds nothing — run it in-process like the other
            // modes.
            let use_pool = self.live_k >= 2 && self.pool.is_some();
            let (result, carried_tree) = if use_pool {
                // Pool path: the workers rebuild the step inputs
                // themselves (tree-chain replay from `chain_start`), so
                // the driver only ships its mutable state and folds the
                // reported outcomes — the same fold the in-process
                // executor applies to its joined threads.
                let p = self.pool.as_mut().expect("use_pool checked pool.is_some()");
                let plans: Vec<Option<FaultPlan>> =
                    faults.iter().map(|f| f.plan().cloned()).collect();
                let lookahead = match self.opts.schedule {
                    Schedule::Pipelined { lookahead } => lookahead.max(1),
                    Schedule::Barrier => 1,
                };
                let spec = BatchSpec {
                    start: i,
                    end,
                    chain_start: self.chain_start,
                    live_k: self.live_k,
                    epoch: self.epoch,
                    node_parts: &self.node_parts,
                    plans,
                    migrate: self.pending_migrate.as_ref(),
                    timeout_ms: exec_opts.timeout.as_millis() as u64,
                    retries: exec_opts.retries,
                    lookahead,
                };
                let outcomes = p.execute_batch(&spec, &self.route, &rec);
                self.epoch += (end - i) as u32;
                let recorders = vec![rec.clone(); end - i];
                (collect_batch(self.live_k, &recorders, outcomes), None)
            } else {
                // Per-step prep: decomposition views and the search-tree
                // chain (fresh induction when no tree carries over,
                // incremental refresh otherwise). All of this is
                // executor-independent, so it can be staged for the
                // whole batch before any rank thread starts.
                let mut prepped: Vec<PreparedStep> = Vec::with_capacity(end - i);
                let mut trees: Vec<DecisionTree<3>> = Vec::with_capacity(end - i);
                for j in i..end {
                    let _step_span = rec.span("trace.step").attr("step", j);
                    let view = SnapshotView::build(&self.sim, j, 5);
                    let asg_now: Vec<u32> = view
                        .graph2
                        .node_of_vertex
                        .iter()
                        .map(|&n| self.node_parts[n as usize])
                        .collect();
                    let elements = view.surface_elements(&self.node_parts);
                    let bodies = view.face_bodies();
                    let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
                    let decomposition = build_decomposition(
                        &view.graph2.graph,
                        &view.graph2.node_of_vertex,
                        &asg_now,
                        &owners,
                        self.live_k,
                    );
                    let labels = view.contact.labels_from_node_parts(&self.node_parts);
                    let new_tree = match trees.last().or(self.tree.as_ref()) {
                        None => induce_recorded(
                            &view.contact.positions,
                            &labels,
                            self.live_k,
                            &self.dcfg,
                            &rec,
                        ),
                        Some(t) => {
                            refresh_recorded(
                                t,
                                &view.contact.positions,
                                &labels,
                                self.live_k,
                                &self.dcfg,
                                &rec,
                            )
                            .0
                        }
                    };
                    trees.push(new_tree);
                    prepped.push(PreparedStep { view, elements, bodies, decomposition });
                }

                let filters: Vec<DtreeFilter<'_, 3>> =
                    trees.iter().map(|t| DtreeFilter::new(t, self.live_k)).collect();
                let inputs: Vec<StepInput<'_, DtreeFilter<'_, 3>>> = prepped
                    .iter()
                    .zip(filters.iter())
                    .map(|(p, filter)| StepInput {
                        decomposition: &p.decomposition,
                        positions: &p.view.mesh.points,
                        elements: &p.elements,
                        bodies: &p.bodies,
                        filter,
                        tolerance: 0.4,
                        recorder: rec.clone(),
                    })
                    .collect();
                let result = match &self.opts.transport {
                    TransportKind::TcpThreads { bind } => execute_steps_overlapped(
                        &inputs,
                        &faults,
                        &exec_opts,
                        self.pending_migrate.as_ref(),
                        &Tcp { bind: bind.clone() },
                    ),
                    _ => execute_steps_overlapped(
                        &inputs,
                        &faults,
                        &exec_opts,
                        self.pending_migrate.as_ref(),
                        &InProcess,
                    ),
                };
                drop(inputs);
                drop(filters);
                (result, trees.pop())
            };

            match result {
                Ok(outs) => {
                    for (off, out) in outs.iter().enumerate() {
                        commit_step(&mut self.report, i + off, out);
                    }
                    // The Migrate prologue (if any) executed with the
                    // batch.
                    self.pending_migrate = None;
                    self.tree = carried_tree;
                    self.next_step = end;
                }
                Err(BatchError { completed, failed_step, error }) => {
                    for (off, out) in completed.iter().enumerate() {
                        commit_step(&mut self.report, i + off, out);
                    }
                    let failed = i + failed_step;
                    let dead = match error {
                        RuntimeError::RankLost { dead, .. } => dead,
                        RuntimeError::RankPanicked { rank } => vec![rank],
                        // Not a rank death: the transport itself is
                        // broken (mesh construction, fatal socket
                        // failure) — there is nothing to recover over.
                        RuntimeError::Transport(e) => {
                            return Err(RuntimeError::Transport(e).into());
                        }
                    };
                    let mut span = rec.span("recovery.repartition").attr("step", failed);
                    span.set_attr("dead", dead.len());
                    self.report.rank_losses += dead.len();
                    // The rank space is about to change: any in-flight
                    // background plan — including one landing exactly in
                    // this planning window — was computed over dead
                    // ranks. Discard it and bump the version so a plan
                    // the recovery races with can never be applied; the
                    // next boundary is recomputed over the survivors.
                    self.planner.discard(&rec);
                    self.plan_version += 1;
                    self.pending_migrate = None;
                    // Retire the dead ranks' worker processes and route
                    // the surviving live ranks onto the surviving
                    // workers, in the same order
                    // `compact_parts_after_loss` relabels.
                    if let Some(p) = self.pool.as_mut() {
                        let dead_workers: Vec<u32> = dead
                            .iter()
                            .filter_map(|&d| self.route.get(d as usize).copied())
                            .collect();
                        p.retire(&dead_workers);
                        self.route = self
                            .route
                            .iter()
                            .enumerate()
                            .filter(|&(live, _)| !dead.contains(&(live as u32)))
                            .map(|(_, &w)| w)
                            .collect();
                    }
                    self.live_k =
                        compact_parts_after_loss(&mut self.node_parts, self.live_k, &dead);
                    let view = SnapshotView::build(&self.sim, failed, 5);
                    if self.live_k >= 2 {
                        let old: Vec<u32> = view
                            .graph2
                            .node_of_vertex
                            .iter()
                            .map(|&n| self.node_parts[n as usize])
                            .collect();
                        let fresh = diffusion_repartition(
                            &view.graph2.graph,
                            self.live_k,
                            &old,
                            &self.pcfg,
                        );
                        let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
                        let plan = build_migration_recorded(
                            &self.node_parts,
                            &new_node_parts,
                            self.live_k,
                            &rec,
                        );
                        self.report.migrated += plan.total_moved();
                        self.report.repartitions += 1;
                        for (n, &p) in new_node_parts.iter().enumerate() {
                            if p != u32::MAX {
                                self.node_parts[n] = p;
                            }
                        }
                    } else {
                        // Fewer than two survivors: collapse to a single
                        // rank — the executor degenerates to the serial
                        // contact search with no messages.
                        self.live_k = 1;
                        for p in self.node_parts.iter_mut() {
                            if *p != u32::MAX {
                                *p = 0;
                            }
                        }
                        rec.add("recovery.serial_fallback", 1);
                    }
                    self.tree = None;
                    self.chain_start = failed;
                    self.spent[failed] = true;
                    self.next_step = failed;
                }
            }
        }
        Ok(Advance::Finished)
    }
}

/// Runs `opts` end to end with telemetry enabled — the one-shot wrapper
/// over [`Session`]: build, advance to completion (no cancellation, no
/// budget), report.
///
/// Returns `Err` for an invalid configuration, an unknown scenario
/// name, or a transport that could not be brought up (worker spawn,
/// mesh construction).
pub fn run_traced(opts: &TraceOptions) -> Result<TraceReport, TraceError> {
    let mut session = Session::build(opts)?;
    let advance = session.advance(&RunControl::default())?;
    debug_assert_eq!(advance, Advance::Finished, "default control cannot stop early");
    Ok(session.into_report())
}

/// Computes the boundary-`at` diffusion repartition: the new node
/// assignment and the migration plan from the current one. The plan is
/// deliberately **unrecorded** — a background plan may be discarded
/// before it is applied, and a discarded plan must not pollute the
/// traffic counters. [`record_migration`] charges telemetry on
/// acceptance.
fn plan_boundary(
    sim: &SimResult,
    at: usize,
    live_k: usize,
    node_parts: &[u32],
    pcfg: &PartitionerConfig,
) -> (Vec<u32>, MigrationPlan) {
    let view = SnapshotView::build(sim, at, 5);
    let old: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    let fresh = diffusion_repartition(&view.graph2.graph, live_k, &old, pcfg);
    let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
    let plan = build_migration(node_parts, &new_node_parts, live_k);
    (new_node_parts, plan)
}

/// Charges an accepted migration plan to telemetry exactly like
/// [`build_migration_recorded`] does — the `migrate.plan` span and the
/// `traffic.migrated_units` counter — so Barrier and Overlapped runs
/// produce identical counters and [`TraceReport::verify_totals`] stays
/// an exact equality.
fn record_migration(rec: &Recorder, plan: &MigrationPlan, nodes: usize) {
    let mut span = rec.span("migrate.plan").attr("nodes", nodes).attr("k", plan.k);
    span.set_attr("moved", plan.total_moved());
    rec.add("traffic.migrated_units", plan.total_moved());
}

/// Owned per-step inputs staged for one batch.
struct PreparedStep {
    view: SnapshotView,
    elements: Vec<cip_contact::SurfaceElementInfo<3>>,
    bodies: Vec<u16>,
    decomposition: Decomposition,
}

/// Folds one committed step's output into the report.
fn commit_step(report: &mut TraceReport, step: usize, out: &cip_runtime::StepOutput) {
    assert_eq!(out.ghost_mismatches, 0, "step {step}: halo exchange delivered stale ghosts");
    report.halo += out.traffic.total_halo();
    report.shipments += out.traffic.total_shipments();
    report.contact_pairs += out.contact_pairs.len() as u64;
}

/// The per-step fault injector of a chaos run (disabled outside chaos
/// mode, and for ranks that no longer exist).
fn step_fault(chaos: &Option<ChaosOptions>, step: usize, live_k: usize) -> FaultInjector {
    let Some(c) = chaos else {
        return FaultInjector::none();
    };
    let base = FaultPlan {
        seed: c.seed,
        drop_permille: c.drop_permille,
        dup_permille: c.dup_permille,
        delay_permille: c.delay_permille,
        reorder_permille: c.reorder_permille,
        kill: None,
    };
    let mut plan = base.for_step(step as u64);
    if let Some((kill_step, rank)) = c.kill {
        if kill_step == step && (rank as usize) < live_k {
            plan.kill = Some(KillSpec { rank, after_sends: 0 });
        }
    }
    FaultInjector::with_plan(plan)
}

/// Executor options for one batch: chaos runs get the configured
/// loss-detection budget, clean runs the defaults; the schedule,
/// batching, and repartition-mode knobs come straight from the trace
/// options. Per-step injectors travel separately through the batch
/// executors' `faults` slice.
fn exec_options(opts: &TraceOptions) -> ExecOptions {
    let base = ExecOptions {
        schedule: opts.schedule,
        max_batch: opts.max_batch.max(1),
        repartition_mode: opts.repartition_mode,
        ..ExecOptions::default()
    };
    match &opts.chaos {
        None => base,
        Some(c) => {
            ExecOptions { timeout: Duration::from_millis(c.timeout_ms), retries: c.retries, ..base }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_telemetry::json;

    fn tiny_report() -> TraceReport {
        run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(4),
            seed: 7,
            repartition_period: Some(2),
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs")
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err =
            run_traced(&TraceOptions { scenario: "bogus".to_string(), ..TraceOptions::default() });
        assert!(matches!(err, Err(TraceError::UnknownScenario { ref name }) if name == "bogus"));
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("bogus") && msg.contains("head_on"), "{msg}");
        assert!(scenario_config("head_on").is_ok());
        assert!(scenario_config("bogus").is_err());
    }

    #[test]
    fn builder_validates_and_rejects_bad_options() {
        let opts = TraceOptions::builder()
            .scenario("tiny")
            .k(2)
            .snapshots(3)
            .seed(7)
            .schedule(Schedule::Barrier)
            .build()
            .expect("valid options build");
        assert_eq!(opts.scenario, "tiny");
        assert_eq!(opts.k, 2);
        assert_eq!(opts.snapshots, Some(3));

        let err = TraceOptions::builder().scenario("nope").build();
        assert!(matches!(err, Err(TraceError::UnknownScenario { .. })));
        let err = TraceOptions::builder().k(0).build();
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "k"));
        let err = TraceOptions::builder().max_batch(0).build();
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "max_batch"));
        let err = TraceOptions::builder().snapshots(0).build();
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "snapshots"));
        let err = TraceOptions::builder().schedule(Schedule::Pipelined { lookahead: 0 }).build();
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "schedule"));
        let err = TraceOptions::builder()
            .chaos(Some(ChaosOptions { timeout_ms: 0, ..ChaosOptions::default() }))
            .build();
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "chaos"));
        // Session::build enforces the same rules on literal structs.
        let err = Session::build(&TraceOptions { max_batch: 0, ..TraceOptions::default() });
        assert!(matches!(err, Err(TraceError::Config(ref c)) if c.field == "max_batch"));
        // The error type is a real std error with a source chain.
        let e = TraceOptions::builder().k(0).build().unwrap_err();
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }

    #[test]
    fn session_resumes_across_step_budgets_bit_identically() {
        let opts = TraceOptions::builder()
            .scenario("tiny")
            .k(2)
            .snapshots(4)
            .seed(7)
            .repartition_period(Some(2))
            // One step per batch so the 1-step budget bites every round
            // (budgets never tear a batch, they stop at its boundary).
            .max_batch(1)
            .build()
            .expect("valid options");
        let oneshot = run_traced(&opts).expect("one-shot run");

        let mut session = Session::build(&opts).expect("session builds");
        let budgeted = RunControl { budget: RunBudget::steps(1), ..RunControl::default() };
        let mut rounds = 0;
        loop {
            rounds += 1;
            match session.advance(&budgeted).expect("advance") {
                Advance::Finished => break,
                Advance::BudgetExhausted => continue,
                Advance::Cancelled => panic!("nothing cancelled this session"),
            }
        }
        assert!(rounds >= 4, "a 1-step budget over 4 snapshots takes >= 4 rounds, got {rounds}");
        assert!(session.is_finished());
        let resumed = session.into_report();
        assert_eq!(resumed.steps, oneshot.steps);
        assert_eq!(resumed.halo, oneshot.halo);
        assert_eq!(resumed.shipments, oneshot.shipments);
        assert_eq!(resumed.contact_pairs, oneshot.contact_pairs);
        assert_eq!(resumed.migrated, oneshot.migrated);
        assert_eq!(resumed.repartitions, oneshot.repartitions);
        resumed.verify_totals().expect("budgeted counters stay exact");
    }

    #[test]
    fn cancelled_session_stops_at_a_batch_boundary() {
        let opts = TraceOptions::builder()
            .scenario("tiny")
            .k(2)
            .snapshots(4)
            .seed(7)
            .max_batch(1)
            .build()
            .expect("valid options");
        let mut session = Session::build(&opts).expect("session builds");
        let ctrl = RunControl::default();
        ctrl.cancel.cancel();
        assert_eq!(session.advance(&ctrl).expect("advance"), Advance::Cancelled);
        assert_eq!(session.executed(), 0, "pre-tripped token cancels before the first batch");
        assert!(!session.is_finished());
        // A fresh control resumes the same session to completion.
        assert_eq!(session.advance(&RunControl::default()).expect("advance"), Advance::Finished);
        let report = session.into_report();
        assert_eq!(report.steps, 4);
        report.verify_totals().expect("resumed-after-cancel counters stay exact");
    }

    #[test]
    fn summary_totals_match_traffic_log() {
        let report = tiny_report();
        report.verify_totals().expect("summary counters must equal executed totals");
        assert!(report.repartitions >= 1, "period 2 over 4 snapshots must repartition");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_rank_lanes() {
        let report = tiny_report();
        let trace = report.chrome_trace();
        json::validate(&trace).expect("chrome trace must be valid JSON");
        // One thread-name row per rank, plus the phase spans on them.
        for rank in 0..report.k {
            assert!(trace.contains(&format!("\"rank {rank}\"")), "missing lane for rank {rank}");
        }
        assert!(trace.contains("\"driver\""), "missing the driver lane label");
        // No `exec.drain`: the pipelined default has no drain phase — a
        // rank searches as soon as its own inputs arrive.
        for name in ["exec.halo", "exec.ship", "exec.search", "dtree.induce", "trace.step"] {
            assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing span {name}");
        }
    }

    #[test]
    fn barrier_and_pipelined_schedules_agree_end_to_end() {
        let base = TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(5),
            seed: 7,
            repartition_period: Some(2),
            chaos: None,
            ..TraceOptions::default()
        };
        let barrier = run_traced(&TraceOptions { schedule: Schedule::Barrier, ..base.clone() })
            .expect("barrier run executes");
        let piped = run_traced(&base).expect("pipelined run executes");
        assert_eq!(piped.halo, barrier.halo);
        assert_eq!(piped.shipments, barrier.shipments);
        assert_eq!(piped.contact_pairs, barrier.contact_pairs);
        assert_eq!(piped.migrated, barrier.migrated);
        assert_eq!(piped.repartitions, barrier.repartitions);
        piped.verify_totals().expect("pipelined counters stay exact");
        barrier.verify_totals().expect("barrier counters stay exact");
    }

    #[test]
    fn summary_json_is_valid_and_self_describing() {
        let report = tiny_report();
        let doc = report.summary_json();
        json::validate(&doc).expect("summary.json must be valid JSON");
        assert!(doc.contains(&format!("\"schema\":\"{}\"", cip_core::RESULTS_SCHEMA)));
        assert!(doc.contains("\"totals\":"));
        assert!(doc.contains("traffic.halo_units"));
    }

    #[test]
    fn refresh_is_exercised_between_steps() {
        let report = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 1,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let summary = report.summary();
        // 1 fresh induction + 2 incremental refreshes (refresh may nest
        // further inductions for impure leaves, so only a lower bound on
        // induce counts holds).
        assert_eq!(summary.span("dtree.refresh").map(|s| s.count), Some(2));
        assert!(summary.span("dtree.induce").map(|s| s.count).unwrap_or(0) >= 1);
    }

    #[test]
    fn killed_rank_is_recovered_and_pairs_match_the_clean_run() {
        let clean = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(4),
            seed: 7,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let chaotic = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(4),
            seed: 7,
            repartition_period: None,
            chaos: Some(ChaosOptions {
                seed: 21,
                kill: Some((1, 1)),
                timeout_ms: 300,
                retries: 2,
                ..ChaosOptions::default()
            }),
            ..TraceOptions::default()
        })
        .expect("chaos run recovers");
        // The distributed search equals the serial oracle at any k, so the
        // recovered run finds exactly the clean run's pairs.
        assert_eq!(chaotic.contact_pairs, clean.contact_pairs);
        assert_eq!(chaotic.rank_losses, 1);
        assert!(chaotic.repartitions >= 1, "recovery must repartition the survivors");
        chaotic.verify_totals().expect("counters stay exact across a recovery");
        // The fault and recovery are observable in the summary.
        let rec = &chaotic.recorder;
        assert_eq!(rec.counter_value("fault.killed_ranks"), 1);
        assert_eq!(rec.counter_value("recovery.rank_dead"), 1);
        let summary = chaotic.summary();
        assert!(summary.span("recovery.repartition").map(|s| s.count).unwrap_or(0) >= 1);
        assert!(chaotic.summary_json().contains("fault.killed_ranks"));
    }

    #[test]
    fn message_chaos_run_matches_the_clean_run() {
        let clean = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 3,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let chaotic = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 3,
            repartition_period: None,
            chaos: Some(ChaosOptions {
                seed: 1337,
                drop_permille: 150,
                dup_permille: 80,
                delay_permille: 80,
                reorder_permille: 80,
                timeout_ms: 300,
                retries: 2,
                ..ChaosOptions::default()
            }),
            ..TraceOptions::default()
        })
        .expect("message faults are repaired in place");
        assert_eq!(chaotic.contact_pairs, clean.contact_pairs);
        assert_eq!(chaotic.halo, clean.halo, "first-transmission traffic is fault-invariant");
        assert_eq!(chaotic.rank_losses, 0);
        chaotic.verify_totals().expect("counters stay exact under message chaos");
    }
}
