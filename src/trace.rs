//! Traced end-to-end execution — the engine behind the `cip-trace`
//! binary.
//!
//! Runs a simulation scenario through the full MCML+DT pipeline — §4.2
//! partitioning with DT-friendly correction, §4.1 search-tree induction
//! (incrementally refreshed between steps), the threaded rank executor,
//! and optional §4.3 diffusion repartitioning with executed migration —
//! with an **enabled** [`Recorder`] threaded through every layer. The
//! result is a chrome://tracing timeline (one lane per logical rank, the
//! driver on its own lane above them) and a flat summary whose traffic
//! counters equal the executed [`cip_runtime::TrafficLog`] exactly.

use crate::worker::{BatchSpec, PoolConfig, WorkerPool};
use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce_recorded, refresh_recorded, DecisionTree, DtreeConfig};
use cip_partition::{
    compact_parts_after_loss, diffusion_repartition, partition_kway, PartitionerConfig,
};
use cip_runtime::{
    build_decomposition, build_migration, build_migration_recorded, collect_batch,
    execute_steps_overlapped, BatchError, Decomposition, ExecOptions, FaultInjector, FaultPlan,
    KillSpec, MigrationPlan, RepartitionMode, Replanner, RuntimeError, Schedule, StepInput,
};
use cip_sim::{scenarios, SimConfig, SimResult};
use cip_telemetry::{export::Summary, Recorder};
use cip_transport::tcp::Tcp;
use cip_transport::InProcess;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Chaos-mode settings for a traced run: deterministic message faults,
/// an optional scripted rank kill, and the executor's loss-detection
/// budget.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Base seed; each step derives an independent fate stream.
    pub seed: u64,
    /// Permille of payload messages dropped.
    pub drop_permille: u16,
    /// Permille of payload messages duplicated.
    pub dup_permille: u16,
    /// Permille of payload messages delayed past `Done`.
    pub delay_permille: u16,
    /// Permille of payload messages reordered.
    pub reorder_permille: u16,
    /// Kill `(step, rank)`: that rank dies before its first send of that
    /// step, and the driver recovers over the survivors.
    pub kill: Option<(usize, u32)>,
    /// Executor drain timeout in milliseconds.
    pub timeout_ms: u64,
    /// Executor repair rounds before declaring a peer dead.
    pub retries: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            seed: 1,
            drop_permille: 20,
            dup_permille: 10,
            delay_permille: 10,
            reorder_permille: 10,
            kill: None,
            timeout_ms: 2000,
            retries: 3,
        }
    }
}

/// Which message transport carries the rank-to-rank traffic.
///
/// All three execute the identical protocol and produce bit-identical
/// `TrafficLog` totals; they differ only in where the ranks live and
/// what the bytes travel through (DESIGN.md §6e).
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// Rank threads exchanging in-memory messages — the default and
    /// the oracle every other backend is measured against.
    #[default]
    InProcess,
    /// Rank threads in this process, but every message serialized
    /// through a real loopback TCP socket (wire-format coverage with
    /// full per-frame telemetry).
    TcpThreads {
        /// Mesh listener bind address (`127.0.0.1:0` = OS ports).
        bind: String,
    },
    /// One `cip-worker` OS process per rank, meshed over TCP; the
    /// driver assigns batches over per-worker control sockets.
    Workers {
        /// Control listener bind address.
        bind: String,
        /// Worker executable override (`None` = `$CIP_WORKER_BIN`,
        /// then a `cip-worker` sibling of the current executable).
        worker_bin: Option<PathBuf>,
    },
}

/// What to run and how.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Scenario name (see [`scenario_config`] for the accepted names).
    pub scenario: String,
    /// Number of logical ranks.
    pub k: usize,
    /// Snapshot-count override (`None` = the scenario's default).
    pub snapshots: Option<usize>,
    /// Partitioner seed.
    pub seed: u64,
    /// Diffusion-repartition period (`None` = fixed decomposition).
    pub repartition_period: Option<usize>,
    /// Fault injection (`None` = clean run).
    pub chaos: Option<ChaosOptions>,
    /// Step schedule: [`Schedule::pipelined`] (the default) batches the
    /// steps between repartition barriers onto persistent rank threads
    /// with cross-step overlap; [`Schedule::Barrier`] is the one-step-
    /// at-a-time oracle.
    pub schedule: Schedule,
    /// Longest stretch of steps one batch may cover (clamped to at
    /// least 1; repartition boundaries cut batches shorter).
    pub max_batch: usize,
    /// How repartition boundaries are handled:
    /// [`RepartitionMode::Overlapped`] (the default) plans the next
    /// boundary on a background thread during the preceding batch and
    /// splices the node migration into the following batch as a
    /// `Migrate` prologue; [`RepartitionMode::Barrier`] is the
    /// stop-the-world oracle it must match bit for bit.
    pub repartition_mode: RepartitionMode,
    /// Where the ranks live and what carries their messages.
    pub transport: TransportKind,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            scenario: "head_on".to_string(),
            k: 4,
            snapshots: None,
            seed: 1,
            repartition_period: Some(10),
            chaos: None,
            schedule: Schedule::pipelined(),
            max_batch: 8,
            repartition_mode: RepartitionMode::default(),
            transport: TransportKind::InProcess,
        }
    }
}

/// Resolves a scenario name to its simulation config. Accepted names:
/// `head_on`, `offset_strike`, `thick_plates`, `blunt_impactor`, and the
/// unit-test-sized `tiny`.
pub fn scenario_config(name: &str) -> Option<SimConfig> {
    match name {
        "head_on" => Some(scenarios::head_on()),
        "offset_strike" => Some(scenarios::offset_strike()),
        "thick_plates" => Some(scenarios::thick_plates()),
        "blunt_impactor" => Some(scenarios::blunt_impactor()),
        "tiny" => Some(SimConfig::tiny()),
        _ => None,
    }
}

/// A completed traced run: the recorder (still holding every event) plus
/// the executed totals the telemetry must agree with.
#[derive(Debug)]
pub struct TraceReport {
    /// The recorder that observed the run.
    pub recorder: Recorder,
    /// Ranks used.
    pub k: usize,
    /// Steps executed.
    pub steps: usize,
    /// Total executed halo traffic (sum of per-step
    /// [`cip_runtime::TrafficLog::total_halo`]).
    pub halo: u64,
    /// Total executed element shipments.
    pub shipments: u64,
    /// Total nodes migrated by repartitioning.
    pub migrated: u64,
    /// Total contact pairs detected.
    pub contact_pairs: u64,
    /// Repartitions performed.
    pub repartitions: usize,
    /// Ranks lost to faults over the run (each one recovered by
    /// repartitioning over the survivors).
    pub rank_losses: usize,
}

impl TraceReport {
    /// The chrome://tracing JSON of the run.
    pub fn chrome_trace(&self) -> String {
        self.recorder.chrome_trace().expect("trace recorder is always enabled")
    }

    /// The aggregated span/counter/histogram summary.
    pub fn summary(&self) -> Summary {
        self.recorder.summary().expect("trace recorder is always enabled")
    }

    /// The executed totals as a JSON object (the `totals` field of
    /// `summary.json`).
    pub fn totals_json(&self) -> String {
        format!(
            concat!(
                "{{\"k\":{},\"steps\":{},\"halo\":{},\"shipments\":{},",
                "\"migrated\":{},\"contact_pairs\":{},\"repartitions\":{},",
                "\"rank_losses\":{}}}"
            ),
            self.k,
            self.steps,
            self.halo,
            self.shipments,
            self.migrated,
            self.contact_pairs,
            self.repartitions,
            self.rank_losses,
        )
    }

    /// The full `summary.json` document: executed totals next to the
    /// telemetry summary, wrapped in the shared results envelope
    /// ([`cip_core::RESULTS_SCHEMA`]).
    pub fn summary_json(&self) -> String {
        let payload = format!(
            "{{\"totals\":{},\"telemetry\":{}}}",
            self.totals_json(),
            self.summary().to_json()
        );
        cip_core::results_document("trace-summary", &payload)
    }

    /// Verifies the acceptance invariant: the summary's traffic counters
    /// equal the executed totals exactly. Returns an error message
    /// naming the first mismatch.
    pub fn verify_totals(&self) -> Result<(), String> {
        let checks = [
            ("traffic.halo_units", self.halo),
            ("traffic.shipment_units", self.shipments),
            ("traffic.migrated_units", self.migrated),
        ];
        for (name, expect) in checks {
            let got = self.recorder.counter_value(name);
            if got != expect {
                return Err(format!("counter {name} = {got}, executed total = {expect}"));
            }
        }
        Ok(())
    }
}

/// Runs `opts` end to end with telemetry enabled.
///
/// Returns `Err` for an unknown scenario name or a transport that
/// could not be brought up (worker spawn, mesh construction).
pub fn run_traced(opts: &TraceOptions) -> Result<TraceReport, String> {
    let mut scfg = scenario_config(&opts.scenario)
        .ok_or_else(|| format!("unknown scenario '{}'", opts.scenario))?;
    if let Some(s) = opts.snapshots {
        scfg.snapshots = s;
    }
    let sim = Arc::new(cip_sim::run(&scfg));
    let k = opts.k;

    let rec = Recorder::enabled();
    // Ranks own lanes 0..k; the driver thread sits above them, and the
    // background repartition planner above the driver.
    rec.set_lane(k as u32);
    rec.name_lane(k as u32, "driver");
    rec.name_lane((k + 1) as u32, "planner");

    let mut pcfg = PartitionerConfig::with_seed(opts.seed);
    pcfg.recorder = rec.clone();

    // Initial MCML+DT decomposition on snapshot 0.
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &pcfg);
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let mut node_parts = view0.graph2.assignment_on_nodes(&asg);

    // Multi-process mode: spawn the worker pool once; it outlives every
    // batch, repartition, and recovery (dead workers are retired).
    let mut pool: Option<WorkerPool> = match &opts.transport {
        TransportKind::Workers { bind, worker_bin } => Some(
            WorkerPool::spawn(&PoolConfig {
                k,
                scenario: opts.scenario.clone(),
                snapshots: scfg.snapshots,
                capacity: ExecOptions::default().mailbox_capacity,
                bind: bind.clone(),
                worker_bin: worker_bin.clone(),
            })
            .map_err(|e| format!("worker pool: {e}"))?,
        ),
        _ => None,
    };
    // Pool bookkeeping: `route[live]` = worker id playing live rank
    // `live`; `epoch` grows by every *attempted* batch so stale frames
    // of aborted batches can never alias into a live step; and
    // `chain_start` is the snapshot where the current search-tree chain
    // was induced, which workers replay to reproduce the driver's
    // incrementally refreshed tree (the assignment is constant within a
    // chain — it only changes where the chain resets).
    let mut route: Vec<u32> = (0..k as u32).collect();
    let mut epoch: u32 = 0;
    let mut chain_start = 0usize;

    let dcfg = DtreeConfig::search_tree();
    let mut tree: Option<DecisionTree<3>> = None;
    let mut live_k = k;
    let mut report = TraceReport {
        recorder: rec.clone(),
        k,
        steps: sim.len(),
        halo: 0,
        shipments: 0,
        migrated: 0,
        contact_pairs: 0,
        repartitions: 0,
        rank_losses: 0,
    };

    // Faults apply to the first attempt of a step only — the recovery
    // re-execution runs clean (the injected fate stream of a step is
    // considered "spent" once its failure has been handled).
    let mut spent = vec![false; sim.len()];
    // Repartition boundaries fire once per period region even when a
    // failed batch resumes exactly at a boundary step: the monotone
    // region counter makes re-firing impossible by construction (the
    // old guard keyed on the last boundary's step index).
    let mut boundaries_done = 0usize;
    // Overlapped-repartition state (DESIGN.md §6f): the background
    // planner, the rank-space version its plans are keyed under (bumped
    // on every recovery, so a plan computed over dead ranks can never
    // be applied), and a plan accepted at the last boundary whose node
    // migration still has to ride the next batch's Migrate prologue.
    let mut planner: Replanner<(Vec<u32>, MigrationPlan)> = Replanner::new();
    let mut plan_version = 0u64;
    let mut pending_migrate: Option<MigrationPlan> = None;
    let max_batch = opts.max_batch.max(1);
    let mut i = 0usize;
    while i < sim.len() {
        // §4.3 hybrid policy: periodic diffusion repartition + executed
        // migration. Boundaries still end every batch; in Overlapped
        // mode the plan was computed in the background during the
        // preceding batch and the driver only flips `node_parts` here —
        // the migration itself rides the next batch as a prologue.
        if let Some(period) = opts.repartition_period.filter(|&p| p > 0) {
            let region = i / period;
            if i > 0 && i.is_multiple_of(period) && region > boundaries_done && live_k >= 2 {
                boundaries_done = region;
                let planned = match opts.repartition_mode {
                    RepartitionMode::Overlapped => planner.take(i, plan_version, &rec),
                    RepartitionMode::Barrier => None,
                };
                let (new_node_parts, plan) = match planned {
                    Some(p) => p,
                    None => {
                        // Synchronous fallback — and the Barrier
                        // oracle: the whole plan is a stall, charged to
                        // the same span `Replanner::take` uses for its
                        // join wait so the modes compare directly.
                        let _stall = rec.span("repartition.stall").attr("boundary", i as u64);
                        plan_boundary(&sim, i, live_k, &node_parts, &pcfg)
                    }
                };
                record_migration(&rec, &plan, node_parts.len());
                report.migrated += plan.total_moved();
                report.repartitions += 1;
                for (n, &p) in new_node_parts.iter().enumerate() {
                    if p != u32::MAX {
                        node_parts[n] = p;
                    }
                }
                if opts.repartition_mode == RepartitionMode::Overlapped && !plan.is_empty() {
                    pending_migrate = Some(plan);
                }
                // The decomposition changed: the old tree no longer
                // matches the labels, so induce from scratch.
                tree = None;
                chain_start = i;
            }
        }

        // Batch every step up to the next repartition boundary (capped at
        // `max_batch` so the per-batch state stays small), prepare their
        // inputs, and hand the whole stretch to the batch executor.
        let mut end = (i + max_batch).min(sim.len());
        if let Some(period) = opts.repartition_period.filter(|&p| p > 0) {
            end = end.min((i / period + 1) * period);
        }

        // Overlapped mode: if this batch ends at the next repartition
        // boundary, start planning it in the background now. The
        // simulation snapshots are precomputed, so the planner reads
        // exactly the inputs the boundary will read — the plan is
        // bit-identical to the synchronous one by construction
        // (DESIGN.md §6f, snapshot-staleness rule).
        if opts.repartition_mode == RepartitionMode::Overlapped && live_k >= 2 {
            if let Some(period) = opts.repartition_period.filter(|&p| p > 0) {
                if end < sim.len() && end.is_multiple_of(period) && end / period > boundaries_done {
                    let sim2 = Arc::clone(&sim);
                    let parts = node_parts.clone();
                    let pcfg2 = pcfg.clone();
                    let (at, lk, lane) = (end, live_k, (k + 1) as u32);
                    planner.submit(end, plan_version, &rec, move || {
                        pcfg2.recorder.set_lane(lane);
                        let _compute =
                            pcfg2.recorder.span("replan.compute").attr("boundary", at as u64);
                        plan_boundary(&sim2, at, lk, &parts, &pcfg2)
                    });
                }
            }
        }

        let faults: Vec<FaultInjector> =
            (i..end)
                .map(|j| {
                    if spent[j] {
                        FaultInjector::none()
                    } else {
                        step_fault(&opts.chaos, j, live_k)
                    }
                })
                .collect();
        let exec_opts = exec_options(opts);

        // A serial survivor (live_k == 1) exchanges no messages, so the
        // pool adds nothing — run it in-process like the other modes.
        let use_pool = live_k >= 2 && pool.is_some();
        let (result, carried_tree) = if use_pool {
            // Pool path: the workers rebuild the step inputs themselves
            // (tree-chain replay from `chain_start`), so the driver only
            // ships its mutable state and folds the reported outcomes —
            // the same fold the in-process executor applies to its
            // joined threads.
            let p = pool.as_mut().expect("use_pool checked pool.is_some()");
            let plans: Vec<Option<FaultPlan>> = faults.iter().map(|f| f.plan().cloned()).collect();
            let lookahead = match opts.schedule {
                Schedule::Pipelined { lookahead } => lookahead.max(1),
                Schedule::Barrier => 1,
            };
            let spec = BatchSpec {
                start: i,
                end,
                chain_start,
                live_k,
                epoch,
                node_parts: &node_parts,
                plans,
                migrate: pending_migrate.as_ref(),
                timeout_ms: exec_opts.timeout.as_millis() as u64,
                retries: exec_opts.retries,
                lookahead,
            };
            let outcomes = p.execute_batch(&spec, &route, &rec);
            epoch += (end - i) as u32;
            let recorders = vec![rec.clone(); end - i];
            (collect_batch(live_k, &recorders, outcomes), None)
        } else {
            // Per-step prep: decomposition views and the search-tree
            // chain (fresh induction when no tree carries over,
            // incremental refresh otherwise). All of this is
            // executor-independent, so it can be staged for the whole
            // batch before any rank thread starts.
            let mut prepped: Vec<PreparedStep> = Vec::with_capacity(end - i);
            let mut trees: Vec<DecisionTree<3>> = Vec::with_capacity(end - i);
            for j in i..end {
                let _step_span = rec.span("trace.step").attr("step", j);
                let view = SnapshotView::build(&sim, j, 5);
                let asg_now: Vec<u32> =
                    view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
                let elements = view.surface_elements(&node_parts);
                let bodies = view.face_bodies();
                let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
                let decomposition = build_decomposition(
                    &view.graph2.graph,
                    &view.graph2.node_of_vertex,
                    &asg_now,
                    &owners,
                    live_k,
                );
                let labels = view.contact.labels_from_node_parts(&node_parts);
                let new_tree = match trees.last().or(tree.as_ref()) {
                    None => induce_recorded(&view.contact.positions, &labels, live_k, &dcfg, &rec),
                    Some(t) => {
                        refresh_recorded(t, &view.contact.positions, &labels, live_k, &dcfg, &rec).0
                    }
                };
                trees.push(new_tree);
                prepped.push(PreparedStep { view, elements, bodies, decomposition });
            }

            let filters: Vec<DtreeFilter<'_, 3>> =
                trees.iter().map(|t| DtreeFilter::new(t, live_k)).collect();
            let inputs: Vec<StepInput<'_, DtreeFilter<'_, 3>>> = prepped
                .iter()
                .zip(filters.iter())
                .map(|(p, filter)| StepInput {
                    decomposition: &p.decomposition,
                    positions: &p.view.mesh.points,
                    elements: &p.elements,
                    bodies: &p.bodies,
                    filter,
                    tolerance: 0.4,
                    recorder: rec.clone(),
                })
                .collect();
            let result = match &opts.transport {
                TransportKind::TcpThreads { bind } => execute_steps_overlapped(
                    &inputs,
                    &faults,
                    &exec_opts,
                    pending_migrate.as_ref(),
                    &Tcp { bind: bind.clone() },
                ),
                _ => execute_steps_overlapped(
                    &inputs,
                    &faults,
                    &exec_opts,
                    pending_migrate.as_ref(),
                    &InProcess,
                ),
            };
            drop(inputs);
            drop(filters);
            (result, trees.pop())
        };

        match result {
            Ok(outs) => {
                for (off, out) in outs.iter().enumerate() {
                    commit_step(&mut report, i + off, out);
                }
                // The Migrate prologue (if any) executed with the batch.
                pending_migrate = None;
                tree = carried_tree;
                i = end;
            }
            Err(BatchError { completed, failed_step, error }) => {
                for (off, out) in completed.iter().enumerate() {
                    commit_step(&mut report, i + off, out);
                }
                let failed = i + failed_step;
                let dead = match error {
                    RuntimeError::RankLost { dead, .. } => dead,
                    RuntimeError::RankPanicked { rank } => vec![rank],
                    // Not a rank death: the transport itself is broken
                    // (mesh construction, fatal socket failure) — there
                    // is nothing to recover over.
                    RuntimeError::Transport(e) => {
                        return Err(format!("transport failed: {e}"));
                    }
                };
                let mut span = rec.span("recovery.repartition").attr("step", failed);
                span.set_attr("dead", dead.len());
                report.rank_losses += dead.len();
                // The rank space is about to change: any in-flight
                // background plan — including one landing exactly in
                // this planning window — was computed over dead ranks.
                // Discard it and bump the version so a plan the
                // recovery races with can never be applied; the next
                // boundary is recomputed over the survivors.
                planner.discard(&rec);
                plan_version += 1;
                pending_migrate = None;
                // Retire the dead ranks' worker processes and route the
                // surviving live ranks onto the surviving workers, in
                // the same order `compact_parts_after_loss` relabels.
                if let Some(p) = pool.as_mut() {
                    let dead_workers: Vec<u32> =
                        dead.iter().filter_map(|&d| route.get(d as usize).copied()).collect();
                    p.retire(&dead_workers);
                    route = route
                        .iter()
                        .enumerate()
                        .filter(|&(live, _)| !dead.contains(&(live as u32)))
                        .map(|(_, &w)| w)
                        .collect();
                }
                live_k = compact_parts_after_loss(&mut node_parts, live_k, &dead);
                let view = SnapshotView::build(&sim, failed, 5);
                if live_k >= 2 {
                    let old: Vec<u32> = view
                        .graph2
                        .node_of_vertex
                        .iter()
                        .map(|&n| node_parts[n as usize])
                        .collect();
                    let fresh = diffusion_repartition(&view.graph2.graph, live_k, &old, &pcfg);
                    let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
                    let plan = build_migration_recorded(&node_parts, &new_node_parts, live_k, &rec);
                    report.migrated += plan.total_moved();
                    report.repartitions += 1;
                    for (n, &p) in new_node_parts.iter().enumerate() {
                        if p != u32::MAX {
                            node_parts[n] = p;
                        }
                    }
                } else {
                    // Fewer than two survivors: collapse to a single
                    // rank — the executor degenerates to the serial
                    // contact search with no messages.
                    live_k = 1;
                    for p in node_parts.iter_mut() {
                        if *p != u32::MAX {
                            *p = 0;
                        }
                    }
                    rec.add("recovery.serial_fallback", 1);
                }
                tree = None;
                chain_start = failed;
                spent[failed] = true;
                i = failed;
            }
        }
    }
    Ok(report)
}

/// Computes the boundary-`at` diffusion repartition: the new node
/// assignment and the migration plan from the current one. The plan is
/// deliberately **unrecorded** — a background plan may be discarded
/// before it is applied, and a discarded plan must not pollute the
/// traffic counters. [`record_migration`] charges telemetry on
/// acceptance.
fn plan_boundary(
    sim: &SimResult,
    at: usize,
    live_k: usize,
    node_parts: &[u32],
    pcfg: &PartitionerConfig,
) -> (Vec<u32>, MigrationPlan) {
    let view = SnapshotView::build(sim, at, 5);
    let old: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    let fresh = diffusion_repartition(&view.graph2.graph, live_k, &old, pcfg);
    let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
    let plan = build_migration(node_parts, &new_node_parts, live_k);
    (new_node_parts, plan)
}

/// Charges an accepted migration plan to telemetry exactly like
/// [`build_migration_recorded`] does — the `migrate.plan` span and the
/// `traffic.migrated_units` counter — so Barrier and Overlapped runs
/// produce identical counters and [`TraceReport::verify_totals`] stays
/// an exact equality.
fn record_migration(rec: &Recorder, plan: &MigrationPlan, nodes: usize) {
    let mut span = rec.span("migrate.plan").attr("nodes", nodes).attr("k", plan.k);
    span.set_attr("moved", plan.total_moved());
    rec.add("traffic.migrated_units", plan.total_moved());
}

/// Owned per-step inputs staged for one batch.
struct PreparedStep {
    view: SnapshotView,
    elements: Vec<cip_contact::SurfaceElementInfo<3>>,
    bodies: Vec<u16>,
    decomposition: Decomposition,
}

/// Folds one committed step's output into the report.
fn commit_step(report: &mut TraceReport, step: usize, out: &cip_runtime::StepOutput) {
    assert_eq!(out.ghost_mismatches, 0, "step {step}: halo exchange delivered stale ghosts");
    report.halo += out.traffic.total_halo();
    report.shipments += out.traffic.total_shipments();
    report.contact_pairs += out.contact_pairs.len() as u64;
}

/// The per-step fault injector of a chaos run (disabled outside chaos
/// mode, and for ranks that no longer exist).
fn step_fault(chaos: &Option<ChaosOptions>, step: usize, live_k: usize) -> FaultInjector {
    let Some(c) = chaos else {
        return FaultInjector::none();
    };
    let base = FaultPlan {
        seed: c.seed,
        drop_permille: c.drop_permille,
        dup_permille: c.dup_permille,
        delay_permille: c.delay_permille,
        reorder_permille: c.reorder_permille,
        kill: None,
    };
    let mut plan = base.for_step(step as u64);
    if let Some((kill_step, rank)) = c.kill {
        if kill_step == step && (rank as usize) < live_k {
            plan.kill = Some(KillSpec { rank, after_sends: 0 });
        }
    }
    FaultInjector::with_plan(plan)
}

/// Executor options for one batch: chaos runs get the configured
/// loss-detection budget, clean runs the defaults; the schedule,
/// batching, and repartition-mode knobs come straight from the trace
/// options. Per-step injectors travel separately through the batch
/// executors' `faults` slice.
fn exec_options(opts: &TraceOptions) -> ExecOptions {
    let base = ExecOptions {
        schedule: opts.schedule,
        max_batch: opts.max_batch.max(1),
        repartition_mode: opts.repartition_mode,
        ..ExecOptions::default()
    };
    match &opts.chaos {
        None => base,
        Some(c) => {
            ExecOptions { timeout: Duration::from_millis(c.timeout_ms), retries: c.retries, ..base }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_telemetry::json;

    fn tiny_report() -> TraceReport {
        run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(4),
            seed: 7,
            repartition_period: Some(2),
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs")
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err =
            run_traced(&TraceOptions { scenario: "bogus".to_string(), ..TraceOptions::default() });
        assert!(err.is_err());
        assert!(scenario_config("head_on").is_some());
        assert!(scenario_config("bogus").is_none());
    }

    #[test]
    fn summary_totals_match_traffic_log() {
        let report = tiny_report();
        report.verify_totals().expect("summary counters must equal executed totals");
        assert!(report.repartitions >= 1, "period 2 over 4 snapshots must repartition");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_rank_lanes() {
        let report = tiny_report();
        let trace = report.chrome_trace();
        json::validate(&trace).expect("chrome trace must be valid JSON");
        // One thread-name row per rank, plus the phase spans on them.
        for rank in 0..report.k {
            assert!(trace.contains(&format!("\"rank {rank}\"")), "missing lane for rank {rank}");
        }
        assert!(trace.contains("\"driver\""), "missing the driver lane label");
        // No `exec.drain`: the pipelined default has no drain phase — a
        // rank searches as soon as its own inputs arrive.
        for name in ["exec.halo", "exec.ship", "exec.search", "dtree.induce", "trace.step"] {
            assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing span {name}");
        }
    }

    #[test]
    fn barrier_and_pipelined_schedules_agree_end_to_end() {
        let base = TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(5),
            seed: 7,
            repartition_period: Some(2),
            chaos: None,
            ..TraceOptions::default()
        };
        let barrier = run_traced(&TraceOptions { schedule: Schedule::Barrier, ..base.clone() })
            .expect("barrier run executes");
        let piped = run_traced(&base).expect("pipelined run executes");
        assert_eq!(piped.halo, barrier.halo);
        assert_eq!(piped.shipments, barrier.shipments);
        assert_eq!(piped.contact_pairs, barrier.contact_pairs);
        assert_eq!(piped.migrated, barrier.migrated);
        assert_eq!(piped.repartitions, barrier.repartitions);
        piped.verify_totals().expect("pipelined counters stay exact");
        barrier.verify_totals().expect("barrier counters stay exact");
    }

    #[test]
    fn summary_json_is_valid_and_self_describing() {
        let report = tiny_report();
        let doc = report.summary_json();
        json::validate(&doc).expect("summary.json must be valid JSON");
        assert!(doc.contains(&format!("\"schema\":\"{}\"", cip_core::RESULTS_SCHEMA)));
        assert!(doc.contains("\"totals\":"));
        assert!(doc.contains("traffic.halo_units"));
    }

    #[test]
    fn refresh_is_exercised_between_steps() {
        let report = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 1,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let summary = report.summary();
        // 1 fresh induction + 2 incremental refreshes (refresh may nest
        // further inductions for impure leaves, so only a lower bound on
        // induce counts holds).
        assert_eq!(summary.span("dtree.refresh").map(|s| s.count), Some(2));
        assert!(summary.span("dtree.induce").map(|s| s.count).unwrap_or(0) >= 1);
    }

    #[test]
    fn killed_rank_is_recovered_and_pairs_match_the_clean_run() {
        let clean = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(4),
            seed: 7,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let chaotic = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 3,
            snapshots: Some(4),
            seed: 7,
            repartition_period: None,
            chaos: Some(ChaosOptions {
                seed: 21,
                kill: Some((1, 1)),
                timeout_ms: 300,
                retries: 2,
                ..ChaosOptions::default()
            }),
            ..TraceOptions::default()
        })
        .expect("chaos run recovers");
        // The distributed search equals the serial oracle at any k, so the
        // recovered run finds exactly the clean run's pairs.
        assert_eq!(chaotic.contact_pairs, clean.contact_pairs);
        assert_eq!(chaotic.rank_losses, 1);
        assert!(chaotic.repartitions >= 1, "recovery must repartition the survivors");
        chaotic.verify_totals().expect("counters stay exact across a recovery");
        // The fault and recovery are observable in the summary.
        let rec = &chaotic.recorder;
        assert_eq!(rec.counter_value("fault.killed_ranks"), 1);
        assert_eq!(rec.counter_value("recovery.rank_dead"), 1);
        let summary = chaotic.summary();
        assert!(summary.span("recovery.repartition").map(|s| s.count).unwrap_or(0) >= 1);
        assert!(chaotic.summary_json().contains("fault.killed_ranks"));
    }

    #[test]
    fn message_chaos_run_matches_the_clean_run() {
        let clean = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 3,
            repartition_period: None,
            chaos: None,
            ..TraceOptions::default()
        })
        .expect("tiny scenario runs");
        let chaotic = run_traced(&TraceOptions {
            scenario: "tiny".to_string(),
            k: 2,
            snapshots: Some(3),
            seed: 3,
            repartition_period: None,
            chaos: Some(ChaosOptions {
                seed: 1337,
                drop_permille: 150,
                dup_permille: 80,
                delay_permille: 80,
                reorder_permille: 80,
                timeout_ms: 300,
                retries: 2,
                ..ChaosOptions::default()
            }),
            ..TraceOptions::default()
        })
        .expect("message faults are repaired in place");
        assert_eq!(chaotic.contact_pairs, clean.contact_pairs);
        assert_eq!(chaotic.halo, clean.halo, "first-transmission traffic is fault-invariant");
        assert_eq!(chaotic.rank_losses, 0);
        chaotic.verify_totals().expect("counters stay exact under message chaos");
    }
}
