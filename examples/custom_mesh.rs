//! Bring your own mesh: build a `cip::mesh::Mesh` by hand (two colliding
//! bars), extract its surface, and run the full MCML+DT decomposition on
//! it — the integration path for real simulation codes that do not use
//! the bundled synthetic workload.
//!
//! Run with: `cargo run --release --example custom_mesh`

use cip::contact::{find_contact_pairs, n_remote, DtreeFilter, SurfaceElementInfo};
use cip::dtree::{induce, DtreeConfig};
use cip::geom::{Aabb, Point};
use cip::mesh::graphs::{nodal_graph, NodalGraphOptions};
use cip::mesh::{extract_surface, generators};
use cip::partition::{partition_kway, PartitionerConfig};

fn main() {
    let k = 6;

    // Two bars approaching head-on with a small gap.
    let mut mesh = generators::hex_box([20, 4, 4], Point::new([0.0, 0.0, 0.0]), [1.0; 3], 0);
    let bar2 = generators::hex_box([20, 4, 4], Point::new([20.5, 0.0, 0.0]), [1.0; 3], 1);
    mesh.append(&bar2);
    println!("custom mesh: {} nodes, {} elements, 2 bodies", mesh.num_nodes(), mesh.num_elements());

    // The application decides which boundary faces are contact candidates;
    // here: every boundary face within 3 units of the gap plane x = 20.25.
    let full_surface = extract_surface(&mesh);
    let near_gap: Vec<_> = full_surface
        .faces
        .iter()
        .filter(|sf| {
            sf.face.nodes().iter().all(|&n| (mesh.points[n as usize][0] - 20.25).abs() < 3.0)
        })
        .copied()
        .collect();
    let mut contact_nodes: Vec<u32> =
        near_gap.iter().flat_map(|sf| sf.face.nodes().iter().copied()).collect();
    contact_nodes.sort_unstable();
    contact_nodes.dedup();
    println!(
        "surface: {} boundary faces total, {} contact faces, {} contact nodes",
        full_surface.num_faces(),
        near_gap.len(),
        contact_nodes.len()
    );

    // Two-constraint nodal graph and partition.
    let mut mask = vec![false; mesh.num_nodes()];
    for &n in &contact_nodes {
        mask[n as usize] = true;
    }
    let ng = nodal_graph(&mesh, &mask, NodalGraphOptions::default());
    let asg = partition_kway(&ng.graph, k, &PartitionerConfig::default());
    let node_parts = ng.assignment_on_nodes(&asg);

    // Search tree over the contact nodes.
    let positions: Vec<Point<3>> = contact_nodes.iter().map(|&n| mesh.points[n as usize]).collect();
    let labels: Vec<u32> = contact_nodes.iter().map(|&n| node_parts[n as usize]).collect();
    let tree = induce(&positions, &labels, k, &DtreeConfig::search_tree());
    println!("search tree: {} nodes", tree.num_nodes());

    // Global search for the contact faces.
    let elements: Vec<SurfaceElementInfo<3>> = near_gap
        .iter()
        .map(|sf| {
            let mut bbox = Aabb::empty();
            for &n in sf.face.nodes() {
                bbox.grow(&mesh.points[n as usize]);
            }
            SurfaceElementInfo { bbox, owner: node_parts[sf.face.nodes()[0] as usize] }
        })
        .collect();
    println!("NRemote: {}", n_remote(&elements, &DtreeFilter::new(&tree, k)));

    // And the actual (local-search) contact pairs across the gap, with a
    // capture tolerance of 0.6 — the bars are 0.5 apart, so faces across
    // the gap must pair up.
    let boxes: Vec<Aabb<3>> = elements.iter().map(|e| e.bbox).collect();
    let bodies: Vec<u16> = near_gap.iter().map(|sf| sf.body).collect();
    let pairs = find_contact_pairs(&boxes, &bodies, 0.6);
    println!("local search: {} cross-body candidate pairs", pairs.len());
    assert!(!pairs.is_empty(), "bars 0.5 apart with tolerance 0.6 must produce pairs");
}
