//! Full-sequence comparison on the projectile/two-plate workload: run
//! MCML+DT and ML+RCB over a whole snapshot sequence and print the
//! per-snapshot communication trajectory — the motivating scenario of the
//! paper's introduction.
//!
//! Run with: `cargo run --release --example projectile_impact`

use cip::core::{average_metrics, evaluate_mcml_dt, evaluate_ml_rcb, McmlDtConfig, MlRcbConfig};
use cip::sim::SimConfig;

fn main() {
    let k = 16;
    let mut cfg = SimConfig::small();
    cfg.snapshots = 40;
    let sim = cip::sim::run(&cfg);
    println!(
        "projectile impact: {} nodes, {} snapshots, k = {k}\n",
        sim.base.num_nodes(),
        sim.len()
    );

    let (mc, stats) = evaluate_mcml_dt(&sim, &McmlDtConfig::paper(k));
    let ml = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(k));
    if let Some(s) = stats {
        println!(
            "DT-friendly correction: {} regions (max_p={}, max_i={})\n",
            s.regions, s.max_p, s.max_i
        );
    }

    println!(
        "{:>5} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "snap", "contact", "MC:FE", "MC:tree", "MC:ship", "ML:FE", "ML:m2m", "ML:upd", "ML:ship"
    );
    for (i, (a, b)) in mc.iter().zip(ml.iter()).enumerate() {
        if i % 4 != 0 && i + 1 != mc.len() {
            continue;
        }
        println!(
            "{:>5} {:>7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
            i,
            a.contact_points,
            a.fe_comm,
            a.nt_nodes,
            a.n_remote,
            b.fe_comm,
            b.m2m_comm,
            b.upd_comm,
            b.n_remote
        );
    }

    let ra = average_metrics(&mc);
    let rb = average_metrics(&ml);
    println!("\naverages:");
    println!(
        "  MCML+DT: FEComm {:.0}, NTNodes {:.0}, NRemote {:.0}  -> non-search comm {:.0}",
        ra.fe_comm,
        ra.nt_nodes,
        ra.n_remote,
        ra.non_search_comm()
    );
    println!(
        "  ML+RCB : FEComm {:.0}, M2MComm {:.0}, UpdComm {:.0}, NRemote {:.0} -> non-search comm {:.0}",
        rb.fe_comm,
        rb.m2m_comm,
        rb.upd_comm,
        rb.n_remote,
        rb.non_search_comm()
    );
    let overhead = rb.non_search_comm() / ra.non_search_comm() - 1.0;
    println!(
        "  ML+RCB needs {:+.0}% {} per-step communication (M2M counted twice, as in §5.2)",
        100.0 * overhead.abs(),
        if overhead >= 0.0 { "more" } else { "less" }
    );
}
