//! Adaptive repartitioning strategies (§4.3 of the paper): as the
//! penetration erodes elements and the contact set drifts, the fixed
//! partition goes out of balance. This example compares the two
//! repartitioning primitives — scratch-remap and local diffusion — on the
//! evolving workload, measuring restored balance vs. migration cost.
//!
//! Run with: `cargo run --release --example repartitioning`

use cip::core::SnapshotView;
use cip::graph::Partition;
use cip::partition::repart::migration_count;
use cip::partition::{diffusion_repartition, partition_kway, repartition, PartitionerConfig};
use cip::sim::SimConfig;

fn main() {
    let k = 12;
    let mut cfg = SimConfig::small();
    cfg.snapshots = 20;
    let sim = cip::sim::run(&cfg);
    let pcfg = PartitionerConfig::default();

    // Partition snapshot 0, then carry the assignment to the final
    // snapshot where erosion has changed the graph.
    let view0 = SnapshotView::build(&sim, 0, 5);
    let asg0 = partition_kway(&view0.graph2.graph, k, &pcfg);
    let node_parts = view0.graph2.assignment_on_nodes(&asg0);

    let last = sim.len() - 1;
    let view = SnapshotView::build(&sim, last, 5);
    let carried: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    let p_carried = Partition::from_assignment(&view.graph2.graph, k, carried.clone());
    println!(
        "carried partition at snapshot {last}: FE imbalance {:.3}, contact imbalance {:.3}",
        p_carried.imbalance(0),
        p_carried.imbalance(1)
    );

    for (name, fresh) in [
        ("scratch-remap", repartition(&view.graph2.graph, k, &carried, &pcfg)),
        ("diffusion", diffusion_repartition(&view.graph2.graph, k, &carried, &pcfg)),
    ] {
        let p = Partition::from_assignment(&view.graph2.graph, k, fresh.clone());
        let moved = migration_count(&carried, &fresh);
        println!(
            "{name:>14}: FE imbalance {:.3}, contact imbalance {:.3}, migrated {moved} of {} vertices ({:.1}%)",
            p.imbalance(0),
            p.imbalance(1),
            view.graph2.graph.nv(),
            100.0 * moved as f64 / view.graph2.graph.nv() as f64
        );
    }
    println!("\ndiffusion restores balance with far less data movement when the");
    println!("drift is mild — the trade-off §4.3 of the paper navigates with its");
    println!("hybrid update strategy.");
}
