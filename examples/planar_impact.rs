//! 2D planar impact: every algorithm in this library is generic over the
//! spatial dimension, so the full MCML+DT machinery runs on plane-strain
//! problems too (the paper's own illustrations — Figures 1 and 2 — are
//! 2D). This example builds a 2D projectile/plate mesh by hand, erodes a
//! channel, and runs partitioning, the DT-friendly correction, search-tree
//! induction, and both global-search filters natively in 2D.
//!
//! Run with: `cargo run --release --example planar_impact`

use cip::contact::{n_remote, BboxFilter, DtreeFilter, SurfaceElementInfo};
use cip::core::{dt_friendly_correct, DtFriendlyConfig};
use cip::dtree::{induce, DtreeConfig};
use cip::geom::{Aabb, Point};
use cip::graph::{GraphBuilder, Partition};
use cip::mesh::{extract_surface, generators, Mesh};
use cip::partition::{partition_kway, PartitionerConfig};

/// Builds the 2D scene: a horizontal plate strip and a vertical rod above
/// it, with a channel already eroded halfway through the plate.
fn build_scene() -> Mesh<2> {
    let mut mesh = generators::quad_grid([60, 6], Point::new([-30.0, -6.0]), [1.0, 1.0], 0);
    let rod = generators::quad_grid([4, 20], Point::new([-2.0, -3.0]), [1.0, 1.0], 1);
    mesh.append(&rod);
    // Erode the plate cells inside the rod's footprint down to half depth
    // (the rod has punched halfway through).
    for e in 0..mesh.num_elements() as u32 {
        if mesh.body[e as usize] != 0 {
            continue;
        }
        let c = mesh.element_centroid(e);
        if c[0].abs() <= 2.5 && c[1] >= -3.5 {
            mesh.erode(e);
        }
    }
    mesh
}

fn main() {
    let k = 6;
    let mesh = build_scene();
    let surface = extract_surface(&mesh);
    println!(
        "2D scene: {} nodes, {} elements ({} eroded), {} surface edges, {} contact nodes",
        mesh.num_nodes(),
        mesh.num_elements(),
        mesh.num_elements() - mesh.num_live_elements(),
        surface.num_faces(),
        surface.num_contact_nodes()
    );

    // Two-constraint nodal graph, built directly (the mesh crate's
    // nodal_graph works for any D).
    let mask = surface.contact_node_mask(mesh.num_nodes());
    let ng = cip::mesh::graphs::nodal_graph(
        &mesh,
        &mask,
        cip::mesh::graphs::NodalGraphOptions::default(),
    );
    let mut asg = partition_kway(&ng.graph, k, &PartitionerConfig::default());

    // DT-friendly correction natively in 2D.
    let positions: Vec<Point<2>> =
        ng.node_of_vertex.iter().map(|&n| mesh.points[n as usize]).collect();
    let stats =
        dt_friendly_correct(&ng.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let part = Partition::from_assignment(&ng.graph, k, asg.clone());
    println!(
        "partition: imbalance {:.3}/{:.3}, {} axis-parallel regions after correction",
        part.imbalance(0),
        part.imbalance(1),
        stats.regions
    );

    // 2D search tree over the contact nodes.
    let node_parts = ng.assignment_on_nodes(&asg);
    let contact_pts: Vec<Point<2>> =
        surface.contact_nodes.iter().map(|&n| mesh.points[n as usize]).collect();
    let labels: Vec<u32> = surface.contact_nodes.iter().map(|&n| node_parts[n as usize]).collect();
    let tree = induce(&contact_pts, &labels, k, &DtreeConfig::search_tree());
    println!("2D search tree: {} nodes, depth {}", tree.num_nodes(), tree.depth());

    // Compare the two global-search filters on the surface edges.
    let elements: Vec<SurfaceElementInfo<2>> = surface
        .faces
        .iter()
        .map(|sf| {
            let mut bbox = Aabb::empty();
            for &n in sf.face.nodes() {
                bbox.grow(&mesh.points[n as usize]);
            }
            let owner = node_parts[sf.face.nodes()[0] as usize];
            SurfaceElementInfo { bbox, owner }
        })
        .collect();
    let dt_ship = n_remote(&elements, &DtreeFilter::new(&tree, k));
    let bb_ship = n_remote(&elements, &BboxFilter::from_points(&contact_pts, &labels, k));
    println!(
        "global search shipments: decision tree {dt_ship}, bounding boxes {bb_ship} \
         ({} surface edges)",
        elements.len()
    );

    // Sanity: demonstrate a pure-2D property the paper's Figure 1 states.
    let bounds = Aabb::from_points(&contact_pts);
    assert!(
        tree.leaf_regions(&bounds).iter().all(|l| l.pure || l.count == 0),
        "2D purity-stopped tree must have pure leaves"
    );
    println!("all 2D leaves pure ✓");

    // The contrived graph-free path also works: partition raw contact
    // points with a hand-built proximity graph (showcasing the API on
    // point clouds without a mesh).
    let mut b = GraphBuilder::new(contact_pts.len(), 1);
    for v in 0..contact_pts.len() as u32 {
        b.set_vwgt(v, &[1]);
    }
    for i in 0..contact_pts.len() {
        for j in i + 1..contact_pts.len() {
            if contact_pts[i].dist2(&contact_pts[j]) <= 1.01 {
                b.add_edge(i as u32, j as u32, 1);
            }
        }
    }
    let pg = b.build();
    let pasg = partition_kway(&pg, 4, &PartitionerConfig::with_seed(7));
    let pp = Partition::from_assignment(&pg, 4, pasg);
    println!(
        "bonus: contact-point proximity graph partitioned 4-way, imbalance {:.3}",
        pp.imbalance(0)
    );
}
