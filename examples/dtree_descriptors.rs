//! Decision trees as subdomain geometric descriptors (Figure 1 of the
//! paper, end to end): partition a 2D point cloud, induce the search
//! tree, enumerate each subdomain's rectangles, and compare the tree
//! filter against bounding boxes on a batch of box queries.
//!
//! Run with: `cargo run --release --example dtree_descriptors`

use cip::contact::{BboxFilter, DtreeFilter, GlobalFilter};
use cip::dtree::{induce, DtreeConfig};
use cip::geom::{Aabb, Point};

fn main() {
    // A ring of contact points (like the surface nodes of a hole in a
    // plate), partitioned the way a *graph* partitioner would: into
    // contiguous arcs, where each of the 4 parts owns two arcs on
    // opposite sides of the ring. Each part's bounding box then spans the
    // whole ring — the worst case for the bbox filter, and exactly the
    // kind of geometry-blind decomposition §4 warns about.
    let mut pts: Vec<Point<2>> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let k = 4usize;
    for i in 0..360 {
        let a = (i as f64).to_radians();
        let r = 10.0 + (i % 7) as f64 * 0.15;
        pts.push(Point::new([r * a.cos(), r * a.sin()]));
        labels.push(((i / 45) % k) as u32); // eight 45° arcs, opposite arcs share a part
    }

    // Induce the search tree.
    let tree = induce(&pts, &labels, k, &DtreeConfig::search_tree());
    println!(
        "search tree: {} nodes, {} leaves, depth {}",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.depth()
    );

    // Each subdomain's descriptor = its leaf rectangles.
    let bounds = Aabb::from_points(&pts);
    let regions = tree.leaf_regions(&bounds);
    for part in 0..k as u32 {
        let rects: Vec<_> = regions.iter().filter(|r| r.part == part).collect();
        let area: f64 = rects.iter().map(|r| r.region.volume()).sum();
        println!(
            "  part {part}: {} rectangles, total area {:.1} (bbox of whole domain: {:.1})",
            rects.len(),
            area,
            bounds.volume()
        );
    }

    // Compare filters on realistic queries: probe boxes centered on the
    // contact points themselves (surface elements live where the points
    // are). A filter's false positives are the candidate parts that own no
    // point inside the probe.
    let dtf = DtreeFilter::new(&tree, k);
    let bbf = BboxFilter::from_points(&pts, &labels, k);
    let mut dt_fp = 0usize;
    let mut bb_fp = 0usize;
    let mut missed = 0usize;
    let mut out = Vec::new();
    for p in &pts {
        let q = Aabb::from_point(*p).inflate(1.0);
        // Oracle: parts that truly own a point in the probe box.
        let mut truth: Vec<u32> = pts
            .iter()
            .zip(labels.iter())
            .filter(|(pp, _)| q.contains_point(pp))
            .map(|(_, &l)| l)
            .collect();
        truth.sort_unstable();
        truth.dedup();

        dtf.candidate_parts(&q, &mut out);
        missed += truth.iter().filter(|t| !out.contains(t)).count();
        dt_fp += out.iter().filter(|c| !truth.contains(c)).count();
        bbf.candidate_parts(&q, &mut out);
        missed += truth.iter().filter(|t| !out.contains(t)).count();
        bb_fp += out.iter().filter(|c| !truth.contains(c)).count();
    }
    println!("\nfilter comparison over {} point-centered probes:", pts.len());
    println!("  decision tree: {dt_fp} false-positive shipments");
    println!("  bounding box : {bb_fp} false-positive shipments");
    println!("  missed contacts (must be 0 for both): {missed}");
    assert_eq!(missed, 0, "filters must never miss a contact");
}
