//! Execute one contact/impact time step across logical ranks — threads
//! with explicit message passing — and check the measured traffic against
//! the analytic metrics the evaluation reports. This is the "aha" of the
//! reproduction: FEComm and NRemote are not estimates, they are the exact
//! message counts of a runnable parallel step.
//!
//! Run with: `cargo run --release --example parallel_step`

use cip::contact::DtreeFilter;
use cip::core::{dt_friendly_correct, halo_traffic, DtFriendlyConfig, SnapshotView};
use cip::dtree::{induce, DtreeConfig};
use cip::partition::{partition_kway, PartitionerConfig};
use cip::runtime::{build_decomposition, execute_step, StepInput};
use cip::sim::SimConfig;

fn main() {
    let k = 8;
    let mut cfg = SimConfig::small();
    cfg.snapshots = 30;
    let sim = cip::sim::run(&cfg);

    // Decompose on snapshot 0 with the full MCML+DT pipeline.
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    println!("executing snapshots across {k} rank threads:\n");
    println!(
        "{:>5} {:>9} {:>11} {:>11} {:>9} {:>7}",
        "snap", "halo", "halo=pred?", "shipments", "pairs", "ghosts"
    );
    for i in [0usize, 10, 20, 29] {
        let view = SnapshotView::build(&sim, i, 5);
        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
        let elements = view.surface_elements(&node_parts);
        let bodies = view.face_bodies();
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let decomposition = build_decomposition(
            &view.graph2.graph,
            &view.graph2.node_of_vertex,
            &asg_now,
            &owners,
            k,
        );
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let filter = DtreeFilter::new(&tree, k);

        let out = execute_step(&StepInput {
            decomposition: &decomposition,
            positions: &view.mesh.points,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.4,
            recorder: cip::telemetry::Recorder::disabled(),
        })
        .expect("step executes without injected faults");
        let predicted = halo_traffic(&view.graph2.graph, &asg_now, k);
        println!(
            "{:>5} {:>9} {:>11} {:>11} {:>9} {:>7}",
            i,
            out.traffic.total_halo(),
            if out.traffic.halo == predicted.matrix { "exact" } else { "MISMATCH" },
            out.traffic.total_shipments(),
            out.contact_pairs.len(),
            out.ghost_mismatches,
        );
        assert_eq!(out.traffic.halo, predicted.matrix);
        assert_eq!(out.ghost_mismatches, 0);
    }
    println!("\nevery executed halo matrix equals the FEComm prediction, message for message.");
}
