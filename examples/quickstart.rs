//! Quickstart: partition one contact/impact mesh snapshot with MCML+DT
//! and inspect every stage of the pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use cip::contact::{n_remote, DtreeFilter};
use cip::core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip::dtree::{induce, DtreeConfig};
use cip::graph::{edge_cut, total_comm_volume, Partition};
use cip::partition::{partition_kway, PartitionerConfig};
use cip::sim::SimConfig;

fn main() {
    let k = 8;

    // 1. A contact/impact workload: projectile penetrating two plates.
    //    (Swap in your own mesh by constructing `cip::mesh::Mesh` directly.)
    let sim = cip::sim::run(&SimConfig::small());
    println!(
        "workload: {} nodes, {} elements, {} snapshots",
        sim.base.num_nodes(),
        sim.base.num_elements(),
        sim.len()
    );

    // 2. Build the two-constraint nodal graph of the first snapshot:
    //    constraint 0 = FE work (all nodes), constraint 1 = contact work
    //    (contact nodes only); contact-contact edges weighted 5.
    let view = SnapshotView::build(&sim, 0, 5);
    let g = &view.graph2.graph;
    println!(
        "nodal graph: {} vertices, {} edges, {} contact points",
        g.nv(),
        g.ne(),
        view.contact.len()
    );

    // 3. Multi-constraint multilevel partitioning.
    let mut asg = partition_kway(g, k, &PartitionerConfig::default());
    let p = Partition::from_assignment(g, k, asg.clone());
    println!(
        "partition: cut {}, FE imbalance {:.3}, contact imbalance {:.3}",
        edge_cut(g, &asg),
        p.imbalance(0),
        p.imbalance(1)
    );

    // 4. DT-friendly correction: make subdomain boundaries piecewise
    //    axes-parallel so the search tree stays small.
    let positions: Vec<_> =
        view.graph2.node_of_vertex.iter().map(|&n| view.mesh.points[n as usize]).collect();
    let stats = dt_friendly_correct(g, &positions, k, &mut asg, &DtFriendlyConfig::default());
    println!(
        "DT-friendly: {} regions, {} vertices relabeled, {} moved back by refinement",
        stats.regions, stats.relabeled, stats.refined
    );

    // 5. Induce the contact-search tree over the contact points.
    let node_parts = view.graph2.assignment_on_nodes(&asg);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    println!("search tree: {} nodes, depth {}", tree.num_nodes(), tree.depth());

    // 6. Global search: ship each surface element to the subdomains whose
    //    leaf regions its bounding box intersects.
    let elements = view.surface_elements(&node_parts);
    let shipped = n_remote(&elements, &DtreeFilter::new(&tree, k));
    println!(
        "global search: {} of {} surface elements shipped to remote parts (NRemote)",
        shipped,
        elements.len()
    );

    // 7. The FE-phase communication volume of the same decomposition.
    let asg_now: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    println!("FE halo-exchange volume (FEComm): {}", total_comm_volume(g, &asg_now));
}
