//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). This library holds the common
//! plumbing: workload construction at a named scale, running both
//! algorithms, and rendering/serializing result tables.

use cip_core::{
    average_metrics, evaluate_mcml_dt, evaluate_ml_rcb, McmlDtConfig, MetricsRow, MlRcbConfig,
};
use cip_sim::{SimConfig, SimResult};
use serde::Serialize;
use std::time::Instant;

pub mod pipeline_load;

/// Workload scale selector (command-line `--scale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~20k nodes; seconds per experiment. Default.
    Small,
    /// ~80k nodes; minutes for the full Table 1.
    Medium,
    /// ~150k nodes (the paper's node count).
    Paper,
}

impl Scale {
    /// Parses `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Self::Small),
            "medium" => Some(Self::Medium),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The simulation configuration for this scale.
    pub fn sim_config(self) -> SimConfig {
        match self {
            Self::Small => SimConfig::small(),
            Self::Medium => SimConfig::medium(),
            Self::Paper => SimConfig::paper_scale(),
        }
    }
}

/// Parses `--scale X --k A,B --snapshots N` style arguments with defaults.
pub struct HarnessArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Part counts to evaluate.
    pub ks: Vec<usize>,
    /// Optional snapshot-count override (shortens the sequence).
    pub snapshots: Option<usize>,
}

impl HarnessArgs {
    /// Parses from `std::env::args`, with the given default part counts.
    pub fn parse(default_ks: &[usize]) -> Self {
        let mut scale = Scale::Small;
        let mut ks = default_ks.to_vec();
        let mut snapshots = None;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = Scale::parse(&args[i + 1]).unwrap_or_else(|| {
                        eprintln!("unknown scale '{}', using small", args[i + 1]);
                        Scale::Small
                    });
                    i += 2;
                }
                "--k" if i + 1 < args.len() => {
                    ks = args[i + 1].split(',').filter_map(|s| s.parse().ok()).collect();
                    i += 2;
                }
                "--snapshots" if i + 1 < args.len() => {
                    snapshots = args[i + 1].parse().ok();
                    i += 2;
                }
                other => {
                    eprintln!("ignoring unknown argument '{other}'");
                    i += 1;
                }
            }
        }
        Self { scale, ks, snapshots }
    }

    /// Runs the simulation for these arguments.
    pub fn run_sim(&self) -> SimResult {
        let mut cfg = self.scale.sim_config();
        if let Some(s) = self.snapshots {
            cfg.snapshots = s;
        }
        let t = Instant::now();
        let sim = cip_sim::run(&cfg);
        eprintln!(
            "simulated {} snapshots ({} nodes, {} elements, first contact set: {} faces) in {:.1?}",
            sim.len(),
            sim.base.num_nodes(),
            sim.base.num_elements(),
            sim.snapshots[0].contact.num_faces(),
            t.elapsed()
        );
        sim
    }
}

/// One Table-1 comparison at a given k.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Entry {
    /// Part count.
    pub k: usize,
    /// MCML+DT averages.
    pub mcml_dt: MetricsRow,
    /// ML+RCB averages.
    pub ml_rcb: MetricsRow,
}

impl Table1Entry {
    /// The paper's §5.2 headline ratio: ML+RCB non-search communication
    /// (FEComm + 2·M2MComm) over MCML+DT's (FEComm), minus one — e.g.
    /// 0.72 means ML+RCB needs 72% more communication.
    pub fn non_search_overhead(&self) -> f64 {
        self.ml_rcb.non_search_comm() / self.mcml_dt.non_search_comm() - 1.0
    }

    /// Relative NRemote difference: positive when ML+RCB ships more
    /// surface elements than MCML+DT.
    pub fn n_remote_overhead(&self) -> f64 {
        self.ml_rcb.n_remote / self.mcml_dt.n_remote - 1.0
    }
}

/// Runs both algorithms at part count `k` and returns the averaged rows.
pub fn run_table1_entry(sim: &SimResult, k: usize) -> Table1Entry {
    let t = Instant::now();
    let (mc, _) = evaluate_mcml_dt(sim, &McmlDtConfig::paper(k));
    eprintln!("  MCML+DT k={k}: {:.1?}", t.elapsed());
    let t = Instant::now();
    let ml = evaluate_ml_rcb(sim, &MlRcbConfig::paper(k));
    eprintln!("  ML+RCB  k={k}: {:.1?}", t.elapsed());
    Table1Entry { k, mcml_dt: average_metrics(&mc), ml_rcb: average_metrics(&ml) }
}

/// Renders the Table-1 layout (same columns as the paper).
pub fn render_table1(entries: &[Table1Entry]) -> String {
    let mut s = String::new();
    s.push_str(
        "           |            MCML+DT Algorithm |                     ML+RCB Algorithm\n",
    );
    s.push_str("           |   FEComm  NTNodes   NRemote |   FEComm  M2MComm  UpdComm   NRemote\n");
    s.push_str(
        "-----------+------------------------------+--------------------------------------\n",
    );
    for e in entries {
        s.push_str(&format!(
            "{:>8}-way | {:>8.0} {:>8.0} {:>9.0} | {:>8.0} {:>8.0} {:>8.0} {:>9.0}\n",
            e.k,
            e.mcml_dt.fe_comm,
            e.mcml_dt.nt_nodes,
            e.mcml_dt.n_remote,
            e.ml_rcb.fe_comm,
            e.ml_rcb.m2m_comm,
            e.ml_rcb.upd_comm,
            e.ml_rcb.n_remote,
        ));
    }
    s.push('\n');
    for e in entries {
        s.push_str(&format!(
            "k={:<4} ML+RCB non-search comm overhead vs MCML+DT: {:+.0}%   NRemote overhead: {:+.1}%\n",
            e.k,
            100.0 * e.non_search_overhead(),
            100.0 * e.n_remote_overhead(),
        ));
    }
    s
}

/// Writes a serializable result to `results/<name>.json` (best effort; the
/// textual output is the primary artifact). The value is wrapped in the
/// shared `cip-results-v1` envelope ([`cip_core::results_document`]), the
/// same schema `cip-trace` writes, so everything under `results/` is
/// machine-readable uniformly.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            let doc = cip_core::results_document(name, &s);
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn table_renders_all_entries() {
        let e = Table1Entry {
            k: 25,
            mcml_dt: MetricsRow {
                fe_comm: 100.0,
                nt_nodes: 10.0,
                n_remote: 5.0,
                ..Default::default()
            },
            ml_rcb: MetricsRow {
                fe_comm: 80.0,
                m2m_comm: 40.0,
                upd_comm: 2.0,
                n_remote: 6.0,
                ..Default::default()
            },
        };
        let s = render_table1(std::slice::from_ref(&e));
        assert!(s.contains("25-way"));
        assert!(s.contains("+60%"), "{s}"); // (80 + 80) / 100 - 1
        assert!((e.n_remote_overhead() - 0.2).abs() < 1e-12);
    }
}
