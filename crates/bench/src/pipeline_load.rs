//! Shared multi-step workload for the pipelined-executor benchmarks.
//!
//! Both `benches/exec_pipeline.rs` and the `runtime_snapshot` CI binary
//! need the same thing: an owned batch of step inputs whose per-rank
//! load is deliberately *skewed*, because a pipelined schedule only pays
//! off when some ranks finish their step early and would otherwise sit
//! at a barrier waiting for the straggler. The scenario is a 1D chain of
//! surface boxes drifting a little each step, with rank 0 owning a
//! configurable fraction of the chain and the remaining ranks splitting
//! the rest evenly.

use cip_contact::{BboxFilter, SurfaceElementInfo};
use cip_geom::{Aabb, Point};
use cip_graph::GraphBuilder;
use cip_runtime::{build_decomposition, Decomposition, StepInput};
use cip_telemetry::Recorder;

/// Owned data for an `n_steps`-step batch (the [`StepInput`]s borrow it).
pub struct BatchScenario {
    /// The fixed decomposition every step of the batch runs under.
    pub decomposition: Decomposition,
    /// Per-step node positions.
    pub positions: Vec<Vec<Point<3>>>,
    /// Per-step surface elements (one box per node, drifting).
    pub elements: Vec<Vec<SurfaceElementInfo<3>>>,
    /// Body id per element (two interleaved bodies → plenty of pairs).
    pub bodies: Vec<u16>,
    /// Per-step broad-phase filters.
    pub filters: Vec<BboxFilter<3>>,
}

/// Builds an `n`-node chain split across `k` ranks for `n_steps` steps,
/// with rank 0 owning `skew` of the nodes (0.0 < `skew` < 1.0; pass
/// `1.0 / k as f64` for an even split) and the other ranks splitting the
/// remainder evenly.
pub fn skewed_chain(n: usize, k: usize, n_steps: usize, skew: f64) -> BatchScenario {
    let mut b = GraphBuilder::new(n, 1);
    for v in 0..n as u32 {
        b.set_vwgt(v, &[1]);
    }
    for v in 0..n as u32 - 1 {
        b.add_edge(v, v + 1, 1);
    }
    let g = b.build();

    let head = ((n as f64 * skew) as usize).clamp(1, n - (k - 1).max(1));
    let rest = n - head;
    let asg: Vec<u32> = (0..n)
        .map(|v| {
            if v < head || k == 1 {
                0
            } else {
                (1 + (v - head) * (k - 1) / rest.max(1)).min(k - 1) as u32
            }
        })
        .collect();
    let owners = asg.clone();
    let nov: Vec<u32> = (0..n as u32).collect();
    let decomposition = build_decomposition(&g, &nov, &asg, &owners, k);

    let bodies: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
    let mut positions = Vec::new();
    let mut elements = Vec::new();
    let mut filters = Vec::new();
    for s in 0..n_steps {
        let drift = s as f64 * 0.07;
        let pos: Vec<Point<3>> = (0..n).map(|i| Point::new([i as f64 + drift, 0.0, 0.0])).collect();
        let els: Vec<SurfaceElementInfo<3>> = (0..n)
            .map(|i| SurfaceElementInfo {
                bbox: Aabb::new(
                    Point::new([i as f64 + drift, 0.0, 0.0]),
                    Point::new([i as f64 + drift + 1.0, 1.0, 1.0]),
                ),
                owner: asg[i],
            })
            .collect();
        let boxes: Vec<(u32, Aabb<3>)> = els.iter().map(|e| (e.owner, e.bbox)).collect();
        filters.push(BboxFilter::from_boxes(&boxes, k));
        positions.push(pos);
        elements.push(els);
    }
    BatchScenario { decomposition, positions, elements, bodies, filters }
}

/// Step inputs borrowing `sc`, all sharing one recorder.
pub fn batch_inputs<'a>(
    sc: &'a BatchScenario,
    rec: &Recorder,
) -> Vec<StepInput<'a, BboxFilter<3>>> {
    (0..sc.positions.len())
        .map(|s| StepInput {
            decomposition: &sc.decomposition,
            positions: &sc.positions[s],
            elements: &sc.elements[s],
            bodies: &sc.bodies,
            filter: &sc.filters[s],
            tolerance: 0.2,
            recorder: rec.clone(),
        })
        .collect()
}
