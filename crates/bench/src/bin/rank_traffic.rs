//! Per-rank traffic analysis (extension beyond the paper's totals).
//!
//! Table 1 reports *total* communication counts; on a real machine the
//! step time is bounded by the busiest rank. This binary breaks each
//! communication kind down per rank for both algorithms on one snapshot:
//! halo exchange (FEComm), global-search shipments (NRemote), and — for
//! ML+RCB — the mesh-to-mesh transfer (M2MComm), reporting totals,
//! bottleneck-rank volume, traffic imbalance, and active pair counts.
//!
//! Usage: `cargo run --release -p cip-bench --bin rank_traffic [--scale ...] [--k 25]`

use cip_contact::{BboxFilter, DtreeFilter};
use cip_core::{
    dt_friendly_correct, halo_traffic, m2m_traffic, shipment_traffic, DtFriendlyConfig,
    RankTraffic, SnapshotView,
};
use cip_dtree::{induce, DtreeConfig};
use cip_geom::RcbTree;
use cip_partition::{max_weight_assignment, partition_kway, PartitionerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct TrafficRow {
    algorithm: String,
    kind: String,
    total: u64,
    bottleneck_rank_volume: u64,
    traffic_imbalance: f64,
    active_pairs: usize,
}

fn row(algorithm: &str, kind: &str, t: &RankTraffic) -> TrafficRow {
    TrafficRow {
        algorithm: algorithm.into(),
        kind: kind.into(),
        total: t.total(),
        bottleneck_rank_volume: t.max_rank_volume(),
        traffic_imbalance: t.traffic_imbalance(),
        active_pairs: t.active_pairs(),
    }
}

fn print_row(r: &TrafficRow) {
    println!(
        "{:<9} {:<12} {:>9} {:>12} {:>10.2} {:>12}",
        r.algorithm, r.kind, r.total, r.bottleneck_rank_volume, r.traffic_imbalance, r.active_pairs
    );
}

fn main() {
    let args = cip_bench::HarnessArgs::parse(&[25]);
    let k = args.ks[0];
    let mut sim_cfg = args.scale.sim_config();
    sim_cfg.snapshots = args.snapshots.unwrap_or(50);
    let sim = cip_sim::run(&sim_cfg);
    // Analyze a mid-penetration snapshot (craters open, both plates hit).
    let i = sim.len() / 2;
    let view = SnapshotView::build(&sim, i, 5);
    println!(
        "rank traffic at snapshot {i} (step {}), k = {k}, {} contact points\n",
        sim.snapshots[i].step,
        view.contact.len()
    );
    println!(
        "{:<9} {:<12} {:>9} {:>12} {:>10} {:>12}",
        "algo", "kind", "total", "bottleneck", "imbalance", "active pairs"
    );

    let mut rows = Vec::new();

    // ---- MCML+DT ------------------------------------------------------
    let pcfg = PartitionerConfig::default();
    let mut asg = partition_kway(&view.graph2.graph, k, &pcfg);
    let positions: Vec<_> =
        view.graph2.node_of_vertex.iter().map(|&n| view.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view.graph2.assignment_on_nodes(&asg);

    let halo = halo_traffic(&view.graph2.graph, &asg, k);
    rows.push(row("MCML+DT", "halo (FE)", &halo));

    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    let elements = view.surface_elements(&node_parts);
    let ship = shipment_traffic(&elements, &DtreeFilter::new(&tree, k), k);
    rows.push(row("MCML+DT", "shipments", &ship));

    // ---- ML+RCB -------------------------------------------------------
    let fe_asg = partition_kway(&view.graph1.graph, k, &pcfg);
    let fe_node_parts = view.graph1.assignment_on_nodes(&fe_asg);
    let halo_b = halo_traffic(&view.graph1.graph, &fe_asg, k);
    rows.push(row("ML+RCB", "halo (FE)", &halo_b));

    let weights = vec![1.0; view.contact.len()];
    let (_, rcb_labels) = RcbTree::build(&view.contact.positions, &weights, k);
    let fe_labels = view.contact.labels_from_node_parts(&fe_node_parts);
    // Optimal relabeling, as in the M2MComm metric.
    let mut overlap = vec![0i64; k * k];
    for (ci, &rp) in rcb_labels.iter().enumerate() {
        overlap[rp as usize * k + fe_labels[ci] as usize] += 1;
    }
    let sigma = max_weight_assignment(k, &overlap);
    let relabeled: Vec<u32> = rcb_labels.iter().map(|&rp| sigma[rp as usize] as u32).collect();
    let m2m = m2m_traffic(&fe_labels, &relabeled, k);
    rows.push(row("ML+RCB", "m2m (x2)", &m2m));

    let mut rcb_node_parts = vec![u32::MAX; view.mesh.num_nodes()];
    for (ci, &n) in view.contact.nodes.iter().enumerate() {
        rcb_node_parts[n as usize] = relabeled[ci];
    }
    let bfilter = BboxFilter::from_points(&view.contact.positions, &relabeled, k);
    let elements_b = view.surface_elements(&rcb_node_parts);
    let ship_b = shipment_traffic(&elements_b, &bfilter, k);
    rows.push(row("ML+RCB", "shipments", &ship_b));

    for r in &rows {
        print_row(r);
    }

    // Per-step bottleneck comparison (m2m counted twice: to contact
    // decomposition and back).
    let mc_bottleneck = halo.max_rank_volume() + ship.max_rank_volume();
    let ml_bottleneck =
        halo_b.max_rank_volume() + 2 * m2m.max_rank_volume() + ship_b.max_rank_volume();
    println!("\nper-step bottleneck-rank volume (halo + 2*m2m + shipments):");
    println!("  MCML+DT: {mc_bottleneck}");
    println!(
        "  ML+RCB : {ml_bottleneck}  ({:+.0}%)",
        100.0 * (ml_bottleneck as f64 / mc_bottleneck as f64 - 1.0)
    );

    cip_bench::write_json("rank_traffic", &rows);
}
