//! Regenerates **Figure 2**'s point quantitatively: a 2-way partitioning
//! whose boundary runs along a diagonal forces the decision tree into a
//! fine-grained staircase, while the paper's DT-friendly correction
//! (§4.2) straightens the boundary and collapses the tree.
//!
//! Prints tree sizes for the raw diagonal partition and after the
//! correction, across grid sizes.
//!
//! Usage: `cargo run --release -p cip-bench --bin figure2`

use cip_core::{dt_friendly_correct, DtFriendlyConfig};
use cip_dtree::{induce, DtreeConfig};
use cip_geom::Point;
use cip_graph::{edge_cut, GraphBuilder, Partition};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    diagonal_tree_nodes: usize,
    corrected_tree_nodes: usize,
    diagonal_cut: i64,
    corrected_cut: i64,
    corrected_imbalance: f64,
}

fn main() {
    println!("Figure 2 — decision-tree blowup on diagonal boundaries, and the DT-friendly fix\n");
    println!(
        "{:>6} | {:>14} {:>15} | {:>12} {:>13} {:>10}",
        "grid", "diag tree", "corrected tree", "diag cut", "corrected cut", "imbalance"
    );
    println!("-------+--------------------------------+---------------------------------------");

    let mut rows = Vec::new();
    for n in [8usize, 16, 24, 32, 48] {
        // n x n grid of contact points, diagonal 2-way partition.
        let mut b = GraphBuilder::new(n * n, 1);
        let id = |i: usize, j: usize| (j * n + i) as u32;
        let mut positions2: Vec<Point<2>> = Vec::with_capacity(n * n);
        let mut asg = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < n {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < n {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
                positions2.push(Point::new([i as f64, j as f64]));
                asg.push(u32::from(i + j >= n));
            }
        }
        let graph = b.build();

        // Raw diagonal: induce the purity tree directly (2D points).
        let diag_tree = induce(&positions2, &asg, 2, &DtreeConfig::search_tree());
        let diag_cut = edge_cut(&graph, &asg);

        // DT-friendly correction (natively in 2D), then re-induce.
        let mut corrected = asg.clone();
        dt_friendly_correct(&graph, &positions2, 2, &mut corrected, &DtFriendlyConfig::default());
        let corr_tree = induce(&positions2, &corrected, 2, &DtreeConfig::search_tree());
        let corr_cut = edge_cut(&graph, &corrected);
        let imb = Partition::from_assignment(&graph, 2, corrected).max_imbalance();

        println!(
            "{n:>4}^2 | {:>14} {:>15} | {:>12} {:>13} {:>10.3}",
            diag_tree.num_nodes(),
            corr_tree.num_nodes(),
            diag_cut,
            corr_cut,
            imb
        );
        rows.push(Row {
            n,
            diagonal_tree_nodes: diag_tree.num_nodes(),
            corrected_tree_nodes: corr_tree.num_nodes(),
            diagonal_cut: diag_cut,
            corrected_cut: corr_cut,
            corrected_imbalance: imb,
        });
    }

    println!("\nExpected shape: the diagonal tree grows ~linearly with the grid side");
    println!("(staircase of O(n) rectangles), while the corrected tree stays near-constant.");
    cip_bench::write_json("figure2", &rows);
}
