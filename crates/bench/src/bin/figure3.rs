//! Regenerates **Figure 3**: the stages of the projectile/two-plate
//! simulation. The paper shows four rendered snapshots; we print the
//! per-stage mesh statistics (live elements, contact faces, contact
//! nodes, projectile tip position) plus an ASCII side view of selected
//! snapshots, which conveys the same penetration narrative.
//!
//! Usage: `cargo run --release -p cip-bench --bin figure3 [--scale ...]`

use cip_bench::HarnessArgs;
use cip_sim::SimResult;
use serde::Serialize;

#[derive(Serialize)]
struct StageRow {
    snapshot: usize,
    step: usize,
    live_elements: usize,
    eroded_elements: usize,
    contact_faces: usize,
    contact_nodes: usize,
    tip_z: f64,
}

/// ASCII side view (x-z slice near y=0) of one snapshot.
fn side_view(sim: &SimResult, i: usize) -> Vec<String> {
    let mesh = sim.mesh_at(i);
    let b = mesh.bounds();
    let (w, h) = (48usize, 20usize);
    let mut canvas = vec![vec![' '; w]; h];
    for (e, _) in mesh.live_elements() {
        let c = mesh.element_centroid(e);
        if c[1].abs() > 2.5 {
            continue; // slice near y = 0
        }
        let col = (((c[0] - b.min[0]) / (b.max[0] - b.min[0]).max(1e-9)) * (w - 1) as f64) as usize;
        let row = (((c[2] - b.min[2]) / (b.max[2] - b.min[2]).max(1e-9)) * (h - 1) as f64) as usize;
        let glyph = match mesh.body[e as usize] {
            2 => '#', // projectile
            0 => '=', // top plate
            _ => '-', // bottom plate
        };
        canvas[h - 1 - row][col.min(w - 1)] = glyph;
    }
    canvas.into_iter().map(|r| r.into_iter().collect()).collect()
}

fn main() {
    let args = HarnessArgs::parse(&[]);
    let sim = args.run_sim();

    println!("Figure 3 — stages of the simulation\n");
    println!(
        "{:>8} {:>6} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "snapshot", "step", "live elem", "eroded", "surfaces", "nodes", "tip z"
    );

    let mut rows = Vec::new();
    let total = sim.base.num_elements();
    // Projectile tip: the minimum z over projectile nodes.
    let proj_nodes: Vec<u32> = sim
        .base
        .elements
        .iter()
        .zip(sim.base.body.iter())
        .filter(|(_, &b)| b == 2)
        .flat_map(|(el, _)| el.nodes().iter().copied())
        .collect();

    for (i, snap) in sim.snapshots.iter().enumerate() {
        let live = snap.alive.iter().filter(|&&a| a).count();
        let tip =
            proj_nodes.iter().map(|&n| snap.points[n as usize][2]).fold(f64::INFINITY, f64::min);
        let row = StageRow {
            snapshot: i,
            step: snap.step,
            live_elements: live,
            eroded_elements: total - live,
            contact_faces: snap.contact.num_faces(),
            contact_nodes: snap.contact.num_contact_nodes(),
            tip_z: tip,
        };
        if i % (sim.len() / 10).max(1) == 0 || i + 1 == sim.len() {
            println!(
                "{:>8} {:>6} {:>10} {:>8} {:>9} {:>9} {:>8.2}",
                row.snapshot,
                row.step,
                row.live_elements,
                row.eroded_elements,
                row.contact_faces,
                row.contact_nodes,
                row.tip_z
            );
        }
        rows.push(row);
    }

    // Four stages, like the paper's four panels.
    for stage in [0usize, sim.len() / 3, 2 * sim.len() / 3, sim.len() - 1] {
        println!("\nstage at snapshot {stage} (x-z slice, '#' projectile, '='/'-' plates):");
        for line in side_view(&sim, stage) {
            println!("  {line}");
        }
    }

    cip_bench::write_json("figure3", &rows);
}
