//! Regenerates **Table 1** of the paper: FEComm / NTNodes / NRemote for
//! MCML+DT and FEComm / M2MComm / UpdComm / NRemote for ML+RCB, at 25 and
//! 100 parts, averaged over the 100-snapshot projectile sequence.
//!
//! Usage:
//! ```text
//! cargo run --release -p cip-bench --bin table1 [--scale small|medium|paper] \
//!     [--k 25,100] [--snapshots N]
//! ```

use cip_bench::{render_table1, run_table1_entry, write_json, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(&[25, 100]);
    let sim = args.run_sim();

    let entries: Vec<_> = args.ks.iter().map(|&k| run_table1_entry(&sim, k)).collect();

    println!("Table 1 — averages over {} snapshots", sim.len());
    println!("{}", render_table1(&entries));
    println!("Paper reference (EPIC dataset, different absolute mesh):");
    println!("  25-way : MCML+DT 28101/1206/5103   ML+RCB 23961/12205/553/4972   (+72% comm, -2.6% NRemote)");
    println!("  100-way: MCML+DT 65979/2144/9915   ML+RCB 59688/12582/1125/11078 (+29% comm, +12% NRemote)");

    write_json("table1", &entries);
}
