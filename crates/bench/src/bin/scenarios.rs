//! Robustness check: does the paper's headline conclusion — ML+RCB needs
//! more total per-step communication once the mesh-to-mesh transfer is
//! counted — survive across workload geometries, or is it an artifact of
//! the head-on strike? Runs the Table-1 comparison on four scenarios.
//!
//! Usage: `cargo run --release -p cip-bench --bin scenarios [--k 25] [--snapshots N]`

use cip_bench::{run_table1_entry, write_json, HarnessArgs};
use serde::Serialize;

#[derive(Serialize)]
struct ScenarioRow {
    scenario: String,
    k: usize,
    mcml_fe_comm: f64,
    mcml_n_remote: f64,
    ml_fe_comm: f64,
    ml_m2m: f64,
    ml_n_remote: f64,
    comm_overhead_pct: f64,
    n_remote_overhead_pct: f64,
}

fn main() {
    let args = HarnessArgs::parse(&[25]);
    let k = args.ks[0];
    let snapshots = args.snapshots.unwrap_or(40);

    println!("scenario robustness at k = {k} ({snapshots} snapshots each)\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>12}",
        "scenario", "MC:FE", "MC:ship", "ML:FE", "ML:m2m", "ML:ship", "comm ovhd", "ship ovhd"
    );

    let mut rows = Vec::new();
    for (name, mut cfg) in [
        ("head_on", cip_sim::head_on()),
        ("offset_strike", cip_sim::offset_strike()),
        ("thick_plates", cip_sim::thick_plates()),
        ("blunt_impactor", cip_sim::blunt_impactor()),
    ] {
        cfg.snapshots = snapshots;
        let sim = cip_sim::run(&cfg);
        let e = run_table1_entry(&sim, k);
        let row = ScenarioRow {
            scenario: name.to_string(),
            k,
            mcml_fe_comm: e.mcml_dt.fe_comm,
            mcml_n_remote: e.mcml_dt.n_remote,
            ml_fe_comm: e.ml_rcb.fe_comm,
            ml_m2m: e.ml_rcb.m2m_comm,
            ml_n_remote: e.ml_rcb.n_remote,
            comm_overhead_pct: 100.0 * e.non_search_overhead(),
            n_remote_overhead_pct: 100.0 * e.n_remote_overhead(),
        };
        println!(
            "{:<16} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>+10.0}% {:>+11.1}%",
            row.scenario,
            row.mcml_fe_comm,
            row.mcml_n_remote,
            row.ml_fe_comm,
            row.ml_m2m,
            row.ml_n_remote,
            row.comm_overhead_pct,
            row.n_remote_overhead_pct
        );
        rows.push(row);
    }

    let all_positive = rows.iter().all(|r| r.comm_overhead_pct > 0.0);
    println!(
        "\nheadline (ML+RCB pays more total communication): {}",
        if all_positive { "holds on every scenario" } else { "VIOLATED on some scenario" }
    );
    write_json("scenarios", &rows);
}
