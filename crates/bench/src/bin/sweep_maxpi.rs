//! Regenerates the §4.2 parameter-sensitivity result: sweeping `max_p`
//! and `max_i` around the paper's recommended bands
//! `n/k^1.5 <= max_p <= n/k` and `n/k^2.5 <= max_i <= n/k^2`, reporting
//! the resulting search-tree size (NTNodes), edge-cut, and balance.
//!
//! Usage: `cargo run --release -p cip-bench --bin sweep_maxpi [--scale ...] [--k 25]`

use cip_bench::HarnessArgs;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce, DtreeConfig};
use cip_graph::{edge_cut, Partition};
use cip_partition::{partition_kway, PartitionerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct SweepRow {
    label: String,
    max_p: usize,
    max_i: usize,
    guidance_tree_nodes: usize,
    regions: usize,
    search_tree_nodes: usize,
    edge_cut: i64,
    imbalance_fe: f64,
    imbalance_contact: f64,
}

fn main() {
    let args = HarnessArgs::parse(&[25]);
    let k = args.ks[0];
    let mut sim_cfg = args.scale.sim_config();
    sim_cfg.snapshots = args.snapshots.unwrap_or(1); // the sweep only needs snapshot 0
    let sim = cip_sim::run(&sim_cfg);
    let view = SnapshotView::build(&sim, 0, 5);
    let n = view.graph2.graph.nv();
    let nf = n as f64;
    let kf = k as f64;

    println!("§4.2 sweep — n = {n}, k = {k}");
    println!(
        "recommended bands: max_p in [{:.0}, {:.0}], max_i in [{:.0}, {:.0}]\n",
        nf / kf.powf(1.5),
        nf / kf,
        nf / kf.powf(2.5),
        nf / kf.powf(2.0)
    );
    println!(
        "{:<22} {:>7} {:>7} {:>10} {:>8} {:>11} {:>9} {:>8} {:>8}",
        "setting",
        "max_p",
        "max_i",
        "guide tree",
        "regions",
        "search tree",
        "edge cut",
        "imb FE",
        "imb C"
    );

    let base_asg = partition_kway(&view.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view.graph2.node_of_vertex.iter().map(|&nn| view.mesh.points[nn as usize]).collect();

    // The sweep: below-band, band edges, recommended midpoint, above-band.
    let settings: Vec<(String, usize, usize)> = vec![
        (
            "far below band".into(),
            (nf / kf.powf(2.0)) as usize,
            (nf / kf.powf(3.0)).max(1.0) as usize,
        ),
        ("band lower edge".into(), (nf / kf.powf(1.5)) as usize, (nf / kf.powf(2.5)) as usize),
        ("recommended mid".into(), (nf / kf.powf(1.25)) as usize, (nf / kf.powf(2.25)) as usize),
        ("band upper edge".into(), (nf / kf) as usize, (nf / kf.powf(2.0)) as usize),
        ("far above band".into(), (2.0 * nf / kf.powf(0.5)) as usize, (nf / kf) as usize),
    ];

    let mut rows = Vec::new();
    for (label, max_p, max_i) in settings {
        let max_p = max_p.max(4);
        let max_i = max_i.max(1);
        let mut asg = base_asg.clone();
        let cfg = DtFriendlyConfig {
            max_p: Some(max_p),
            max_i: Some(max_i),
            partitioner: PartitionerConfig::default(),
        };
        let stats = dt_friendly_correct(&view.graph2.graph, &positions, k, &mut asg, &cfg);

        // Evaluate the corrected partition: search tree over contact points.
        let node_parts = view.graph2.assignment_on_nodes(&asg);
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let search = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let cut = edge_cut(&view.graph1.graph, &asg);
        let part = Partition::from_assignment(&view.graph2.graph, k, asg);
        let row = SweepRow {
            label: label.clone(),
            max_p,
            max_i,
            guidance_tree_nodes: stats.tree_nodes,
            regions: stats.regions,
            search_tree_nodes: search.num_nodes(),
            edge_cut: cut,
            imbalance_fe: part.imbalance(0),
            imbalance_contact: part.imbalance(1),
        };
        println!(
            "{:<22} {:>7} {:>7} {:>10} {:>8} {:>11} {:>9} {:>8.3} {:>8.3}",
            row.label,
            row.max_p,
            row.max_i,
            row.guidance_tree_nodes,
            row.regions,
            row.search_tree_nodes,
            row.edge_cut,
            row.imbalance_fe,
            row.imbalance_contact
        );
        rows.push(row);
    }

    println!("\nExpected shape (per §4.2): tiny max_p/max_i -> many regions (big guidance");
    println!("tree, easy balance); huge max_p/max_i -> few immovable regions (balance and");
    println!("cut degrade). The recommended band sits between the extremes.");
    cip_bench::write_json("sweep_maxpi", &rows);
}
