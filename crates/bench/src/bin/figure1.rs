//! Regenerates **Figure 1**: a 3-way partitioning of 45 contact points,
//! its description as axes-parallel rectangles, and the underlying
//! decision tree.
//!
//! The paper's figure uses hand-placed points; we generate three spatial
//! clusters of 15 points each, induce the purity-stopped tree, and print
//! (a) the point/partition layout, (b) the leaf rectangles per subdomain,
//! and (c) the tree itself.
//!
//! Usage: `cargo run --release -p cip-bench --bin figure1`

use cip_dtree::tree::DtNode;
use cip_dtree::{induce, DtreeConfig};
use cip_geom::{Aabb, Point};

fn make_points() -> (Vec<Point<2>>, Vec<u32>) {
    // Three irregular clusters in a 10 x 10 domain, 15 points each — same
    // spirit as the paper's triangle/circle/square subdomains.
    let mut pts = Vec::new();
    let mut labels = Vec::new();
    let mut state = 0xC0FFEEu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    // 45 points spread over a 10 x 10 domain, partitioned into three
    // angular sectors about the center — sector boundaries are *not*
    // axis-parallel, so (as in the paper's figure) each subdomain's
    // descriptor needs several rectangles.
    while pts.len() < 45 {
        let p = Point::new([rnd() * 10.0, rnd() * 10.0]);
        let angle = (p[1] - 5.0).atan2(p[0] - 5.0);
        let sector = ((angle + std::f64::consts::PI) / (2.0 * std::f64::consts::PI / 3.0))
            .floor()
            .min(2.0) as u32;
        pts.push(p);
        labels.push(sector);
    }
    (pts, labels)
}

fn print_tree(nodes: &[DtNode<2>], at: u32, depth: usize) {
    let pad = "  ".repeat(depth);
    match &nodes[at as usize] {
        DtNode::Leaf { part, count, pure, .. } => {
            println!(
                "{pad}leaf: partition {part} ({count} points{})",
                if *pure { "" } else { ", impure" }
            );
        }
        DtNode::Internal { plane, left, right } => {
            let axis = ["x", "y", "z"][plane.dim];
            println!("{pad}{axis} <= {:.3} ?", plane.coord);
            print_tree(nodes, *left, depth + 1);
            print_tree(nodes, *right, depth + 1);
        }
    }
}

fn main() {
    let (pts, labels) = make_points();
    println!("Figure 1 — 3-way partitioning of {} contact points\n", pts.len());

    // (a) ASCII layout of the points.
    println!("(a) points (0/1/2 = partition):");
    let glyph = ['0', '1', '2'];
    for row in (0..20).rev() {
        let y0 = row as f64 * 0.5;
        let mut line = [' '; 40];
        for (p, &l) in pts.iter().zip(labels.iter()) {
            if p[1] >= y0 && p[1] < y0 + 0.5 {
                let col = ((p[0] / 10.0) * 40.0) as usize;
                line[col.min(39)] = glyph[l as usize];
            }
        }
        println!("  |{}|", line.iter().collect::<String>());
    }

    // (b) leaf rectangles.
    let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
    let bounds = Aabb::from_points(&pts);
    println!("\n(b) subdomain descriptors ({} leaf rectangles):", tree.num_leaves());
    let mut regions = tree.leaf_regions(&bounds);
    regions.sort_by_key(|r| r.part);
    for (i, r) in regions.iter().enumerate() {
        println!(
            "  [{}] partition {}: x in [{:.2}, {:.2}], y in [{:.2}, {:.2}] ({} points)",
            (b'A' + i as u8) as char,
            r.part,
            r.region.min[0],
            r.region.max[0],
            r.region.min[1],
            r.region.max[1],
            r.count
        );
    }

    // (c) the decision tree.
    println!("\n(c) decision tree ({} nodes, depth {}):", tree.num_nodes(), tree.depth());
    print_tree(tree.nodes(), 0, 1);

    // Verify the defining property of the descriptor (§4.1): every leaf is
    // pure.
    assert!(
        tree.leaf_regions(&bounds).iter().all(|r| r.pure),
        "every leaf must contain points from a single partition"
    );
    println!("\nproperty check: all leaves pure ✓");
}
