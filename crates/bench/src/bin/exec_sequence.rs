//! Execute the **whole** simulation sequence on rank threads: per
//! snapshot, run the halo exchange + global search + local search step
//! (`cip-runtime`), optionally repartitioning on the §4.3 hybrid schedule
//! and executing the resulting data migration. Prints executed (not
//! estimated) cumulative traffic for both the fixed and hybrid policies.
//!
//! Usage: `cargo run --release -p cip-bench --bin exec_sequence [--scale ...] [--k 8] [--snapshots N]`

use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce, DtreeConfig};
use cip_partition::{diffusion_repartition, partition_kway, PartitionerConfig};
use cip_runtime::{build_decomposition, build_migration, execute_step, StepInput};
use cip_sim::SimResult;
use serde::Serialize;

#[derive(Serialize, Default)]
struct Totals {
    halo: u64,
    shipments: u64,
    migrated_nodes: u64,
    contact_pairs_detected: u64,
    repartitions: usize,
}

fn run_policy(sim: &SimResult, k: usize, hybrid_period: Option<usize>) -> Totals {
    let pcfg = PartitionerConfig::default();
    let view0 = SnapshotView::build(sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &pcfg);
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let mut node_parts = view0.graph2.assignment_on_nodes(&asg);

    let mut totals = Totals::default();
    for i in 0..sim.len() {
        let view = SnapshotView::build(sim, i, 5);

        // Hybrid policy: repartition by diffusion, execute the migration.
        if let Some(period) = hybrid_period {
            if i > 0 && i % period == 0 {
                let old: Vec<u32> =
                    view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
                let fresh = diffusion_repartition(&view.graph2.graph, k, &old, &pcfg);
                let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
                let plan = build_migration(&node_parts, &new_node_parts, k);
                totals.migrated_nodes += plan.total_moved();
                totals.repartitions += 1;
                for (n, &p) in new_node_parts.iter().enumerate() {
                    if p != u32::MAX {
                        node_parts[n] = p;
                    }
                }
            }
        }

        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
        let elements = view.surface_elements(&node_parts);
        let bodies = view.face_bodies();
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let decomposition = build_decomposition(
            &view.graph2.graph,
            &view.graph2.node_of_vertex,
            &asg_now,
            &owners,
            k,
        );
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let filter = DtreeFilter::new(&tree, k);
        let out = execute_step(&StepInput {
            decomposition: &decomposition,
            positions: &view.mesh.points,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.4,
            recorder: cip_telemetry::Recorder::disabled(),
        })
        .expect("step executes without injected faults");
        assert_eq!(out.ghost_mismatches, 0);
        totals.halo += out.traffic.total_halo();
        totals.shipments += out.traffic.total_shipments();
        totals.contact_pairs_detected += out.contact_pairs.len() as u64;
    }
    totals
}

fn main() {
    let args = cip_bench::HarnessArgs::parse(&[8]);
    let k = args.ks[0];
    let mut cfg = args.scale.sim_config();
    cfg.snapshots = args.snapshots.unwrap_or(30);
    let sim = cip_sim::run(&cfg);
    println!(
        "executing {} snapshots across {k} rank threads ({} nodes)\n",
        sim.len(),
        sim.base.num_nodes()
    );

    println!(
        "{:<22} {:>10} {:>11} {:>10} {:>8} {:>8}",
        "policy", "halo", "shipments", "migrated", "reparts", "pairs"
    );
    let mut results = Vec::new();
    for (name, period) in [("fixed", None), ("hybrid (period 10)", Some(10))] {
        let t = run_policy(&sim, k, period);
        println!(
            "{:<22} {:>10} {:>11} {:>10} {:>8} {:>8}",
            name, t.halo, t.shipments, t.migrated_nodes, t.repartitions, t.contact_pairs_detected
        );
        results.push((name.to_string(), t));
    }
    println!("\nevery number above is an executed message count (threads + channels),");
    println!("not an analytic estimate; ghost consistency was asserted on every step.");
    cip_bench::write_json("exec_sequence", &results);
}
