//! Runtime-executor snapshot for CI: times an 8-step batch under the
//! barrier and pipelined schedules on a skewed per-rank load, measures
//! the total `exec.idle` time and the `exec.overlap.steps_in_flight`
//! high-water mark of each, and writes `results/BENCH_runtime.json` in
//! the shared `cip-results-v1` envelope. CI uploads the file as an
//! artifact; the acceptance signal is pipelined idle < barrier idle on
//! multi-core runners (wall-clock on a 1-CPU container is noise).
//!
//! The `exec_batch/pipelined-tcp` rows run the identical pipelined
//! batch over the loopback-TCP transport (DESIGN.md §6e) instead of
//! in-process channels — the delta against `exec_batch/pipelined` is
//! the framing + socket cost of the wire.
//!
//! The `trace_repart/*` rows run the full traced driver with periodic
//! diffusion repartitioning under both repartition modes (DESIGN.md
//! §6f): `stall_ms` is the time the driver was blocked at boundaries
//! waiting for a plan, and `hidden_ms` is planning time that overlapped
//! batch execution — the acceptance signal is `hidden_ms > 0` for
//! `trace_repart/overlapped` (planning really ran behind the batch)
//! while the executed totals stay bit-identical to the barrier row.
//!
//! Usage: `cargo run --release -p cip-bench --bin runtime_snapshot
//! [--nodes N] [--steps S] [--reps R]` (defaults: 512, 8, 5).

use cip::trace::{run_traced, TraceOptions};
use cip_bench::pipeline_load::{batch_inputs, skewed_chain};
use cip_bench::write_json;
use cip_runtime::{
    execute_steps_transport, execute_steps_with, ExecOptions, RepartitionMode, Schedule,
};
use cip_telemetry::Recorder;
use cip_transport::tcp::Tcp;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct RuntimeRow {
    /// Benchmark id, e.g. `exec_batch/pipelined`.
    name: String,
    /// Rank count.
    k: usize,
    /// Steps per batch.
    n_steps: usize,
    /// Timed repetitions (after one untimed warm-up).
    reps: usize,
    /// Fastest repetition, milliseconds.
    min_ms: f64,
    /// Median repetition, milliseconds.
    median_ms: f64,
    /// Total `exec.idle` time of one instrumented run, milliseconds.
    idle_ms: f64,
    /// High-water `exec.overlap.steps_in_flight` gauge (1 for barrier).
    max_steps_in_flight: u64,
    /// Driver wall time blocked at repartition boundaries, milliseconds
    /// (`repartition.stall` span total; 0 for the `exec_batch` rows).
    stall_ms: f64,
    /// Planning time hidden behind batch execution, milliseconds
    /// (`repartition.overlap.hidden_ms`; 0 outside overlapped mode).
    hidden_ms: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// Rayon worker count (the rank threads are separate, but this is
    /// the honest machine descriptor shared with BENCH_partition).
    threads: usize,
    /// Chain length of the skewed scenario.
    nodes: usize,
    rows: Vec<RuntimeRow>,
}

fn main() {
    let mut nodes = 512usize;
    let mut n_steps = 8usize;
    let mut reps = 5usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" if i + 1 < args.len() => {
                nodes = args[i + 1].parse().unwrap_or(nodes).max(16);
                i += 2;
            }
            "--steps" if i + 1 < args.len() => {
                n_steps = args[i + 1].parse().unwrap_or(n_steps).max(2);
                i += 2;
            }
            "--reps" if i + 1 < args.len() => {
                reps = args[i + 1].parse().unwrap_or(reps).max(1);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }

    let threads = rayon::current_num_threads();
    eprintln!(
        "runtime snapshot: {nodes}-node chain, {n_steps}-step batches, reps={reps}, \
         {threads} rayon threads"
    );

    let mut rows = Vec::new();
    for &k in &[2usize, 4, 8] {
        let sc = skewed_chain(nodes, k, n_steps, 0.5);
        for (label, schedule, tcp) in [
            ("barrier", Schedule::Barrier, false),
            ("pipelined", Schedule::pipelined(), false),
            ("pipelined-tcp", Schedule::pipelined(), true),
        ] {
            let opts = ExecOptions { schedule, ..ExecOptions::default() };

            // Timed reps against a disabled recorder (no telemetry cost).
            let quiet = Recorder::disabled();
            let steps = batch_inputs(&sc, &quiet);
            let run = || {
                if tcp {
                    execute_steps_transport(&steps, &[], &opts, &Tcp::loopback())
                        .expect("tcp batch executes");
                } else {
                    execute_steps_with(&steps, &[], &opts).expect("batch executes");
                }
            };
            run();
            let mut samples: Vec<f64> = (0..reps)
                .map(|_| {
                    let t = Instant::now();
                    run();
                    t.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            let (min_ms, median_ms) = (samples[0], samples[reps / 2]);

            // One instrumented run for the idle/overlap numbers.
            let rec = Recorder::enabled();
            let steps = batch_inputs(&sc, &rec);
            if tcp {
                execute_steps_transport(&steps, &[], &opts, &Tcp::loopback())
                    .expect("instrumented tcp batch executes");
            } else {
                execute_steps_with(&steps, &[], &opts).expect("instrumented batch executes");
            }
            let summary = rec.summary().expect("recorder is enabled");
            let idle_ms = summary.span("exec.idle").map_or(0.0, |s| s.total_ns as f64 / 1e6);
            let max_steps_in_flight =
                summary.histogram("exec.overlap.steps_in_flight").map_or(1, |h| h.max);

            eprintln!(
                "  k={k} {label:<9} min {min_ms:8.2} ms  median {median_ms:8.2} ms  \
                 idle {idle_ms:8.2} ms  in-flight {max_steps_in_flight}"
            );
            rows.push(RuntimeRow {
                name: format!("exec_batch/{label}"),
                k,
                n_steps,
                reps,
                min_ms,
                median_ms,
                idle_ms,
                max_steps_in_flight,
                stall_ms: 0.0,
                hidden_ms: 0.0,
            });
        }
    }

    // Full traced driver with periodic repartitioning: barrier vs
    // overlapped boundary planning (DESIGN.md §6f). The head_on
    // scenario is large enough that a boundary plan costs whole
    // milliseconds, so the overlap is visible even when the wall-clock
    // delta drowns in scheduler noise.
    for (label, mode) in
        [("barrier", RepartitionMode::Barrier), ("overlapped", RepartitionMode::Overlapped)]
    {
        let topts = TraceOptions {
            scenario: "head_on".into(),
            k: 4,
            snapshots: Some(12),
            repartition_period: Some(4),
            repartition_mode: mode,
            ..TraceOptions::default()
        };
        let run = || run_traced(&topts).expect("traced repartition run");
        run();
        let mut samples: Vec<f64> = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let t = Instant::now();
            let report = run();
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            last = Some(report);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let (min_ms, median_ms) = (samples[0], samples[reps / 2]);
        let report = last.expect("reps >= 1");
        let summary = report.summary();
        let stall_ms = summary.span("repartition.stall").map_or(0.0, |s| s.total_ns as f64 / 1e6);
        let hidden_ms = report.recorder.counter_value("repartition.overlap.hidden_ms") as f64;
        let idle_ms = summary.span("exec.idle").map_or(0.0, |s| s.total_ns as f64 / 1e6);
        let max_steps_in_flight =
            summary.histogram("exec.overlap.steps_in_flight").map_or(1, |h| h.max);
        eprintln!(
            "  k=4 repart/{label:<10} min {min_ms:8.2} ms  median {median_ms:8.2} ms  \
             stall {stall_ms:8.2} ms  hidden {hidden_ms:8.2} ms"
        );
        rows.push(RuntimeRow {
            name: format!("trace_repart/{label}"),
            k: 4,
            n_steps: report.steps,
            reps,
            min_ms,
            median_ms,
            idle_ms,
            max_steps_in_flight,
            stall_ms,
            hidden_ms,
        });
    }

    let snapshot = Snapshot { threads, nodes, rows };
    write_json("BENCH_runtime", &snapshot);
}
