//! Partition-benchmark snapshot for CI: times the hot partitioner paths
//! (multilevel k-way, recursive bisection, the boundary-driven k-way
//! refinement sweep sequential vs parallel, 2-way FM, and the grid broad
//! phase) with plain `Instant` timing and writes
//! `results/BENCH_partition.json` in the shared `cip-results-v1` envelope
//! so CI can upload it as an artifact and successive runs can be diffed.
//!
//! Usage: `cargo run --release -p cip-bench --bin bench_snapshot
//! [--side N] [--reps R]` (defaults: 256, 5). Wall-clock numbers are
//! machine-dependent; the snapshot records the rayon thread count so
//! comparisons across runs stay honest.

use cip_bench::write_json;
use cip_contact::find_contact_pairs;
use cip_geom::{Aabb, Point};
use cip_graph::{edge_cut, Graph, GraphBuilder};
use cip_partition::fm::BisectTargets;
use cip_partition::{
    fm_refine_with, partition_kway, partition_kway_multilevel, refine_kway_with, PartitionerConfig,
    RefineWorkspace,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRow {
    /// Benchmark id, e.g. `refine_kway/parallel`.
    name: String,
    /// Problem size (vertices or boxes).
    n: usize,
    /// Part count (0 where not applicable).
    k: usize,
    /// Timed repetitions (after one untimed warm-up).
    reps: usize,
    /// Fastest repetition, milliseconds.
    min_ms: f64,
    /// Median repetition, milliseconds.
    median_ms: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// Rayon worker count the numbers were taken with.
    threads: usize,
    /// Grid side length used for the graph benchmarks.
    side: usize,
    rows: Vec<BenchRow>,
}

/// Two-constraint grid graph, the paper's surface-weight pattern.
fn grid(nx: usize, ny: usize) -> Graph {
    let mut b = GraphBuilder::new(nx * ny, 2);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            b.set_vwgt(id(i, j), &[1, i64::from(border)]);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

/// Runs `f` once untimed (warm-up) then `reps` times timed; returns
/// `(min_ms, median_ms)`.
fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[0], samples[reps / 2])
}

fn main() {
    let mut side = 256usize;
    let mut reps = 5usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--side" if i + 1 < args.len() => {
                side = args[i + 1].parse().unwrap_or(side);
                i += 2;
            }
            "--reps" if i + 1 < args.len() => {
                reps = args[i + 1].parse().unwrap_or(reps).max(1);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }

    let g = grid(side, side);
    let n = side * side;
    let k = 8usize;
    let start: Vec<u32> = (0..n).map(|v| (((v % side) + (v / side)) % k) as u32).collect();
    let threads = rayon::current_num_threads();
    eprintln!("bench snapshot: side={side} ({n} vertices), k={k}, reps={reps}, {threads} threads");

    let mut rows = Vec::new();
    let mut push = |name: &str, n: usize, k: usize, (min_ms, median_ms): (f64, f64)| {
        eprintln!("  {name:<28} min {min_ms:9.2} ms   median {median_ms:9.2} ms");
        rows.push(BenchRow { name: name.to_string(), n, k, reps, min_ms, median_ms });
    };

    // Refinement sweep in isolation, sequential vs propose-then-resolve.
    for (label, threshold) in [("sequential", usize::MAX), ("parallel", 0usize)] {
        let cfg =
            PartitionerConfig { parallel_threshold: threshold, ..PartitionerConfig::with_seed(7) };
        let mut ws = RefineWorkspace::new();
        let mut asg = start.clone();
        let timing = time_reps(reps, || {
            asg.copy_from_slice(&start);
            refine_kway_with(&g, k, &mut asg, &cfg, &mut ws);
        });
        push(&format!("refine_kway/{label}"), n, k, timing);
        eprintln!("    cut {} -> {}", edge_cut(&g, &start), edge_cut(&g, &asg));
    }

    // Full drivers (coarsening + initial partition + uncoarsening).
    for (label, threshold) in [("sequential", usize::MAX), ("parallel", 0usize)] {
        let cfg =
            PartitionerConfig { parallel_threshold: threshold, ..PartitionerConfig::with_seed(11) };
        let timing = time_reps(reps, || {
            std::hint::black_box(partition_kway_multilevel(&g, k, &cfg));
        });
        push(&format!("partition_kway_multilevel/{label}"), n, k, timing);
    }
    {
        let cfg = PartitionerConfig::with_seed(13);
        let timing = time_reps(reps, || {
            std::hint::black_box(partition_kway(&g, k, &cfg));
        });
        push("partition_kway", n, k, timing);
    }

    // 2-way FM on an interleaved-column start (every vertex boundary).
    {
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.05]);
        let bis_start: Vec<u32> = (0..n).map(|v| ((v % side) % 2) as u32).collect();
        let mut ws = RefineWorkspace::new();
        let mut asg = bis_start.clone();
        let timing = time_reps(reps, || {
            asg.copy_from_slice(&bis_start);
            std::hint::black_box(fm_refine_with(&g, &mut asg, &targets, 4, 0.02, &mut ws));
        });
        push("fm_refine", n, 2, timing);
    }

    // Grid broad phase: jittered lattice of boxes from two bodies.
    {
        let boxes: Vec<Aabb<2>> = (0..n)
            .map(|v| {
                let (x, y) = ((v % side) as f64, (v / side) as f64);
                let j = ((v * 2_654_435_761) % 97) as f64 / 97.0 * 0.3;
                Aabb::new(Point::new([x + j, y + j]), Point::new([x + j + 1.1, y + j + 1.1]))
            })
            .collect();
        let body: Vec<u16> = (0..n).map(|v| (v % 2) as u16).collect();
        let timing = time_reps(reps, || {
            std::hint::black_box(find_contact_pairs(&boxes, &body, 0.05));
        });
        push("find_contact_pairs", n, 0, timing);
    }

    let snapshot = Snapshot { threads, side, rows };
    write_json("BENCH_partition", &snapshot);
}
