//! Tree aging (§4.3): with the partition held fixed, the contact points
//! drift away from the geometry the subdomain boundaries were drawn for,
//! and the search tree grows. This binary quantifies that claim and
//! evaluates the maintenance strategies:
//!
//! * **rebuild** — re-induce from scratch every snapshot (the paper's
//!   stated policy; NTNodes tracks the true descriptor complexity);
//! * **refresh** — incremental maintenance (`cip_dtree::refresh`): keep
//!   pure leaves, re-induce only impure subtrees — same purity contract,
//!   far less work, but the frozen upper structure accumulates extra
//!   nodes;
//! * **hybrid** — refresh with a periodic full rebuild, §4.3's suggestion
//!   applied to the tree itself.
//!
//! Usage: `cargo run --release -p cip-bench --bin tree_aging [--scale ...] [--k 25]`

use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce, refresh, DecisionTree, DtreeConfig};
use cip_partition::{partition_kway, PartitionerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct AgingRow {
    snapshot: usize,
    rebuild_nodes: usize,
    refresh_nodes: usize,
    hybrid_nodes: usize,
    refresh_reinduced_points: usize,
    refresh_total_points: usize,
}

fn main() {
    let args = cip_bench::HarnessArgs::parse(&[25]);
    let k = args.ks[0];
    let sim = args.run_sim();

    // Fixed MCML+DT partition from snapshot 0.
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    let cfg = DtreeConfig::search_tree();
    let rebuild_period = 10;
    let mut refreshed: Option<DecisionTree<3>> = None;
    let mut hybrid: Option<DecisionTree<3>> = None;

    println!(
        "tree aging at k = {k} (fixed partition, {} snapshots; hybrid rebuilds every {rebuild_period})\n",
        sim.len()
    );
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>12}",
        "snap", "rebuild", "refresh", "hybrid", "work saved"
    );

    let mut rows = Vec::new();
    for i in 0..sim.len() {
        let view = SnapshotView::build(&sim, i, 5);
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let pts = &view.contact.positions;

        let rebuilt = induce(pts, &labels, k, &cfg);

        let (new_refreshed, stats) = match &refreshed {
            None => (rebuilt.clone(), None),
            Some(prev) => {
                let (t, s) = refresh(prev, pts, &labels, k, &cfg);
                (t, Some(s))
            }
        };
        let (new_hybrid, _) = match &hybrid {
            Some(prev) if i % rebuild_period != 0 => refresh(prev, pts, &labels, k, &cfg),
            _ => (rebuilt.clone(), refresh(&rebuilt, pts, &labels, k, &cfg).1),
        };

        let row = AgingRow {
            snapshot: i,
            rebuild_nodes: rebuilt.num_nodes(),
            refresh_nodes: new_refreshed.num_nodes(),
            hybrid_nodes: new_hybrid.num_nodes(),
            refresh_reinduced_points: stats.map_or(pts.len(), |s| s.reinduced_points),
            refresh_total_points: pts.len(),
        };
        if i % (sim.len() / 20).max(1) == 0 || i + 1 == sim.len() {
            let saved = 100.0
                * (1.0
                    - row.refresh_reinduced_points as f64 / row.refresh_total_points.max(1) as f64);
            println!(
                "{:>5} {:>9} {:>9} {:>9} {:>11.0}%",
                row.snapshot, row.rebuild_nodes, row.refresh_nodes, row.hybrid_nodes, saved
            );
        }
        refreshed = Some(new_refreshed);
        hybrid = Some(new_hybrid);
        rows.push(row);
    }

    let last = rows.last().unwrap();
    println!(
        "\nfinal sizes: rebuild {} | refresh-only {} (+{:.0}%) | hybrid {} (+{:.0}%)",
        last.rebuild_nodes,
        last.refresh_nodes,
        100.0 * (last.refresh_nodes as f64 / last.rebuild_nodes as f64 - 1.0),
        last.hybrid_nodes,
        100.0 * (last.hybrid_nodes as f64 / last.rebuild_nodes as f64 - 1.0),
    );
    let avg_saved: f64 = rows
        .iter()
        .skip(1)
        .map(|r| 1.0 - r.refresh_reinduced_points as f64 / r.refresh_total_points.max(1) as f64)
        .sum::<f64>()
        / (rows.len() - 1).max(1) as f64;
    println!(
        "refresh re-induces only {:.0}% of the points per snapshot on average",
        100.0 * (1.0 - avg_saved)
    );
    cip_bench::write_json("tree_aging", &rows);
}
