//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **DT-friendly correction on/off** (§4.2) — effect on NTNodes and
//!    NRemote;
//! 2. **margin-aware splitting index** (§6 future work) vs plain gini —
//!    effect on NRemote;
//! 3. **contact-edge weight** (1 vs the paper's 5) — effect on NRemote and
//!    FEComm;
//! 4. **update policies** (§4.3): fixed partition vs hybrid vs per-step
//!    repartitioning — balance drift vs migration cost.
//!
//! Usage: `cargo run --release -p cip-bench --bin ablations [--scale ...] [--k 25]`

use cip_bench::HarnessArgs;
use cip_core::{
    average_metrics, evaluate_known_contact, evaluate_mcml_dt, DtFriendlyConfig,
    KnownContactConfig, McmlDtConfig, MetricsRow, UpdatePolicy,
};
use cip_dtree::{DtreeConfig, Splitter};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    name: String,
    row: MetricsRow,
}

fn print_row(name: &str, r: &MetricsRow) {
    println!(
        "{:<34} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>8.3} {:>8.3}",
        name, r.fe_comm, r.nt_nodes, r.n_remote, r.upd_comm, r.imbalance_fe, r.imbalance_contact
    );
}

fn main() {
    let args = HarnessArgs::parse(&[25]);
    let k = args.ks[0];
    let sim = args.run_sim();

    println!("\nAblations at k = {k} (averages over {} snapshots)", sim.len());
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "variant", "FEComm", "NTNodes", "NRemote", "UpdComm", "imb FE", "imb C"
    );

    let mut results = Vec::new();
    let mut run = |name: &str, cfg: &McmlDtConfig| {
        let (m, _) = evaluate_mcml_dt(&sim, cfg);
        let row = average_metrics(&m);
        print_row(name, &row);
        results.push(AblationRow { name: name.to_string(), row });
    };

    // 1. DT-friendly on/off.
    run("paper config (friendly, gini)", &McmlDtConfig::paper(k));
    run("no DT-friendly correction", &McmlDtConfig { dt_friendly: None, ..McmlDtConfig::paper(k) });

    // 2. Tight-leaf filter (DESIGN extension in the spirit of §6).
    run("tight-leaf filter", &McmlDtConfig { tight_filter: true, ..McmlDtConfig::paper(k) });

    // 3. Margin-aware splitter (§6, additive tie-break form).
    run(
        "margin-aware splitter (a=0.5)",
        &McmlDtConfig {
            tree: DtreeConfig {
                splitter: Splitter::MarginAware { alpha: 0.5 },
                ..DtreeConfig::search_tree()
            },
            ..McmlDtConfig::paper(k)
        },
    );
    run(
        "margin-aware splitter (a=2.0)",
        &McmlDtConfig {
            tree: DtreeConfig {
                splitter: Splitter::MarginAware { alpha: 2.0 },
                ..DtreeConfig::search_tree()
            },
            ..McmlDtConfig::paper(k)
        },
    );

    // 4. Contact-edge weight.
    run(
        "contact edge weight 1",
        &McmlDtConfig { contact_edge_weight: 1, ..McmlDtConfig::paper(k) },
    );
    run(
        "contact edge weight 20",
        &McmlDtConfig { contact_edge_weight: 20, ..McmlDtConfig::paper(k) },
    );

    // 5. Update policies.
    run(
        "hybrid repartition (period 10)",
        &McmlDtConfig {
            update: UpdatePolicy::Hybrid { period: 10 },
            dt_friendly: Some(DtFriendlyConfig::default()),
            ..McmlDtConfig::paper(k)
        },
    );
    run(
        "per-step repartition",
        &McmlDtConfig { update: UpdatePolicy::PerStep, ..McmlDtConfig::paper(k) },
    );

    // 6. The §3 known-contact method (predictable-contact baseline).
    {
        let m = evaluate_known_contact(&sim, &KnownContactConfig::new(k));
        let row = average_metrics(&m);
        print_row("known-contact (virtual edges)", &row);
        results.push(AblationRow { name: "known-contact (virtual edges)".into(), row });
    }

    println!("\nReading guide:");
    println!("  - dropping the DT-friendly step should inflate NTNodes (staircase boundaries);");
    println!("  - the tight-leaf filter and margin-aware splitting should trim NRemote");
    println!("    (fewer false positives) at similar tree size;");
    println!("  - contact edge weight 1 cuts more contact-contact edges -> higher NRemote;");
    println!("  - repartitioning policies keep late-time balance at the cost of UpdComm;");
    println!("  - the known-contact method trades FEComm for co-located contact pairs —");
    println!("    competitive only when the prediction holds (see §3).");
    cip_bench::write_json("ablations", &results);
}
