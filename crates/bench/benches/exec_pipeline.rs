//! Barrier vs pipelined batch execution: wall-clock for an 8-step batch
//! under a deliberately skewed per-rank load (rank 0 owns half the
//! chain), plus an idle report printed before the criterion groups.
//!
//! The pipelined schedule's win is *not* doing less work — the traffic
//! is proven bit-identical — but waiting less: a light rank's step `s+1`
//! halo sends and its step-`s` contact search overlap the straggler's
//! step `s`. `exec.idle` (total nanoseconds rank threads spend blocked
//! on their inbox) is the direct measurement; on a single-CPU runner the
//! wall-clock gap narrows but the idle gap survives.

use cip::trace::{run_traced, TraceOptions};
use cip_bench::pipeline_load::{batch_inputs, skewed_chain};
use cip_runtime::{execute_steps_with, ExecOptions, RepartitionMode, Schedule};
use cip_telemetry::Recorder;
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;

const N_NODES: usize = 512;
const N_STEPS: usize = 8;
const SKEW: f64 = 0.5;

fn opts(schedule: Schedule) -> ExecOptions {
    ExecOptions { schedule, ..ExecOptions::default() }
}

/// One instrumented run per schedule: prints total `exec.idle` time and
/// the high-water `exec.overlap.steps_in_flight` gauge.
fn idle_report() {
    for &k in &[2usize, 4, 8] {
        let sc = skewed_chain(N_NODES, k, N_STEPS, SKEW);
        for (label, schedule) in
            [("barrier", Schedule::Barrier), ("pipelined", Schedule::pipelined())]
        {
            let rec = Recorder::enabled();
            let steps = batch_inputs(&sc, &rec);
            execute_steps_with(&steps, &[], &opts(schedule)).expect("batch executes");
            let summary = rec.summary().expect("recorder is enabled");
            let idle_ms = summary.span("exec.idle").map_or(0.0, |s| s.total_ns as f64 / 1e6);
            let in_flight = summary.histogram("exec.overlap.steps_in_flight").map_or(0, |h| h.max);
            eprintln!(
                "idle report: k={k} {label:<9} exec.idle {idle_ms:8.2} ms  \
                 max steps in flight {in_flight}"
            );
        }
    }
}

/// One instrumented traced run per repartition mode: prints the
/// boundary stall time and the planning time hidden behind batches
/// (DESIGN.md §6f).
fn repart_report() {
    for (label, mode) in
        [("barrier", RepartitionMode::Barrier), ("overlapped", RepartitionMode::Overlapped)]
    {
        let report = run_traced(&repart_opts(mode)).expect("traced repartition run");
        let summary = report.summary();
        let stall_ms = summary.span("repartition.stall").map_or(0.0, |s| s.total_ns as f64 / 1e6);
        let hidden_ms = report.recorder.counter_value("repartition.overlap.hidden_ms") as f64;
        eprintln!(
            "repart report: {label:<10} repartition.stall {stall_ms:8.2} ms  \
             hidden {hidden_ms:8.2} ms  ({} repartitions)",
            report.repartitions
        );
    }
}

/// The traced-driver config of the repartition-mode rows: big enough
/// that a boundary plan costs whole milliseconds, with two mid-run
/// boundaries for the background planner to hide.
fn repart_opts(mode: RepartitionMode) -> TraceOptions {
    TraceOptions {
        scenario: "head_on".into(),
        k: 4,
        snapshots: Some(12),
        repartition_period: Some(4),
        repartition_mode: mode,
        ..TraceOptions::default()
    }
}

fn bench_exec_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_pipeline");
    group.sample_size(10);
    for &k in &[2usize, 4, 8] {
        let sc = skewed_chain(N_NODES, k, N_STEPS, SKEW);
        let rec = Recorder::disabled();
        let steps = batch_inputs(&sc, &rec);
        for (label, schedule) in
            [("barrier", Schedule::Barrier), ("pipelined", Schedule::pipelined())]
        {
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    black_box(execute_steps_with(&steps, &[], &opts(schedule)))
                        .expect("batch executes")
                });
            });
        }
    }
    group.finish();
}

/// Barrier vs overlapped repartitioning through the full traced driver
/// — same totals by construction, the difference is where the planning
/// time goes (a boundary stall vs hidden behind the preceding batch).
fn bench_repart_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_repart");
    group.sample_size(10);
    for (label, mode) in
        [("barrier", RepartitionMode::Barrier), ("overlapped", RepartitionMode::Overlapped)]
    {
        let topts = repart_opts(mode);
        group.bench_function(BenchmarkId::new(label, 4), |b| {
            b.iter(|| black_box(run_traced(&topts).expect("traced repartition run")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_pipeline, bench_repart_modes);

fn main() {
    idle_report();
    repart_report();
    benches();
}
