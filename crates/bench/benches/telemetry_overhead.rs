//! The telemetry overhead contract (DESIGN.md §6): compiled-in,
//! default-off instrumentation must be free when disabled.
//!
//! Three kinds of rows per instrumented operation:
//!
//! * `<op>/disabled` — the shipped default: every span/counter call hits
//!   the `None` branch of the disabled [`Recorder`] and returns.
//! * `<op>/enabled` — a live recorder collecting every event, to bound
//!   the cost of actually tracing.
//! * `noop_recorder/span_event` — the per-event disabled cost in
//!   isolation.
//!
//! The guard: an operation emits O(levels) ~ tens of events, the
//! disabled per-event cost is nanoseconds (also asserted by a unit test
//! in `cip-telemetry`), so the `disabled` rows must sit within noise —
//! well under 2% — of what an uninstrumented build would measure.
//! Compare `disabled` against `enabled` to see the headroom directly.
//!
//! The same contract covers the fault-injection hooks (DESIGN.md §6c):
//! `execute_step/fault_off` runs with the default
//! [`cip_runtime::FaultInjector::none`] (one `None` branch per send),
//! and `execute_step/fault_armed_quiet` runs with an armed all-zero-rate
//! plan (full chaos bookkeeping, zero injected faults). `fault_off` must
//! sit within noise — well under 2% — of `disabled`.

use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce, DtreeConfig};
use cip_partition::rb::multilevel_bisect;
use cip_partition::{partition_kway, PartitionerConfig};
use cip_runtime::{
    build_decomposition, execute_step, execute_step_with, ExecOptions, FaultInjector, FaultPlan,
    StepInput,
};
use cip_sim::SimConfig;
use cip_telemetry::Recorder;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn grid(nx: usize, ny: usize) -> cip_graph::Graph {
    let mut b = cip_graph::GraphBuilder::new(nx * ny, 1);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            b.set_vwgt(id(i, j), &[1]);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

fn bench_bisect(c: &mut Criterion) {
    let g = grid(96, 96);
    let mut group = c.benchmark_group("multilevel_bisect");
    for (label, recorder) in [("disabled", Recorder::disabled()), ("enabled", Recorder::enabled())]
    {
        let cfg = PartitionerConfig { recorder, ..PartitionerConfig::with_seed(11) };
        group.bench_function(label, |b| {
            b.iter(|| black_box(multilevel_bisect(&g, 0.5, &cfg, &[0.05])))
        });
    }
    group.finish();
}

fn bench_step(c: &mut Criterion) {
    let k = 4;
    let mut scfg = SimConfig::tiny();
    scfg.snapshots = 4;
    let sim = cip_sim::run(&scfg);

    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    let view = SnapshotView::build(&sim, sim.len() / 2, 5);
    let asg_now: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    let elements = view.surface_elements(&node_parts);
    let bodies = view.face_bodies();
    let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
    let decomposition =
        build_decomposition(&view.graph2.graph, &view.graph2.node_of_vertex, &asg_now, &owners, k);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    let filter = DtreeFilter::new(&tree, k);

    let mut group = c.benchmark_group("execute_step");
    group.sample_size(10);
    for (label, recorder) in [("disabled", Recorder::disabled()), ("enabled", Recorder::enabled())]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(execute_step(&StepInput {
                    decomposition: &decomposition,
                    positions: &view.mesh.points,
                    elements: &elements,
                    bodies: &bodies,
                    filter: &filter,
                    tolerance: 0.4,
                    recorder: recorder.clone(),
                }))
                .expect("step executes")
            })
        });
    }
    let armed = [
        ("fault_off", FaultInjector::none()),
        ("fault_armed_quiet", FaultInjector::with_plan(FaultPlan::quiet(7))),
    ];
    for (label, fault) in armed {
        let opts = ExecOptions { fault: fault.clone(), ..ExecOptions::default() };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(execute_step_with(
                    &StepInput {
                        decomposition: &decomposition,
                        positions: &view.mesh.points,
                        elements: &elements,
                        bodies: &bodies,
                        filter: &filter,
                        tolerance: 0.4,
                        recorder: Recorder::disabled(),
                    },
                    &opts,
                ))
                .expect("step executes")
            })
        });
    }
    group.finish();
}

fn bench_noop_event(c: &mut Criterion) {
    let rec = Recorder::disabled();
    c.bench_function("noop_recorder/span_event", |b| {
        b.iter(|| {
            let _span = black_box(&rec).span("bench.noop").attr("x", 1u64);
        })
    });
}

criterion_group!(benches, bench_bisect, bench_step, bench_noop_event);
criterion_main!(benches);
