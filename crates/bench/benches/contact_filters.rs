//! Global-search filter cost: NRemote evaluation with the decision-tree
//! filter vs the bounding-box filter on a real snapshot of the synthetic
//! workload (query cost per surface element, and the resulting shipment
//! counts as reported quantities).

use cip_contact::{n_remote, BboxFilter, DtreeFilter};
use cip_core::SnapshotView;
use cip_dtree::{induce, DtreeConfig};
use cip_partition::{partition_kway, PartitionerConfig};
use cip_sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let k = 16;
    let sim = cip_sim::run(&SimConfig::small());
    let view = SnapshotView::build(&sim, sim.len() / 2, 5);
    let asg = partition_kway(&view.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view.graph2.assignment_on_nodes(&asg);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    let elements = view.surface_elements(&node_parts);

    eprintln!(
        "workload: {} surface elements, {} contact points, tree {} nodes",
        elements.len(),
        view.contact.len(),
        tree.num_nodes()
    );
    let dtf = DtreeFilter::new(&tree, k);
    let bbf = BboxFilter::from_points(&view.contact.positions, &labels, k);
    eprintln!("NRemote: dtree {}, bbox {}", n_remote(&elements, &dtf), n_remote(&elements, &bbf));

    let mut group = c.benchmark_group("n_remote");
    group.bench_function("dtree_filter", |b| {
        b.iter(|| black_box(n_remote(&elements, &dtf)));
    });
    group.bench_function("bbox_filter", |b| {
        b.iter(|| black_box(n_remote(&elements, &bbf)));
    });
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
