//! Per-snapshot mesh-processing costs: boundary-surface extraction and
//! nodal-graph construction — the fixed overhead every algorithm pays on
//! every snapshot of the sequence.

use cip_geom::Point;
use cip_mesh::graphs::{nodal_graph, NodalGraphOptions};
use cip_mesh::{extract_surface, generators};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mesh_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_build");
    group.sample_size(10);
    for &side in &[16usize, 32] {
        let mesh = generators::hex_box([side, side, 4], Point::new([0.0; 3]), [1.0; 3], 0);
        let elems = mesh.num_elements();
        group.bench_with_input(BenchmarkId::new("extract_surface", elems), &mesh, |b, m| {
            b.iter(|| black_box(extract_surface(m)));
        });
        let surface = extract_surface(&mesh);
        let mask = surface.contact_node_mask(mesh.num_nodes());
        group.bench_with_input(BenchmarkId::new("nodal_graph_2con", elems), &mesh, |b, m| {
            b.iter(|| black_box(nodal_graph(m, &mask, NodalGraphOptions::default())));
        });
        group.bench_with_input(BenchmarkId::new("dual_graph", elems), &mesh, |b, m| {
            b.iter(|| black_box(cip_mesh::dual_graph(m)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mesh_build);
criterion_main!(benches);
