//! Decision-tree induction and query throughput: the per-snapshot cost of
//! the paper's contact-search setup (NTNodes is its size; this measures
//! its time).

use cip_dtree::{induce, DtreeConfig};
use cip_geom::{Aabb, Point, RcbTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Ring-like contact point cloud with an RCB labeling of k parts.
fn workload(n: usize, k: usize) -> (Vec<Point<3>>, Vec<u32>) {
    let mut pts = Vec::with_capacity(n);
    let mut state = 0xDEADBEEFu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 10_000.0
    };
    for i in 0..n {
        let a = (i as f64) * 0.017;
        let r = 30.0 + rnd() * 3.0;
        pts.push(Point::new([r * a.cos(), r * a.sin(), rnd() * 6.0]));
    }
    let weights = vec![1.0; n];
    let (_, labels) = RcbTree::build(&pts, &weights, k);
    (pts, labels)
}

fn bench_induction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtree_induce");
    group.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        let (pts, labels) = workload(n, 16);
        group.bench_with_input(BenchmarkId::new("purity", n), &n, |b, _| {
            let cfg = DtreeConfig::search_tree();
            b.iter(|| black_box(induce(&pts, &labels, 16, &cfg)));
        });
        group.bench_with_input(BenchmarkId::new("friendly", n), &n, |b, _| {
            let cfg = DtreeConfig::friendly_tree(n / 32, n / 256);
            b.iter(|| black_box(induce(&pts, &labels, 16, &cfg)));
        });
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            let cfg = DtreeConfig { parallel_threshold: usize::MAX, ..DtreeConfig::search_tree() };
            b.iter(|| black_box(induce(&pts, &labels, 16, &cfg)));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtree_query_box");
    let (pts, labels) = workload(20_000, 16);
    let tree = induce(&pts, &labels, 16, &DtreeConfig::search_tree());
    let queries: Vec<Aabb<3>> =
        pts.iter().step_by(7).map(|p| Aabb::from_point(*p).inflate(1.5)).collect();
    group.bench_function("20k_points/16_parts", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                tree.query_box(q, &mut out);
                total += out.len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_induction, bench_queries);
criterion_main!(benches);
