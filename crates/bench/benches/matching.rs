//! Hungarian maximum-weight assignment cost vs part count — the per-step
//! price of the ML+RCB baseline's optimized mesh-to-mesh mapping (and of
//! scratch-remap repartitioning).

use cip_partition::max_weight_assignment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn matrix(k: usize) -> Vec<i64> {
    let mut state = 0x5151u64;
    (0..k * k)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as i64
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &k in &[25usize, 100, 256] {
        let w = matrix(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(max_weight_assignment(k, &w)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
