//! Coarsening throughput: sequential vs parallel heavy-edge matching and
//! contraction across graph sizes (the dominant cost inside every
//! `partition_kway` / `partition_kway_multilevel` call).
//!
//! `sequential` pins `parallel_threshold = usize::MAX` (every level on the
//! classic single-threaded path); `parallel` pins it to 0 (every level on
//! the propose-then-resolve matcher + two-pass parallel contraction). Both
//! produce valid hierarchies; the parallel path additionally guarantees
//! bit-identical output at any rayon thread count.

use cip_graph::{Graph, GraphBuilder};
use cip_partition::{
    coarsen_with, heavy_edge_matching, parallel_heavy_edge_matching, CoarsenParams,
    CoarsenWorkspace,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Two-constraint grid graph, the paper's surface-weight pattern.
fn grid(nx: usize, ny: usize) -> Graph {
    let mut b = GraphBuilder::new(nx * ny, 2);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            b.set_vwgt(id(i, j), &[1, i64::from(border)]);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

fn bench_coarsen(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsen");
    group.sample_size(10);

    // 16k (medium), 65k, 262k (≳ the paper's 156k-node EPIC mesh).
    for &side in &[128usize, 256, 512] {
        let g = grid(side, side);
        let n = side * side;
        for (label, threshold) in [("sequential", usize::MAX), ("parallel", 0usize)] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                let params =
                    CoarsenParams { parallel_threshold: threshold, ..CoarsenParams::new(160, 1) };
                let mut ws = CoarsenWorkspace::new();
                b.iter(|| black_box(coarsen_with(g, &params, &mut ws)));
            });
        }
    }
    group.finish();
}

fn bench_matching_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("hem");
    group.sample_size(10);

    for &side in &[128usize, 256, 512] {
        let g = grid(side, side);
        let n = side * side;
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| black_box(heavy_edge_matching(g, 7)));
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| black_box(parallel_heavy_edge_matching(g, 7, 8)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coarsen, bench_matching_only);
criterion_main!(benches);
