//! Uncoarsening-phase refinement throughput: the boundary-driven k-way
//! sweep (sequential vs deterministic propose-then-resolve parallel), the
//! full multilevel k-way driver it lives inside, and 2-way FM — plus a
//! steady-state allocation check proving the workspace-resident paths are
//! allocation-free once warm.
//!
//! `sequential` pins `parallel_threshold = usize::MAX`; `parallel` pins it
//! to 0 so every pass takes the propose-then-resolve path (bit-identical
//! at any rayon thread count). The allocation check runs before the
//! criterion groups in the custom `main`: a warmed [`RefineWorkspace`]
//! must serve a second `refine_kway_with` + `balance_kway_with` +
//! `fm_refine_with` round with **zero** heap allocations (sequential path
//! only — the rayon runtime itself allocates on the parallel path).

use cip_graph::{Graph, GraphBuilder};
use cip_partition::fm::BisectTargets;
use cip_partition::{
    balance_kway_with, fm_refine_with, partition_kway_multilevel, refine_kway_with,
    PartitionerConfig, RefineWorkspace,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the system allocator: every `alloc`/`realloc`
/// bumps a global counter the steady-state check snapshots.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Two-constraint grid graph, the paper's surface-weight pattern.
fn grid(nx: usize, ny: usize) -> Graph {
    let mut b = GraphBuilder::new(nx * ny, 2);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            b.set_vwgt(id(i, j), &[1, i64::from(border)]);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

/// Diagonal-stripe start: balanced but with a terrible cut, so refinement
/// has a full boundary of strictly improving moves to chew through.
fn diagonal_start(side: usize, k: usize) -> Vec<u32> {
    (0..side * side).map(|v| (((v % side) + (v / side)) % k) as u32).collect()
}

/// Zero-allocation steady state: after one warm-up round, re-running the
/// sequential k-way refine + balance and 2-way FM against an identical
/// starting assignment must not touch the allocator at all.
fn assert_zero_alloc_steady_state() {
    let side = 128;
    let k = 8;
    let g = grid(side, side);
    let start = diagonal_start(side, k);
    let cfg =
        PartitionerConfig { parallel_threshold: usize::MAX, ..PartitionerConfig::with_seed(3) };
    let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.05]);
    let bis_start: Vec<u32> = (0..side * side).map(|v| ((v % side) % 2) as u32).collect();

    let mut ws = RefineWorkspace::new();
    // Warm-up round: buffers grow to their high-water marks here.
    let mut asg = start.clone();
    refine_kway_with(&g, k, &mut asg, &cfg, &mut ws);
    balance_kway_with(&g, k, &mut asg, &cfg, &mut ws);
    let mut bis = bis_start.clone();
    fm_refine_with(&g, &mut bis, &targets, cfg.fm_passes, cfg.transient_violation, &mut ws);

    // Measured round: identical inputs, warmed workspace.
    asg.copy_from_slice(&start);
    bis.copy_from_slice(&bis_start);
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    refine_kway_with(&g, k, &mut asg, &cfg, &mut ws);
    balance_kway_with(&g, k, &mut asg, &cfg, &mut ws);
    fm_refine_with(&g, &mut bis, &targets, cfg.fm_passes, cfg.transient_violation, &mut ws);
    let allocs = ALLOC_COUNT.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state refine_kway_with/balance_kway_with/fm_refine_with must not allocate"
    );
    eprintln!("alloc check: 0 heap allocations in warmed refine/balance/fm round");
    black_box(asg.len() + bis.len());
}

/// Parallel-schedule steady state: the propose/resolve tables and win
/// flags live in the workspace, so a warmed parallel round's only
/// allocations come from the rayon runtime itself — job boxes, the
/// per-worker `for_each_init` connectivity scratch, and join latches.
/// Those scale with the thread count and splits, not the graph, so the
/// budget is a small per-thread constant; the old
/// `par_iter().filter().collect()` resolve alone blew through it with
/// O(boundary) winner buffers every round.
fn assert_bounded_alloc_parallel_steady_state() {
    let side = 128;
    let k = 8;
    let g = grid(side, side);
    let start = diagonal_start(side, k);
    let cfg = PartitionerConfig { parallel_threshold: 0, ..PartitionerConfig::with_seed(3) };

    let mut ws = RefineWorkspace::new();
    let mut asg = start.clone();
    refine_kway_with(&g, k, &mut asg, &cfg, &mut ws);

    asg.copy_from_slice(&start);
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    refine_kway_with(&g, k, &mut asg, &cfg, &mut ws);
    let allocs = ALLOC_COUNT.load(Ordering::Relaxed) - before;
    let budget = 64 * rayon::current_num_threads() as u64 + 256;
    assert!(
        allocs <= budget,
        "warmed parallel refine_kway_with allocated {allocs} times \
         (budget {budget}); the resolve path is leaking per-round buffers"
    );
    eprintln!(
        "alloc check: {allocs} heap allocations in warmed parallel refine round \
         (budget {budget}, rayon overhead only)"
    );
    black_box(asg.len());
}

fn bench_refine_kway(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    group.sample_size(10);

    // 16k (medium), 65k, 262k (≳ the paper's 156k-node EPIC mesh).
    for &side in &[128usize, 256, 512] {
        let g = grid(side, side);
        let n = side * side;
        let k = 8;
        let start = diagonal_start(side, k);
        for (label, threshold) in [("sequential", usize::MAX), ("parallel", 0usize)] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                let cfg = PartitionerConfig {
                    parallel_threshold: threshold,
                    ..PartitionerConfig::with_seed(7)
                };
                let mut ws = RefineWorkspace::new();
                let mut asg = start.clone();
                b.iter(|| {
                    asg.copy_from_slice(&start);
                    refine_kway_with(g, k, &mut asg, &cfg, &mut ws);
                    black_box(asg.last().copied())
                });
            });
        }
    }
    group.finish();
}

fn bench_kway_ml(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_ml");
    group.sample_size(10);

    for &side in &[128usize, 256] {
        let g = grid(side, side);
        let n = side * side;
        for (label, threshold) in [("sequential", usize::MAX), ("parallel", 0usize)] {
            group.bench_with_input(BenchmarkId::new(label, n), &g, |b, g| {
                let cfg = PartitionerConfig {
                    parallel_threshold: threshold,
                    ..PartitionerConfig::with_seed(11)
                };
                b.iter(|| black_box(partition_kway_multilevel(g, 8, &cfg)));
            });
        }
    }
    group.finish();
}

fn bench_fm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm");
    group.sample_size(10);

    for &side in &[128usize, 256] {
        let g = grid(side, side);
        let n = side * side;
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.05]);
        // Interleaved columns: every vertex on the boundary.
        let start: Vec<u32> = (0..n).map(|v| ((v % side) % 2) as u32).collect();
        group.bench_with_input(BenchmarkId::new("refine", n), &g, |b, g| {
            let mut ws = RefineWorkspace::new();
            let mut asg = start.clone();
            b.iter(|| {
                asg.copy_from_slice(&start);
                black_box(fm_refine_with(g, &mut asg, &targets, 4, 0.02, &mut ws))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refine_kway, bench_kway_ml, bench_fm);

fn main() {
    assert_zero_alloc_steady_state();
    assert_bounded_alloc_parallel_steady_state();
    benches();
}
