//! Cost of one executed parallel step (threads + channels) vs the number
//! of ranks — the end-to-end overhead of the runtime harness itself.

use cip_contact::DtreeFilter;
use cip_core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip_dtree::{induce, DtreeConfig};
use cip_partition::{partition_kway, PartitionerConfig};
use cip_runtime::{build_decomposition, execute_step, StepInput};
use cip_sim::SimConfig;
use cip_telemetry::Recorder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_step(c: &mut Criterion) {
    let mut cfg = SimConfig::tiny();
    cfg.snapshots = 8;
    let sim = cip_sim::run(&cfg);
    let i = sim.len() / 2;

    let mut group = c.benchmark_group("runtime_step");
    group.sample_size(10);
    for &k in &[2usize, 4, 8] {
        let view0 = SnapshotView::build(&sim, 0, 5);
        let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
        let positions: Vec<_> =
            view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
        dt_friendly_correct(
            &view0.graph2.graph,
            &positions,
            k,
            &mut asg,
            &DtFriendlyConfig::default(),
        );
        let node_parts = view0.graph2.assignment_on_nodes(&asg);

        let view = SnapshotView::build(&sim, i, 5);
        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
        let elements = view.surface_elements(&node_parts);
        let bodies = view.face_bodies();
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let decomposition = build_decomposition(
            &view.graph2.graph,
            &view.graph2.node_of_vertex,
            &asg_now,
            &owners,
            k,
        );
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());

        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let filter = DtreeFilter::new(&tree, k);
            b.iter(|| {
                black_box(execute_step(&StepInput {
                    decomposition: &decomposition,
                    positions: &view.mesh.points,
                    elements: &elements,
                    bodies: &bodies,
                    filter: &filter,
                    tolerance: 0.4,
                    recorder: Recorder::disabled(),
                }))
                .expect("step executes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
