//! RCB cost: from-scratch builds vs the incremental cut-shifting update
//! (the per-step cost the ML+RCB baseline pays to keep its contact
//! decomposition balanced).

use cip_geom::{Point, RcbTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cloud(n: usize, shift: f64) -> Vec<Point<3>> {
    let mut pts = Vec::with_capacity(n);
    let mut state = 0xABCDu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 100.0
    };
    for _ in 0..n {
        pts.push(Point::new([rnd() + shift, rnd(), rnd() * 0.2]));
    }
    pts
}

fn bench_rcb(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcb");
    for &n in &[5_000usize, 50_000] {
        let pts = cloud(n, 0.0);
        let moved = cloud(n, 7.5);
        let weights = vec![1.0; n];
        for &k in &[25usize, 100] {
            group.bench_with_input(BenchmarkId::new(format!("build/k{k}"), n), &n, |b, _| {
                b.iter(|| black_box(RcbTree::build(&pts, &weights, k)));
            });
            group.bench_with_input(BenchmarkId::new(format!("update/k{k}"), n), &n, |b, _| {
                let (tree, _) = RcbTree::build(&pts, &weights, k);
                b.iter_batched(
                    || tree.clone(),
                    |mut t| black_box(t.update(&moved, &weights)),
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rcb);
criterion_main!(benches);
