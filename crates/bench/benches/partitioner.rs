//! Multilevel partitioner throughput: k-way partitioning of grid graphs
//! across sizes, part counts, and constraint counts (the cost the paper's
//! §4.2 pipeline pays once per repartitioning).

use cip_graph::{Graph, GraphBuilder};
use cip_partition::{
    diffusion_repartition, partition_kway, partition_kway_multilevel, repartition,
    PartitionerConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
    let mut b = GraphBuilder::new(nx * ny, ncon);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            let w: Vec<i64> =
                (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
            b.set_vwgt(id(i, j), &w);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_kway");
    group.sample_size(10);

    for &side in &[40usize, 80] {
        for &k in &[8usize, 32] {
            let g1 = grid(side, side, 1);
            let g2 = grid(side, side, 2);
            group.bench_with_input(
                BenchmarkId::new(format!("1con/k{k}"), side * side),
                &g1,
                |b, g| {
                    let cfg = PartitionerConfig::with_seed(1);
                    b.iter(|| black_box(partition_kway(g, k, &cfg)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("2con/k{k}"), side * side),
                &g2,
                |b, g| {
                    let cfg = PartitionerConfig::with_seed(1);
                    b.iter(|| black_box(partition_kway(g, k, &cfg)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("kway_ml/k{k}"), side * side),
                &g1,
                |b, g| {
                    let cfg = PartitionerConfig::with_seed(1);
                    b.iter(|| black_box(partition_kway_multilevel(g, k, &cfg)));
                },
            );
        }
    }
    group.finish();
}

fn bench_repartitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("repartition");
    group.sample_size(10);
    let g = grid(60, 60, 1);
    let k = 16;
    let cfg = PartitionerConfig::with_seed(3);
    let base = partition_kway(&g, k, &cfg);
    // Mild perturbation: rotate one column of parts.
    let mut old = base;
    for v in 0..60 {
        old[v * 60] = (old[v * 60] + 1) % k as u32;
    }
    group.bench_function("scratch_remap", |b| {
        b.iter(|| black_box(repartition(&g, k, &old, &cfg)));
    });
    group.bench_function("diffusion", |b| {
        b.iter(|| black_box(diffusion_repartition(&g, k, &old, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_partitioner, bench_repartitioning);
criterion_main!(benches);
