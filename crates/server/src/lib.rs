//! Multi-tenant job server over the versioned binary wire format.
//!
//! `cip-server` turns the one-shot trace pipeline into a long-lived
//! service: many concurrent clients submit jobs (opaque payloads a
//! [`JobRunner`] knows how to execute), a bounded worker pool runs them,
//! and a content-hash cache answers repeated submissions with the exact
//! bytes of the first run — bit-identical by construction. The crate is
//! deliberately partitioner-agnostic: it depends only on the transport,
//! telemetry, and runtime layers, and the `cip` facade plugs the traced
//! partition/execute pipeline in via its `JobRunner` implementation
//! (`cip::service`), keeping the dependency graph acyclic.
//!
//! * [`protocol`] — the client/server control frames ([`JobMsg`]),
//!   framed and CRC-checked exactly like mesh traffic,
//! * [`Server`] — bounded queue, worker threads with per-worker reusable
//!   workspaces, content-hash cache, `server.jobs.*` counters and
//!   per-job telemetry spans,
//! * [`Client`] — a blocking request/response client for one
//!   connection.
//!
//! Cancellation is cooperative: [`JobMsg::Cancel`] trips the job's
//! [`CancelToken`]; a queued job is finalized immediately, a running one
//! winds down at the runner's next checkpoint (for traced sessions,
//! a batch boundary). Either way the worker thread survives and picks
//! up the next job — a cancelled job never poisons the pool.

pub mod client;
pub mod protocol;

pub use client::Client;
pub use protocol::{CatalogEntry, JobMsg, JobOutcome, JobState, ServerStats};

use cip_runtime::CancelToken;
use cip_telemetry::Recorder;
use cip_transport::frame::{read_frame, write_frame, ReadError};
use cip_transport::WireError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// FNV-1a 64 over the submission payload — the content-hash cache key.
/// Collisions are handled by byte-comparing the stored payload, so a
/// hash collision degrades to a cache miss, never a wrong result.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a job runner gave up — the runner-side half of [`JobOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The payload failed validation before any work started.
    Invalid {
        /// Why.
        reason: String,
    },
    /// Execution started but failed.
    Failed {
        /// Why.
        reason: String,
    },
    /// The job's [`CancelToken`] tripped and the runner wound down.
    Cancelled,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid { reason } => write!(f, "invalid job: {reason}"),
            Self::Failed { reason } => write!(f, "job failed: {reason}"),
            Self::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// What the server executes. Implementations decode the payload, run
/// the work, and return result bytes; the server never interprets
/// either side.
///
/// One [`JobRunner::Workspace`] is created per worker thread and handed
/// back on every job that worker runs — the hook for allocation-free
/// steady-state execution (partitioner scratch, session workspaces).
pub trait JobRunner: Send + Sync + 'static {
    /// Per-worker reusable scratch.
    type Workspace: Send;

    /// A fresh workspace for one worker thread.
    fn workspace(&self) -> Self::Workspace;

    /// Executes one job. `cancel` trips when the client cancels; the
    /// runner should poll it at its checkpoints and return
    /// [`JobError::Cancelled`]. Reuse of `ws` must not change results.
    fn run(
        &self,
        payload: &[u8],
        cancel: &CancelToken,
        ws: &mut Self::Workspace,
    ) -> Result<Vec<u8>, JobError>;

    /// The workloads this runner advertises ([`JobMsg::Catalog`]).
    fn catalog(&self) -> Vec<CatalogEntry> {
        Vec::new()
    }
}

/// A failed server/client operation.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io {
        /// What was being attempted.
        what: &'static str,
        /// The OS error.
        detail: String,
    },
    /// A malformed or unexpected frame on the control connection.
    Wire(WireError),
    /// The peer violated the request/response protocol.
    Protocol {
        /// What went wrong.
        what: String,
    },
    /// The server refused a submission.
    Rejected {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { what, detail } => write!(f, "{what}: {detail}"),
            Self::Wire(e) => write!(f, "wire protocol violation: {e}"),
            Self::Protocol { what } => write!(f, "protocol violation: {what}"),
            Self::Rejected { reason } => write!(f, "submission rejected: {reason}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listener bind address (`127.0.0.1:0` = OS-assigned port).
    pub bind: String,
    /// Worker threads (= jobs in flight); at least 1.
    pub workers: usize,
    /// Longest admission queue; submissions beyond it are rejected so a
    /// flood degrades loudly instead of accumulating unbounded state.
    pub queue_capacity: usize,
    /// Telemetry sink for `server.jobs.*` counters and per-job spans.
    pub recorder: Recorder,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            recorder: Recorder::disabled(),
        }
    }
}

/// One tracked job.
struct Job {
    /// The submission payload; taken by the worker that runs it.
    payload: Vec<u8>,
    hash: u64,
    state: JobState,
    cancel: CancelToken,
    outcome: Option<JobOutcome>,
    cached: bool,
}

/// Mutex-guarded server state.
struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    /// hash → (payload, result): the payload is kept to byte-verify
    /// hits, so collisions degrade to misses.
    cache: HashMap<u64, (Vec<u8>, Vec<u8>)>,
    next_id: u64,
}

/// Lock-free counter block behind [`ServerStats`].
#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    cache_hits: AtomicU64,
    failed: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

struct Shared<R: JobRunner> {
    runner: R,
    inner: Mutex<Inner>,
    /// Wakes workers when the queue grows (and on shutdown).
    work_cv: Condvar,
    /// Wakes result waiters when any job finalizes (and on shutdown).
    done_cv: Condvar,
    stats: StatCells,
    rec: Recorder,
    shutdown: AtomicBool,
    queue_capacity: usize,
}

/// Poison-tolerant lock: a panicking connection handler must not take
/// the whole server down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl<R: JobRunner> Shared<R> {
    /// Finalizes `id` under the lock: state, outcome, stats, counters,
    /// cache insertion for successes, and the completion broadcast.
    fn finalize(&self, inner: &mut Inner, id: u64, result: Result<Vec<u8>, JobError>) {
        let Some(job) = inner.jobs.get_mut(&id) else {
            return;
        };
        match result {
            Ok(bytes) => {
                job.state = JobState::Done;
                job.outcome = Some(JobOutcome::Done { payload: bytes.clone() });
                let hash = job.hash;
                let payload = std::mem::take(&mut job.payload);
                inner.cache.entry(hash).or_insert((payload, bytes));
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.completed", 1);
            }
            Err(JobError::Cancelled) => {
                job.state = JobState::Cancelled;
                job.outcome = Some(JobOutcome::Cancelled);
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.cancelled", 1);
            }
            Err(JobError::Invalid { reason } | JobError::Failed { reason }) => {
                job.state = JobState::Failed;
                job.outcome = Some(JobOutcome::Failed { reason });
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.failed", 1);
            }
        }
        self.done_cv.notify_all();
    }
}

/// A running job server: accept loop + worker pool. Bind with
/// [`Server::start`], stop with [`Server::shutdown`] (also called on
/// drop).
pub struct Server<R: JobRunner> {
    addr: SocketAddr,
    shared: Arc<Shared<R>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<R: JobRunner> Server<R> {
    /// Binds the listener, spawns the worker pool, and starts accepting
    /// clients.
    pub fn start(runner: R, cfg: &ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&cfg.bind)
            .map_err(|e| ServerError::Io { what: "bind job listener", detail: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io { what: "job listener address", detail: e.to_string() })?;
        let shared = Arc::new(Shared {
            runner,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                cache: HashMap::new(),
                next_id: 1,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            stats: StatCells::default(),
            rec: cfg.recorder.clone(),
            shutdown: AtomicBool::new(false),
            queue_capacity: cfg.queue_capacity.max(1),
        });

        let workers = (0..cfg.workers.max(1))
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, wid))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                stream.set_nodelay(true).ok();
                let shared = Arc::clone(&accept_shared);
                // Handlers are detached: they exit on client EOF or
                // corrupt frames, and the process teardown reaps any
                // that are still blocked on an open client socket.
                std::thread::spawn(move || serve_connection(&shared, stream));
            }
        });

        Ok(Self { addr, shared, accept: Some(accept), workers })
    }

    /// The bound listener address (resolve `127.0.0.1:0` to the real
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate job counters so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Stops accepting, wakes every worker and waiter, and joins the
    /// pool. Queued jobs that never ran are finalized as cancelled.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut inner = lock(&self.shared.inner);
            let queued: Vec<u64> = inner.queue.drain(..).collect();
            for id in queued {
                if let Some(job) = inner.jobs.get(&id) {
                    if job.state == JobState::Queued {
                        self.shared.finalize(&mut inner, id, Err(JobError::Cancelled));
                    }
                }
            }
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        // Unblock the accept loop with a dummy connection.
        TcpStream::connect(self.addr).ok();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }
}

impl<R: JobRunner> Drop for Server<R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker thread: owns a reusable workspace, drains the queue until
/// shutdown.
fn worker_loop<R: JobRunner>(shared: &Shared<R>, wid: usize) {
    let mut ws = shared.runner.workspace();
    loop {
        let (id, payload, cancel) = {
            let mut inner = lock(&shared.inner);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Skip entries finalized while queued (client cancel).
                let next = loop {
                    match inner.queue.pop_front() {
                        None => break None,
                        Some(id) => {
                            if inner.jobs.get(&id).is_some_and(|j| j.state == JobState::Queued) {
                                break Some(id);
                            }
                        }
                    }
                };
                if let Some(id) = next {
                    let Some(job) = inner.jobs.get_mut(&id) else {
                        continue;
                    };
                    job.state = JobState::Running;
                    break (id, job.payload.clone(), job.cancel.clone());
                }
                inner = shared.work_cv.wait(inner).unwrap_or_else(|p| p.into_inner());
            }
        };

        let result = {
            let mut span = shared.rec.span("server.job").attr("job", id).attr("worker", wid);
            if cancel.is_cancelled() {
                // Cancelled between dequeue and start: never run it.
                Err(JobError::Cancelled)
            } else {
                let r = shared.runner.run(&payload, &cancel, &mut ws);
                span.set_attr(
                    "outcome",
                    match &r {
                        Ok(_) => "done",
                        Err(JobError::Cancelled) => "cancelled",
                        Err(_) => "failed",
                    },
                );
                r
            }
        };
        let mut inner = lock(&shared.inner);
        shared.finalize(&mut inner, id, result);
    }
}

/// One client connection: a strict request/response loop. EOF or a
/// corrupt frame ends the connection; the jobs it submitted live on.
fn serve_connection<R: JobRunner>(shared: &Shared<R>, mut stream: TcpStream) {
    let mut payload = Vec::new();
    let mut buf = Vec::new();
    loop {
        let msg = match read_frame::<JobMsg>(&mut stream, &mut payload) {
            Ok((m, _, _)) => m,
            Err(ReadError::Eof) => return,
            Err(_) => return,
        };
        let reply = match msg {
            JobMsg::Submit { ticket, payload } => submit(shared, ticket, payload),
            JobMsg::Status { job_id } => {
                let inner = lock(&shared.inner);
                let state = inner.jobs.get(&job_id).map_or(JobState::Failed, |j| j.state);
                JobMsg::StatusIs { job_id, state }
            }
            JobMsg::Cancel { job_id } => cancel(shared, job_id),
            JobMsg::Result { job_id } => await_result(shared, job_id),
            JobMsg::Stats => JobMsg::StatsIs(shared.stats.snapshot()),
            JobMsg::Catalog => JobMsg::CatalogIs { entries: shared.runner.catalog() },
            // A reply frame arriving as a request is a protocol
            // violation; drop the connection.
            _ => return,
        };
        if write_frame(&mut stream, &reply, 0, &mut buf).is_err() {
            return;
        }
    }
}

/// Admission: cache lookup, bounded queue, accept/reject.
fn submit<R: JobRunner>(shared: &Shared<R>, ticket: u32, payload: Vec<u8>) -> JobMsg {
    if shared.shutdown.load(Ordering::Acquire) {
        return JobMsg::Rejected { ticket, reason: "server shutting down".to_string() };
    }
    let hash = content_hash(&payload);
    let mut inner = lock(&shared.inner);
    let id = inner.next_id;

    // Content-hash cache: a byte-identical resubmission is answered
    // with the exact result bytes of the first run — no worker, no
    // recomputation, bit-identical totals.
    let hit = inner.cache.get(&hash).filter(|(first, _)| first == &payload).map(|(_, r)| r.clone());
    if let Some(result) = hit {
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                payload: Vec::new(),
                hash,
                state: JobState::Done,
                cancel: CancelToken::new(),
                outcome: Some(JobOutcome::Done { payload: result }),
                cached: true,
            },
        );
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.rec.add("server.jobs.submitted", 1);
        shared.rec.add("server.jobs.cache_hits", 1);
        shared.done_cv.notify_all();
        return JobMsg::Accepted { ticket, job_id: id };
    }

    if inner.queue.len() >= shared.queue_capacity {
        return JobMsg::Rejected { ticket, reason: "admission queue full".to_string() };
    }
    inner.next_id += 1;
    inner.jobs.insert(
        id,
        Job {
            payload,
            hash,
            state: JobState::Queued,
            cancel: CancelToken::new(),
            outcome: None,
            cached: false,
        },
    );
    inner.queue.push_back(id);
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    shared.rec.add("server.jobs.submitted", 1);
    shared.work_cv.notify_one();
    JobMsg::Accepted { ticket, job_id: id }
}

/// Cancellation: a queued job finalizes immediately; a running one is
/// asked to stop via its token and finalizes when the runner yields.
fn cancel<R: JobRunner>(shared: &Shared<R>, job_id: u64) -> JobMsg {
    let mut inner = lock(&shared.inner);
    let Some(job) = inner.jobs.get(&job_id) else {
        return JobMsg::StatusIs { job_id, state: JobState::Failed };
    };
    job.cancel.cancel();
    if job.state == JobState::Queued {
        shared.finalize(&mut inner, job_id, Err(JobError::Cancelled));
    }
    let state = inner.jobs.get(&job_id).map_or(JobState::Failed, |j| j.state);
    JobMsg::StatusIs { job_id, state }
}

/// Blocks until the job finalizes (or the server shuts down).
fn await_result<R: JobRunner>(shared: &Shared<R>, job_id: u64) -> JobMsg {
    let mut inner = lock(&shared.inner);
    loop {
        match inner.jobs.get(&job_id) {
            None => {
                return JobMsg::ResultIs {
                    job_id,
                    outcome: JobOutcome::Failed { reason: "unknown job".to_string() },
                    cached: false,
                };
            }
            Some(job) => {
                if let Some(outcome) = &job.outcome {
                    return JobMsg::ResultIs {
                        job_id,
                        outcome: outcome.clone(),
                        cached: job.cached,
                    };
                }
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return JobMsg::ResultIs {
                job_id,
                outcome: JobOutcome::Failed { reason: "server shutting down".to_string() },
                cached: false,
            };
        }
        inner = shared.done_cv.wait(inner).unwrap_or_else(|p| p.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Test runner: payload[0] selects the behavior. 0 = echo the rest
    /// reversed, 1 = spin until cancelled (checkpoint every 1 ms),
    /// 2 = fail.
    struct TestRunner;

    impl JobRunner for TestRunner {
        type Workspace = Vec<u8>;

        fn workspace(&self) -> Vec<u8> {
            Vec::new()
        }

        fn run(
            &self,
            payload: &[u8],
            cancel: &CancelToken,
            ws: &mut Vec<u8>,
        ) -> Result<Vec<u8>, JobError> {
            match payload.first() {
                Some(0) => {
                    ws.clear();
                    ws.extend(payload[1..].iter().rev());
                    Ok(ws.clone())
                }
                Some(1) => loop {
                    if cancel.is_cancelled() {
                        return Err(JobError::Cancelled);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                },
                Some(2) => Err(JobError::Failed { reason: "scripted failure".to_string() }),
                _ => Err(JobError::Invalid { reason: "empty payload".to_string() }),
            }
        }

        fn catalog(&self) -> Vec<CatalogEntry> {
            vec![CatalogEntry { name: "echo".to_string(), summary: "reverses bytes".to_string() }]
        }
    }

    fn start() -> (Server<TestRunner>, Client) {
        let server =
            Server::start(TestRunner, &ServerConfig { workers: 1, ..ServerConfig::default() })
                .expect("server starts");
        let client = Client::connect(&server.addr().to_string()).expect("client connects");
        (server, client)
    }

    #[test]
    fn echo_job_roundtrips_and_is_cached_on_resubmit() {
        let (server, mut client) = start();
        let job = client.submit(&[0, 1, 2, 3]).expect("submit");
        let (outcome, cached) = client.result(job).expect("result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![3, 2, 1] });
        assert!(!cached);

        let again = client.submit(&[0, 1, 2, 3]).expect("resubmit");
        assert_ne!(again, job, "every submission is its own job");
        let (outcome2, cached2) = client.result(again).expect("cached result");
        assert_eq!(outcome2, JobOutcome::Done { payload: vec![3, 2, 1] });
        assert!(cached2, "byte-identical resubmission must hit the cache");

        let stats = client.stats().expect("stats");
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(server.stats(), stats);
    }

    #[test]
    fn queued_cancel_is_deterministic_and_pool_stays_serviceable() {
        let (_server, mut client) = start();
        // One worker: occupy it, then cancel a job that is still queued.
        let blocker = client.submit(&[1]).expect("submit blocker");
        let queued = client.submit(&[0, 9]).expect("submit queued");
        let state = client.cancel(queued).expect("cancel");
        assert_eq!(state, JobState::Cancelled, "a queued job cancels synchronously");
        let (outcome, _) = client.result(queued).expect("result");
        assert_eq!(outcome, JobOutcome::Cancelled);

        // Now cancel the running blocker; its token checkpoint fires.
        client.cancel(blocker).expect("cancel blocker");
        let (outcome, _) = client.result(blocker).expect("blocker result");
        assert_eq!(outcome, JobOutcome::Cancelled);

        // The single worker must still serve new jobs.
        let after = client.submit(&[0, 7]).expect("submit after cancels");
        let (outcome, _) = client.result(after).expect("post-cancel result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![7] });
        let stats = client.stats().expect("stats");
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn failures_and_unknown_jobs_are_reported_not_fatal() {
        let (_server, mut client) = start();
        let job = client.submit(&[2]).expect("submit");
        let (outcome, _) = client.result(job).expect("result");
        assert!(
            matches!(outcome, JobOutcome::Failed { ref reason } if reason.contains("scripted"))
        );
        assert_eq!(client.status(99_999).expect("status"), JobState::Failed);
        let (outcome, _) = client.result(99_999).expect("unknown result");
        assert!(matches!(outcome, JobOutcome::Failed { .. }));
        // Failed results are not cached.
        let again = client.submit(&[2]).expect("resubmit failure");
        let (outcome, cached) = client.result(again).expect("result");
        assert!(matches!(outcome, JobOutcome::Failed { .. }));
        assert!(!cached);
    }

    #[test]
    fn catalog_is_advertised() {
        let (_server, mut client) = start();
        let entries = client.catalog().expect("catalog");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "echo");
    }

    #[test]
    fn content_hash_is_fnv1a_and_order_sensitive() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn shutdown_finalizes_queued_jobs_and_joins() {
        let (mut server, mut client) = start();
        let blocker = client.submit(&[1]).expect("submit blocker");
        let queued = client.submit(&[0, 1]).expect("submit queued");
        // Cancel the blocker so the worker can exit, then shut down.
        client.cancel(blocker).expect("cancel blocker");
        let (outcome, _) = client.result(blocker).expect("blocker result");
        assert_eq!(outcome, JobOutcome::Cancelled);
        server.shutdown();
        let stats = server.stats();
        assert!(stats.cancelled >= 1, "shutdown cancels what never ran: {stats:?}");
        let _ = queued;
    }
}
