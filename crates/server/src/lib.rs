//! Multi-tenant job server over the versioned binary wire format.
//!
//! `cip-server` turns the one-shot trace pipeline into a long-lived
//! service: many concurrent clients submit jobs (opaque payloads a
//! [`JobRunner`] knows how to execute), a bounded worker pool runs them,
//! and a content-hash cache answers repeated submissions with the exact
//! bytes of the first run — bit-identical by construction. The crate is
//! deliberately partitioner-agnostic: it depends only on the transport,
//! telemetry, and runtime layers, and the `cip` facade plugs the traced
//! partition/execute pipeline in via its `JobRunner` implementation
//! (`cip::service`), keeping the dependency graph acyclic.
//!
//! * [`protocol`] — the client/server control frames ([`JobMsg`]),
//!   framed and CRC-checked exactly like mesh traffic,
//! * [`Server`] — bounded queue, worker threads with per-worker reusable
//!   workspaces, content-hash cache, `server.jobs.*` counters and
//!   per-job telemetry spans,
//! * [`Client`] — a blocking request/response client for one
//!   connection, with optional connect/read timeouts and a seeded
//!   deterministic retry policy ([`ClientConfig`]).
//!
//! # Resilience model (DESIGN.md §6h)
//!
//! The service degrades gracefully under component failure instead of
//! hanging or leaking:
//!
//! * **Panics are jobs failing, not workers dying.** Runner execution is
//!   wrapped in `catch_unwind`: a panicking job finalizes as a typed
//!   [`JobError::Panicked`] and its client is unblocked. The worker
//!   thread then retires itself — its workspace may be arbitrarily
//!   corrupted by the unwind — and the supervisor respawns a fresh one
//!   (`server.workers.respawned`), so pool capacity is invariant.
//! * **Deadlines bound every job.** [`ServerConfig::job_deadline`] is
//!   threaded into the runner via [`JobContext::deadline`] (the traced
//!   runner turns it into a `RunControl` time budget) and enforced by a
//!   watchdog: an overrunning job is cancelled and force-finalized as a
//!   typed deadline failure, so a wedged runner can never hold a
//!   `Result` waiter hostage.
//! * **The result cache is bounded** by entry count and byte budget
//!   with least-recently-used eviction (`server.cache.evictions`,
//!   `cache_bytes` in [`ServerStats`]).
//! * **Shutdown is a graceful drain**: admission stops immediately,
//!   in-flight jobs get [`ServerConfig::drain_timeout`] to finish, then
//!   stragglers are cancelled and worker threads joined (with a bounded
//!   grace so a wedged runner cannot hang the join).
//!
//! Cancellation is cooperative: [`JobMsg::Cancel`] trips the job's
//! [`CancelToken`]; a queued job is finalized immediately, a running one
//! winds down at the runner's next checkpoint (for traced sessions,
//! a batch boundary). Either way the worker thread survives and picks
//! up the next job — a cancelled job never poisons the pool.

pub mod client;
pub mod protocol;

pub use client::{Client, ClientConfig};
pub use protocol::{CatalogEntry, CatalogInfo, JobMsg, JobOutcome, JobState, ServerStats};

use cip_runtime::CancelToken;
use cip_telemetry::Recorder;
use cip_transport::frame::{read_frame, write_frame, ReadError};
use cip_transport::WireError;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// FNV-1a 64 over the submission payload — the content-hash cache key.
/// Collisions are handled by byte-comparing the stored payload, so a
/// hash collision degrades to a cache miss, never a wrong result.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a job runner gave up — the runner-side half of [`JobOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The payload failed validation before any work started.
    Invalid {
        /// Why.
        reason: String,
    },
    /// Execution started but failed.
    Failed {
        /// Why.
        reason: String,
    },
    /// The job's [`CancelToken`] tripped and the runner wound down.
    Cancelled,
    /// The runner panicked; `catch_unwind` captured the payload and the
    /// job finalized instead of killing its worker silently.
    Panicked {
        /// The panic message.
        reason: String,
    },
    /// The job overran its [`ServerConfig::job_deadline`]; the watchdog
    /// (or the runner's own budget checkpoint) stopped it.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid { reason } => write!(f, "invalid job: {reason}"),
            Self::Failed { reason } => write!(f, "job failed: {reason}"),
            Self::Cancelled => write!(f, "job cancelled"),
            Self::Panicked { reason } => write!(f, "job panicked: {reason}"),
            Self::DeadlineExceeded { limit_ms } => {
                write!(f, "job deadline exceeded ({limit_ms} ms)")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job execution context the server hands to [`JobRunner::run`].
#[derive(Debug, Clone)]
pub struct JobContext {
    /// Trips when the client cancels the job, on shutdown drain
    /// timeout, or when the deadline watchdog fires. Runners should
    /// poll it at their checkpoints and return [`JobError::Cancelled`].
    pub cancel: CancelToken,
    /// The per-job wall-clock deadline, if the server enforces one.
    /// Runners with internal budget support (the traced session) should
    /// thread it into their own budget so they stop cooperatively at a
    /// clean boundary before the watchdog has to force the issue.
    pub deadline: Option<Duration>,
}

/// What the server executes. Implementations decode the payload, run
/// the work, and return result bytes; the server never interprets
/// either side.
///
/// One [`JobRunner::Workspace`] is created per worker thread and handed
/// back on every job that worker runs — the hook for allocation-free
/// steady-state execution (partitioner scratch, session workspaces).
pub trait JobRunner: Send + Sync + 'static {
    /// Per-worker reusable scratch.
    type Workspace: Send;

    /// A fresh workspace for one worker thread.
    fn workspace(&self) -> Self::Workspace;

    /// Executes one job. `ctx.cancel` trips when the client cancels (or
    /// the deadline watchdog fires); the runner should poll it at its
    /// checkpoints and return [`JobError::Cancelled`]. Reuse of `ws`
    /// must not change results.
    fn run(
        &self,
        payload: &[u8],
        ctx: &JobContext,
        ws: &mut Self::Workspace,
    ) -> Result<Vec<u8>, JobError>;

    /// The workloads this runner advertises ([`JobMsg::Catalog`]).
    fn catalog(&self) -> Vec<CatalogEntry> {
        Vec::new()
    }
}

/// A failed server/client operation.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io {
        /// What was being attempted.
        what: &'static str,
        /// The OS error.
        detail: String,
    },
    /// A malformed or unexpected frame on the control connection.
    Wire(WireError),
    /// The peer violated the request/response protocol.
    Protocol {
        /// What went wrong.
        what: String,
    },
    /// The server refused a submission.
    Rejected {
        /// Why.
        reason: String,
    },
    /// Every retry attempt failed; `last` is the final error.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The error of the last attempt.
        last: Box<ServerError>,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { what, detail } => write!(f, "{what}: {detail}"),
            Self::Wire(e) => write!(f, "wire protocol violation: {e}"),
            Self::Protocol { what } => write!(f, "protocol violation: {what}"),
            Self::Rejected { reason } => write!(f, "submission rejected: {reason}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            Self::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listener bind address (`127.0.0.1:0` = OS-assigned port).
    pub bind: String,
    /// Worker threads (= jobs in flight); at least 1.
    pub workers: usize,
    /// Longest admission queue; submissions beyond it are rejected so a
    /// flood degrades loudly instead of accumulating unbounded state.
    pub queue_capacity: usize,
    /// Largest accepted `Submit` payload in bytes. Checked at admission
    /// — before the payload is queued or hashed into the cache — and
    /// surfaced to clients via [`CatalogInfo`] and [`ServerStats`].
    /// Independent of (and at most) the wire-level frame ceiling.
    pub max_payload: usize,
    /// Per-job wall-clock deadline, measured from the moment a worker
    /// starts the job. `None` = unbounded (trusted runners only).
    pub job_deadline: Option<Duration>,
    /// How long [`Server::shutdown`] lets in-flight jobs finish before
    /// cancelling them. Zero restores immediate-cancel shutdown.
    pub drain_timeout: Duration,
    /// Result-cache entry ceiling (LRU-evicted past it); at least 1.
    pub cache_max_entries: usize,
    /// Result-cache byte budget over stored payload + result bytes;
    /// entries larger than the whole budget are never cached.
    pub cache_max_bytes: usize,
    /// Telemetry sink for `server.jobs.*` counters and per-job spans.
    pub recorder: Recorder,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_payload: 16 << 20,
            job_deadline: None,
            drain_timeout: Duration::from_secs(5),
            cache_max_entries: 256,
            cache_max_bytes: 64 << 20,
            recorder: Recorder::disabled(),
        }
    }
}

/// One tracked job.
struct Job {
    /// The submission payload; taken by the worker that runs it.
    payload: Vec<u8>,
    hash: u64,
    state: JobState,
    cancel: CancelToken,
    outcome: Option<JobOutcome>,
    cached: bool,
    /// When a worker must finish this job (armed when it starts).
    deadline_at: Option<Instant>,
}

/// One cached result: the submission payload (kept to byte-verify hits,
/// so hash collisions degrade to misses), the result bytes replayed on a
/// hit, and the LRU stamp of the last touch.
struct CacheEntry {
    payload: Vec<u8>,
    result: Vec<u8>,
    stamp: u64,
}

impl CacheEntry {
    fn bytes(&self) -> usize {
        self.payload.len() + self.result.len()
    }
}

/// Mutex-guarded server state.
struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    cache: HashMap<u64, CacheEntry>,
    /// Sum of `CacheEntry::bytes` over `cache` — the eviction budget.
    cache_bytes: usize,
    /// Monotone LRU clock; bumped on every cache touch.
    cache_clock: u64,
    next_id: u64,
}

/// Lock-free counter block behind [`ServerStats`].
#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    cache_hits: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
    deadline_exceeded: AtomicU64,
    cache_evictions: AtomicU64,
    cache_bytes: AtomicU64,
    workers_respawned: AtomicU64,
}

impl StatCells {
    fn snapshot(&self, max_payload: usize) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_bytes: self.cache_bytes.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            max_payload: max_payload as u64,
        }
    }
}

struct Shared<R: JobRunner> {
    runner: R,
    inner: Mutex<Inner>,
    /// Wakes workers when the queue grows (and on shutdown).
    work_cv: Condvar,
    /// Wakes result waiters when any job finalizes (and on shutdown).
    done_cv: Condvar,
    stats: StatCells,
    rec: Recorder,
    /// Admission closed; in-flight jobs may still drain.
    draining: AtomicBool,
    /// Hard stop: workers and the supervisor exit at their next
    /// checkpoint.
    shutdown: AtomicBool,
    queue_capacity: usize,
    max_payload: usize,
    job_deadline: Option<Duration>,
    cache_max_entries: usize,
    cache_max_bytes: usize,
    /// Worker slot table the supervisor watches: `slots[wid]` holds the
    /// join handle of the thread currently playing worker `wid`.
    slots: Mutex<Vec<Option<JoinHandle<()>>>>,
}

/// Poison-tolerant lock: a panicking connection handler must not take
/// the whole server down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Renders a caught panic payload for [`JobError::Panicked`].
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<R: JobRunner> Shared<R> {
    /// Finalizes `id` under the lock: state, outcome, stats, counters,
    /// cache insertion for successes, and the completion broadcast.
    /// A job that already has an outcome is left untouched — the
    /// deadline watchdog and the worker may both report the same job,
    /// and the first result wins.
    fn finalize(&self, inner: &mut Inner, id: u64, result: Result<Vec<u8>, JobError>) {
        let Some(job) = inner.jobs.get_mut(&id) else {
            return;
        };
        if job.outcome.is_some() {
            return;
        }
        match result {
            Ok(bytes) => {
                job.state = JobState::Done;
                job.outcome = Some(JobOutcome::Done { payload: bytes.clone() });
                let hash = job.hash;
                let payload = std::mem::take(&mut job.payload);
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.completed", 1);
                self.cache_insert(inner, hash, payload, bytes);
            }
            Err(JobError::Cancelled) => {
                job.state = JobState::Cancelled;
                job.outcome = Some(JobOutcome::Cancelled);
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.cancelled", 1);
            }
            Err(e @ (JobError::Invalid { .. } | JobError::Failed { .. })) => {
                job.state = JobState::Failed;
                job.outcome = Some(JobOutcome::Failed { reason: e.to_string() });
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.failed", 1);
            }
            Err(e @ JobError::Panicked { .. }) => {
                job.state = JobState::Failed;
                job.outcome = Some(JobOutcome::Failed { reason: e.to_string() });
                self.stats.panicked.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.panicked", 1);
            }
            Err(e @ JobError::DeadlineExceeded { .. }) => {
                job.state = JobState::Failed;
                job.outcome = Some(JobOutcome::Failed { reason: e.to_string() });
                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                self.rec.add("server.jobs.deadline_exceeded", 1);
            }
        }
        self.done_cv.notify_all();
    }

    /// Inserts a successful result into the bounded cache, evicting
    /// least-recently-used entries until both the entry-count and the
    /// byte budget hold. An entry larger than the whole byte budget is
    /// simply not cached.
    fn cache_insert(&self, inner: &mut Inner, hash: u64, payload: Vec<u8>, result: Vec<u8>) {
        let entry_bytes = payload.len() + result.len();
        if entry_bytes > self.cache_max_bytes || inner.cache.contains_key(&hash) {
            return;
        }
        while !inner.cache.is_empty()
            && (inner.cache.len() >= self.cache_max_entries
                || inner.cache_bytes + entry_bytes > self.cache_max_bytes)
        {
            let Some((&victim, _)) = inner.cache.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            if let Some(evicted) = inner.cache.remove(&victim) {
                inner.cache_bytes -= evicted.bytes();
            }
            self.stats.cache_evictions.fetch_add(1, Ordering::Relaxed);
            self.rec.add("server.cache.evictions", 1);
        }
        inner.cache_clock += 1;
        let stamp = inner.cache_clock;
        inner.cache.insert(hash, CacheEntry { payload, result, stamp });
        inner.cache_bytes += entry_bytes;
        self.stats.cache_bytes.store(inner.cache_bytes as u64, Ordering::Relaxed);
        // Histogram sample: the byte occupancy over time (counters are
        // monotone, so the gauge lives in ServerStats and this
        // distribution backs `server.cache.bytes` in the summary).
        self.rec.record("server.cache.bytes", inner.cache_bytes as u64);
    }

    /// Counts and rejects one refused submission.
    fn reject(&self, ticket: u32, reason: String) -> JobMsg {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        self.rec.add("server.jobs.rejected", 1);
        JobMsg::Rejected { ticket, reason }
    }
}

/// A running job server: accept loop + supervised worker pool. Bind
/// with [`Server::start`], stop with [`Server::shutdown`] (also called
/// on drop).
pub struct Server<R: JobRunner> {
    addr: SocketAddr,
    /// Kept so shutdown can flip the listener nonblocking — the
    /// belt-and-braces half of unblocking an accept loop that is parked
    /// in `accept()` (the nudge connection is the other half).
    listener: TcpListener,
    drain_timeout: Duration,
    shared: Arc<Shared<R>>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl<R: JobRunner> Server<R> {
    /// Binds the listener, spawns the supervised worker pool, and
    /// starts accepting clients.
    pub fn start(runner: R, cfg: &ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&cfg.bind)
            .map_err(|e| ServerError::Io { what: "bind job listener", detail: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io { what: "job listener address", detail: e.to_string() })?;
        let accept_listener = listener
            .try_clone()
            .map_err(|e| ServerError::Io { what: "clone job listener", detail: e.to_string() })?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            runner,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                cache: HashMap::new(),
                cache_bytes: 0,
                cache_clock: 0,
                next_id: 1,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            stats: StatCells::default(),
            rec: cfg.recorder.clone(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            queue_capacity: cfg.queue_capacity.max(1),
            max_payload: cfg.max_payload,
            job_deadline: cfg.job_deadline,
            cache_max_entries: cfg.cache_max_entries.max(1),
            cache_max_bytes: cfg.cache_max_bytes,
            slots: Mutex::new(Vec::new()),
        });

        {
            let mut slots = lock(&shared.slots);
            for wid in 0..workers {
                slots.push(Some(spawn_worker(&shared, wid)));
            }
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared))
        };

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            accept_loop(&accept_listener, &accept_shared);
        });

        Ok(Self {
            addr,
            listener,
            drain_timeout: cfg.drain_timeout,
            shared,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound listener address (resolve `127.0.0.1:0` to the real
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate job counters so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot(self.shared.max_payload)
    }

    /// Graceful drain shutdown: stop admitting immediately, let
    /// in-flight jobs finish within [`ServerConfig::drain_timeout`],
    /// cancel whatever remains, then join the pool (abandoning — but
    /// never waiting forever on — a worker wedged in a runner that
    /// ignores cancellation).
    pub fn shutdown(&mut self) {
        if self.shared.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake idle workers: with admission closed they drain the queue
        // and exit once it is empty.
        self.shared.work_cv.notify_all();

        // Drain phase: wait for every job to finalize, up to the
        // configured drain budget.
        let deadline = Instant::now() + self.drain_timeout;
        {
            let mut inner = lock(&self.shared.inner);
            while inner.jobs.values().any(|j| j.outcome.is_none()) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = self
                    .shared
                    .done_cv
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                inner = guard;
            }
            // Whatever is still pending gets cancelled: queued jobs
            // finalize here, running ones at their runner's next
            // cancellation checkpoint.
            let pending: Vec<u64> =
                inner.jobs.iter().filter(|(_, j)| j.outcome.is_none()).map(|(&id, _)| id).collect();
            for id in pending {
                let queued = match inner.jobs.get(&id) {
                    Some(job) => {
                        job.cancel.cancel();
                        job.state == JobState::Queued
                    }
                    None => false,
                };
                if queued {
                    self.shared.finalize(&mut inner, id, Err(JobError::Cancelled));
                }
            }
            inner.queue.clear();
        }

        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();

        // Unblock the accept loop: flip the listener nonblocking (so a
        // racing `accept()` that misses the nudge still returns
        // `WouldBlock` next time) and poke it with a loopback
        // connection. An unspecified bind address (0.0.0.0/[::]) is not
        // connectable, so the nudge targets the loopback of the same
        // family.
        self.listener.set_nonblocking(true).ok();
        let mut nudge = self.addr;
        if nudge.ip().is_unspecified() {
            nudge.set_ip(match nudge.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect_timeout(&nudge, Duration::from_millis(250)).ok();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        if let Some(h) = self.supervisor.take() {
            h.join().ok();
        }

        // Join the workers, but never forever: a runner that ignores
        // its cancel token would otherwise hang shutdown, so after a
        // bounded grace the wedged thread is abandoned (the process
        // teardown reaps it) and counted.
        let grace = Instant::now() + self.drain_timeout.max(Duration::from_millis(200));
        let mut slots = lock(&self.shared.slots);
        while Instant::now() < grace && slots.iter().flatten().any(|handle| !handle.is_finished()) {
            std::thread::sleep(Duration::from_millis(2));
        }
        for slot in slots.iter_mut() {
            if let Some(handle) = slot.take() {
                if handle.is_finished() {
                    handle.join().ok();
                } else {
                    self.shared.rec.add("server.workers.abandoned", 1);
                }
            }
        }
    }
}

impl<R: JobRunner> Drop for Server<R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one worker thread into slot `wid`.
fn spawn_worker<R: JobRunner>(shared: &Arc<Shared<R>>, wid: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared, wid))
}

/// The supervisor: respawns worker threads that died (a panicking job
/// retires its worker so the unwound workspace is never reused) and
/// enforces per-job deadlines. One thread, checkpointed every few
/// milliseconds, exits on shutdown.
fn supervisor_loop<R: JobRunner>(shared: &Arc<Shared<R>>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Respawn dead workers — but not while winding down, when
        // worker exit is the expected end state.
        if !shared.draining.load(Ordering::Acquire) {
            let mut slots = lock(&shared.slots);
            for wid in 0..slots.len() {
                let died = slots[wid].as_ref().is_some_and(|h| h.is_finished());
                if died {
                    if let Some(h) = slots[wid].take() {
                        h.join().ok();
                    }
                    slots[wid] = Some(spawn_worker(shared, wid));
                    shared.stats.workers_respawned.fetch_add(1, Ordering::Relaxed);
                    shared.rec.add("server.workers.respawned", 1);
                }
            }
        }
        // Deadline watchdog: an overrunning job is cancelled and
        // force-finalized as a typed deadline failure, unblocking its
        // `Result` waiters immediately. If the runner later returns
        // anyway, `finalize` ignores the stale result.
        if let Some(deadline) = shared.job_deadline {
            let limit_ms = deadline.as_millis() as u64;
            let now = Instant::now();
            let mut inner = lock(&shared.inner);
            let overdue: Vec<u64> = inner
                .jobs
                .iter()
                .filter(|(_, j)| {
                    j.outcome.is_none()
                        && j.state == JobState::Running
                        && j.deadline_at.is_some_and(|at| now >= at)
                })
                .map(|(&id, _)| id)
                .collect();
            for id in overdue {
                if let Some(job) = inner.jobs.get(&id) {
                    job.cancel.cancel();
                }
                shared.finalize(&mut inner, id, Err(JobError::DeadlineExceeded { limit_ms }));
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One worker thread: owns a reusable workspace, drains the queue until
/// shutdown. A caught panic finalizes the job and retires the thread
/// (its workspace may be corrupt); the supervisor respawns the slot.
fn worker_loop<R: JobRunner>(shared: &Shared<R>, wid: usize) {
    let mut ws = shared.runner.workspace();
    loop {
        let (id, payload, ctx) = {
            let mut inner = lock(&shared.inner);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Skip entries finalized while queued (client cancel).
                let next = loop {
                    match inner.queue.pop_front() {
                        None => break None,
                        Some(id) => {
                            if inner.jobs.get(&id).is_some_and(|j| j.state == JobState::Queued) {
                                break Some(id);
                            }
                        }
                    }
                };
                if let Some(id) = next {
                    let Some(job) = inner.jobs.get_mut(&id) else {
                        continue;
                    };
                    job.state = JobState::Running;
                    job.deadline_at = shared.job_deadline.map(|d| Instant::now() + d);
                    let ctx =
                        JobContext { cancel: job.cancel.clone(), deadline: shared.job_deadline };
                    break (id, job.payload.clone(), ctx);
                }
                // Admission is closed and the queue is dry: this worker
                // is done.
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                inner = shared.work_cv.wait(inner).unwrap_or_else(|p| p.into_inner());
            }
        };

        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut span = shared.rec.span("server.job").attr("job", id).attr("worker", wid);
            if ctx.cancel.is_cancelled() {
                // Cancelled between dequeue and start: never run it.
                Err(JobError::Cancelled)
            } else {
                let r = shared.runner.run(&payload, &ctx, &mut ws);
                span.set_attr(
                    "outcome",
                    match &r {
                        Ok(_) => "done",
                        Err(JobError::Cancelled) => "cancelled",
                        Err(_) => "failed",
                    },
                );
                r
            }
        }));
        match run {
            Ok(result) => {
                let mut inner = lock(&shared.inner);
                shared.finalize(&mut inner, id, result);
            }
            Err(panic) => {
                let reason = panic_reason(panic.as_ref());
                {
                    let mut inner = lock(&shared.inner);
                    shared.finalize(&mut inner, id, Err(JobError::Panicked { reason }));
                }
                // The unwound workspace cannot be trusted: retire this
                // thread and let the supervisor respawn the slot with a
                // fresh one.
                return;
            }
        }
    }
}

/// The accept loop: hands each connection to a detached handler. Exits
/// when shutdown is flagged — woken by the nudge connection, or by the
/// listener having been flipped nonblocking.
fn accept_loop<R: JobRunner>(listener: &TcpListener, shared: &Arc<Shared<R>>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                stream.set_nodelay(true).ok();
                let shared = Arc::clone(shared);
                // Handlers are detached: they exit on client EOF or
                // corrupt frames, and the process teardown reaps any
                // that are still blocked on an open client socket.
                std::thread::spawn(move || serve_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Nonblocking only happens on the way down; be gentle.
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// One client connection: a strict request/response loop. EOF or a
/// corrupt frame ends the connection; the jobs it submitted live on.
/// Corrupt frames are counted (`server.recv_corrupt`) and dropped —
/// never a panic, never a dead server.
fn serve_connection<R: JobRunner>(shared: &Shared<R>, mut stream: TcpStream) {
    let mut payload = Vec::new();
    let mut buf = Vec::new();
    loop {
        let msg = match read_frame::<JobMsg>(&mut stream, &mut payload) {
            Ok((m, _, _)) => m,
            Err(ReadError::Eof) => return,
            Err(ReadError::Corrupt(_) | ReadError::Fatal(_)) => {
                shared.rec.add("server.recv_corrupt", 1);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let reply = match msg {
            JobMsg::Submit { ticket, payload } => submit(shared, ticket, payload),
            JobMsg::Status { job_id } => {
                let inner = lock(&shared.inner);
                let state = inner.jobs.get(&job_id).map_or(JobState::Failed, |j| j.state);
                JobMsg::StatusIs { job_id, state }
            }
            JobMsg::Cancel { job_id } => cancel(shared, job_id),
            JobMsg::Result { job_id } => await_result(shared, job_id),
            JobMsg::Stats => JobMsg::StatsIs(shared.stats.snapshot(shared.max_payload)),
            JobMsg::Catalog => JobMsg::CatalogIs {
                entries: shared.runner.catalog(),
                max_payload: shared.max_payload as u64,
            },
            // A reply frame arriving as a request is a protocol
            // violation; drop the connection.
            _ => return,
        };
        if write_frame(&mut stream, &reply, 0, &mut buf).is_err() {
            return;
        }
    }
}

/// Admission: size check, cache lookup, bounded queue, accept/reject.
fn submit<R: JobRunner>(shared: &Shared<R>, ticket: u32, payload: Vec<u8>) -> JobMsg {
    if shared.draining.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
        return shared.reject(ticket, "server shutting down".to_string());
    }
    // Admission-time size ceiling: rejected before the payload is
    // hashed, queued, or cached — the wire-level MAX_PAYLOAD only
    // guards frame decoding, this guards worker memory.
    if payload.len() > shared.max_payload {
        return shared.reject(
            ticket,
            format!(
                "payload of {} bytes exceeds the server max_payload of {} bytes",
                payload.len(),
                shared.max_payload
            ),
        );
    }
    let hash = content_hash(&payload);
    let mut inner = lock(&shared.inner);
    let id = inner.next_id;

    // Content-hash cache: a byte-identical resubmission is answered
    // with the exact result bytes of the first run — no worker, no
    // recomputation, bit-identical totals. A hit refreshes the entry's
    // LRU stamp.
    inner.cache_clock += 1;
    let clock = inner.cache_clock;
    let hit = inner.cache.get_mut(&hash).filter(|e| e.payload == payload).map(|e| {
        e.stamp = clock;
        e.result.clone()
    });
    if let Some(result) = hit {
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            Job {
                payload: Vec::new(),
                hash,
                state: JobState::Done,
                cancel: CancelToken::new(),
                outcome: Some(JobOutcome::Done { payload: result }),
                cached: true,
                deadline_at: None,
            },
        );
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared.rec.add("server.jobs.submitted", 1);
        shared.rec.add("server.jobs.cache_hits", 1);
        shared.done_cv.notify_all();
        return JobMsg::Accepted { ticket, job_id: id };
    }

    if inner.queue.len() >= shared.queue_capacity {
        drop(inner);
        return shared.reject(ticket, "admission queue full".to_string());
    }
    inner.next_id += 1;
    inner.jobs.insert(
        id,
        Job {
            payload,
            hash,
            state: JobState::Queued,
            cancel: CancelToken::new(),
            outcome: None,
            cached: false,
            deadline_at: None,
        },
    );
    inner.queue.push_back(id);
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    shared.rec.add("server.jobs.submitted", 1);
    shared.work_cv.notify_one();
    JobMsg::Accepted { ticket, job_id: id }
}

/// Cancellation: a queued job finalizes immediately; a running one is
/// asked to stop via its token and finalizes when the runner yields.
fn cancel<R: JobRunner>(shared: &Shared<R>, job_id: u64) -> JobMsg {
    let mut inner = lock(&shared.inner);
    let Some(job) = inner.jobs.get(&job_id) else {
        return JobMsg::StatusIs { job_id, state: JobState::Failed };
    };
    job.cancel.cancel();
    if job.state == JobState::Queued {
        shared.finalize(&mut inner, job_id, Err(JobError::Cancelled));
    }
    let state = inner.jobs.get(&job_id).map_or(JobState::Failed, |j| j.state);
    JobMsg::StatusIs { job_id, state }
}

/// Blocks until the job finalizes (or the server shuts down). With a
/// server-side job deadline, "finalizes" is bounded: the watchdog
/// force-finalizes overrunners, so this wait can never outlive the
/// queue backlog plus one deadline.
fn await_result<R: JobRunner>(shared: &Shared<R>, job_id: u64) -> JobMsg {
    let mut inner = lock(&shared.inner);
    loop {
        match inner.jobs.get(&job_id) {
            None => {
                return JobMsg::ResultIs {
                    job_id,
                    outcome: JobOutcome::Failed { reason: "unknown job".to_string() },
                    cached: false,
                };
            }
            Some(job) => {
                if let Some(outcome) = &job.outcome {
                    return JobMsg::ResultIs {
                        job_id,
                        outcome: outcome.clone(),
                        cached: job.cached,
                    };
                }
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return JobMsg::ResultIs {
                job_id,
                outcome: JobOutcome::Failed { reason: "server shutting down".to_string() },
                cached: false,
            };
        }
        inner = shared.done_cv.wait(inner).unwrap_or_else(|p| p.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Test runner: payload[0] selects the behavior. 0 = echo the rest
    /// reversed, 1 = spin until cancelled (checkpoint every 1 ms),
    /// 2 = fail, 3 = panic, 4 = sleep 300 ms ignoring the cancel token
    /// (a "wedged" runner for the deadline watchdog).
    struct TestRunner;

    impl JobRunner for TestRunner {
        type Workspace = Vec<u8>;

        fn workspace(&self) -> Vec<u8> {
            Vec::new()
        }

        fn run(
            &self,
            payload: &[u8],
            ctx: &JobContext,
            ws: &mut Vec<u8>,
        ) -> Result<Vec<u8>, JobError> {
            match payload.first() {
                Some(0) => {
                    ws.clear();
                    ws.extend(payload[1..].iter().rev());
                    Ok(ws.clone())
                }
                Some(1) => loop {
                    if ctx.cancel.is_cancelled() {
                        return Err(JobError::Cancelled);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                },
                Some(2) => Err(JobError::Failed { reason: "scripted failure".to_string() }),
                Some(3) => panic!("scripted panic"),
                Some(4) => {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(vec![42])
                }
                _ => Err(JobError::Invalid { reason: "empty payload".to_string() }),
            }
        }

        fn catalog(&self) -> Vec<CatalogEntry> {
            vec![CatalogEntry { name: "echo".to_string(), summary: "reverses bytes".to_string() }]
        }
    }

    fn start_with(cfg: ServerConfig) -> (Server<TestRunner>, Client) {
        let server = Server::start(TestRunner, &cfg).expect("server starts");
        let client = Client::connect(&server.addr().to_string()).expect("client connects");
        (server, client)
    }

    fn start() -> (Server<TestRunner>, Client) {
        start_with(ServerConfig { workers: 1, ..ServerConfig::default() })
    }

    #[test]
    fn echo_job_roundtrips_and_is_cached_on_resubmit() {
        let (server, mut client) = start();
        let job = client.submit(&[0, 1, 2, 3]).expect("submit");
        let (outcome, cached) = client.result(job).expect("result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![3, 2, 1] });
        assert!(!cached);

        let again = client.submit(&[0, 1, 2, 3]).expect("resubmit");
        assert_ne!(again, job, "every submission is its own job");
        let (outcome2, cached2) = client.result(again).expect("cached result");
        assert_eq!(outcome2, JobOutcome::Done { payload: vec![3, 2, 1] });
        assert!(cached2, "byte-identical resubmission must hit the cache");

        let stats = client.stats().expect("stats");
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(server.stats(), stats);
    }

    #[test]
    fn queued_cancel_is_deterministic_and_pool_stays_serviceable() {
        let (_server, mut client) = start();
        // One worker: occupy it, then cancel a job that is still queued.
        let blocker = client.submit(&[1]).expect("submit blocker");
        let queued = client.submit(&[0, 9]).expect("submit queued");
        let state = client.cancel(queued).expect("cancel");
        assert_eq!(state, JobState::Cancelled, "a queued job cancels synchronously");
        let (outcome, _) = client.result(queued).expect("result");
        assert_eq!(outcome, JobOutcome::Cancelled);

        // Now cancel the running blocker; its token checkpoint fires.
        client.cancel(blocker).expect("cancel blocker");
        let (outcome, _) = client.result(blocker).expect("blocker result");
        assert_eq!(outcome, JobOutcome::Cancelled);

        // The single worker must still serve new jobs.
        let after = client.submit(&[0, 7]).expect("submit after cancels");
        let (outcome, _) = client.result(after).expect("post-cancel result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![7] });
        let stats = client.stats().expect("stats");
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn failures_and_unknown_jobs_are_reported_not_fatal() {
        let (_server, mut client) = start();
        let job = client.submit(&[2]).expect("submit");
        let (outcome, _) = client.result(job).expect("result");
        assert!(
            matches!(outcome, JobOutcome::Failed { ref reason } if reason.contains("scripted"))
        );
        assert_eq!(client.status(99_999).expect("status"), JobState::Failed);
        let (outcome, _) = client.result(99_999).expect("unknown result");
        assert!(matches!(outcome, JobOutcome::Failed { .. }));
        // Failed results are not cached.
        let again = client.submit(&[2]).expect("resubmit failure");
        let (outcome, cached) = client.result(again).expect("result");
        assert!(matches!(outcome, JobOutcome::Failed { .. }));
        assert!(!cached);
    }

    #[test]
    fn catalog_is_advertised_with_the_payload_limit() {
        let (_server, mut client) =
            start_with(ServerConfig { workers: 1, max_payload: 4096, ..ServerConfig::default() });
        let info = client.catalog().expect("catalog");
        assert_eq!(info.entries.len(), 1);
        assert_eq!(info.entries[0].name, "echo");
        assert_eq!(info.max_payload, 4096);
    }

    #[test]
    fn content_hash_is_fnv1a_and_order_sensitive() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn shutdown_finalizes_queued_jobs_and_joins() {
        let (mut server, mut client) = start();
        let blocker = client.submit(&[1]).expect("submit blocker");
        let queued = client.submit(&[0, 1]).expect("submit queued");
        // Cancel the blocker so the worker can exit, then shut down.
        client.cancel(blocker).expect("cancel blocker");
        let (outcome, _) = client.result(blocker).expect("blocker result");
        assert_eq!(outcome, JobOutcome::Cancelled);
        server.shutdown();
        let stats = server.stats();
        assert!(stats.cancelled >= 1, "shutdown cancels what never ran: {stats:?}");
        let _ = queued;
    }

    #[test]
    fn a_panicking_job_finalizes_typed_and_the_worker_is_respawned() {
        let (server, mut client) = start();
        let job = client.submit(&[3]).expect("submit panicking job");
        let (outcome, _) = client.result(job).expect("panic result arrives");
        assert!(
            matches!(outcome, JobOutcome::Failed { ref reason } if reason.contains("panic")),
            "panic must surface as a typed failure, got {outcome:?}"
        );

        // The supervisor replaces the retired worker; pool capacity is
        // invariant, so a fresh job still completes.
        let after = client.submit(&[0, 5, 6]).expect("submit after panic");
        let (outcome, _) = client.result(after).expect("post-panic result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![6, 5] });

        // Respawn is asynchronous; the completed job above proves a
        // live worker, now wait for the counter to confirm it was a
        // fresh one.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().workers_respawned == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = server.stats();
        assert_eq!(stats.panicked, 1, "{stats:?}");
        assert!(stats.workers_respawned >= 1, "supervisor must respawn the slot: {stats:?}");
    }

    #[test]
    fn deadline_watchdog_bounds_wedged_jobs_and_keeps_the_pool_alive() {
        let (server, mut client) = start_with(ServerConfig {
            workers: 1,
            job_deadline: Some(Duration::from_millis(40)),
            ..ServerConfig::default()
        });
        // Payload [4] sleeps 300 ms and never polls the cancel token —
        // the watchdog must unblock the client long before that.
        let t0 = Instant::now();
        let job = client.submit(&[4]).expect("submit wedged job");
        let (outcome, _) = client.result(job).expect("deadline result arrives");
        let waited = t0.elapsed();
        assert!(
            matches!(outcome, JobOutcome::Failed { ref reason } if reason.contains("deadline")),
            "overrun must surface as a typed deadline failure, got {outcome:?}"
        );
        assert!(
            waited < Duration::from_millis(280),
            "the client waited {waited:?}, past the watchdog bound"
        );

        // A cooperative job (well under the deadline) still completes.
        let after = client.submit(&[0, 1]).expect("submit after deadline");
        let (outcome, _) = client.result(after).expect("post-deadline result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![1] });
        let stats = server.stats();
        assert_eq!(stats.deadline_exceeded, 1, "{stats:?}");
    }

    #[test]
    fn cache_is_bounded_by_bytes_and_entries_with_lru_eviction() {
        let budget = 256;
        let (server, mut client) = start_with(ServerConfig {
            workers: 1,
            cache_max_entries: 8,
            cache_max_bytes: budget,
            ..ServerConfig::default()
        });
        // 100 distinct jobs sweep far more bytes than the budget.
        for i in 0..100u8 {
            let job = client.submit(&[0, i, i, i, i, i, i, i]).expect("submit sweep job");
            let (outcome, _) = client.result(job).expect("sweep result");
            assert!(matches!(outcome, JobOutcome::Done { .. }));
            let stats = server.stats();
            assert!(
                stats.cache_bytes <= budget as u64,
                "cache bytes {} exceed the budget {budget} after job {i}",
                stats.cache_bytes
            );
        }
        let stats = server.stats();
        assert!(stats.cache_evictions > 0, "a 100-job sweep must evict: {stats:?}");
        assert!(stats.cache_bytes > 0 && stats.cache_bytes <= budget as u64, "{stats:?}");

        // The most recent payload is still resident (LRU keeps the
        // newest), an early one was evicted and recomputes.
        let (_, cached_recent) = {
            let job = client.submit(&[0, 99, 99, 99, 99, 99, 99, 99]).expect("resubmit newest");
            let (o, c) = client.result(job).expect("newest result");
            (o, c)
        };
        assert!(cached_recent, "the newest entry must survive eviction");
        let job = client.submit(&[0, 0, 0, 0, 0, 0, 0, 0]).expect("resubmit oldest");
        let (_, cached_old) = client.result(job).expect("oldest result");
        assert!(!cached_old, "the oldest entry must have been evicted");
    }

    #[test]
    fn oversized_submissions_are_rejected_at_admission() {
        let (server, mut client) =
            start_with(ServerConfig { workers: 1, max_payload: 8, ..ServerConfig::default() });
        let err = client.submit(&[0; 16]).expect_err("oversized submit must be rejected");
        assert!(
            matches!(err, ServerError::Rejected { ref reason } if reason.contains("max_payload")),
            "got {err:?}"
        );
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 0, "a rejected payload is never admitted");
        assert_eq!(stats.max_payload, 8, "the limit is surfaced in stats");
        // At the limit is fine.
        let job = client.submit(&[0, 1, 2, 3, 4, 5, 6, 7]).expect("limit-sized submit");
        let (outcome, _) = client.result(job).expect("result");
        assert!(matches!(outcome, JobOutcome::Done { .. }));
    }

    #[test]
    fn drain_shutdown_finishes_inflight_work() {
        let rec = Recorder::enabled();
        let (mut server, mut client) = start_with(ServerConfig {
            workers: 1,
            drain_timeout: Duration::from_secs(10),
            recorder: rec.clone(),
            ..ServerConfig::default()
        });
        // Several quick jobs: the drain must let all of them finish.
        let jobs: Vec<u64> =
            (0..4u8).map(|i| client.submit(&[0, i]).expect("submit drain job")).collect();
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.completed, 4, "drain must finish queued work: {stats:?}");
        assert_eq!(stats.cancelled, 0, "{stats:?}");
        let _ = jobs;
    }

    #[test]
    fn zero_drain_shutdown_cancels_immediately() {
        let (mut server, mut client) = start_with(ServerConfig {
            workers: 1,
            drain_timeout: Duration::ZERO,
            ..ServerConfig::default()
        });
        let blocker = client.submit(&[1]).expect("submit blocker");
        let queued = client.submit(&[0, 1]).expect("submit queued");
        server.shutdown();
        let stats = server.stats();
        assert!(stats.cancelled >= 1, "zero drain cancels pending work: {stats:?}");
        let _ = (blocker, queued);
    }

    #[test]
    fn corrupt_frames_are_counted_and_dropped_not_fatal() {
        use std::io::Write;
        let rec = Recorder::enabled();
        let (server, mut client) = start_with(ServerConfig {
            workers: 1,
            recorder: rec.clone(),
            ..ServerConfig::default()
        });
        // A raw connection spews garbage: the handler drops it, counts
        // it, and the server keeps serving.
        let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
        raw.write_all(&[0xFF; 64]).expect("write garbage");
        drop(raw);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rec.counter_value("server.recv_corrupt") == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(rec.counter_value("server.recv_corrupt") >= 1, "corruption must be counted");
        let job = client.submit(&[0, 1, 2]).expect("submit after garbage");
        let (outcome, _) = client.result(job).expect("result");
        assert_eq!(outcome, JobOutcome::Done { payload: vec![2, 1] });
    }
}
