//! Blocking request/response client for the job server.
//!
//! One [`Client`] owns one connection and speaks the strict
//! request/response discipline the server enforces: every call writes
//! one [`JobMsg`] request and reads exactly one reply. [`Client::result`]
//! blocks server-side until the job finalizes, so callers get
//! completion without polling.

use crate::protocol::{CatalogEntry, JobMsg, JobOutcome, JobState, ServerStats};
use crate::ServerError;
use cip_transport::frame::{read_frame, write_frame, ReadError};
use std::net::TcpStream;

/// One connection to a job server.
pub struct Client {
    stream: TcpStream,
    ticket: u32,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

impl Client {
    /// Connects to a server at `addr` (e.g. `127.0.0.1:45123`).
    pub fn connect(addr: &str) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr).map_err(|e| ServerError::Io {
            what: "connect to job server",
            detail: e.to_string(),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream, ticket: 0, wbuf: Vec::new(), rbuf: Vec::new() })
    }

    fn call(&mut self, msg: &JobMsg) -> Result<JobMsg, ServerError> {
        write_frame(&mut self.stream, msg, 0, &mut self.wbuf)
            .map_err(|e| ServerError::Io { what: "send request", detail: e.to_string() })?;
        match read_frame::<JobMsg>(&mut self.stream, &mut self.rbuf) {
            Ok((reply, _, _)) => Ok(reply),
            Err(ReadError::Eof) => Err(ServerError::Protocol {
                what: "server closed the connection mid-request".to_string(),
            }),
            Err(ReadError::Corrupt(e) | ReadError::Fatal(e)) => Err(ServerError::Wire(e)),
            Err(ReadError::Io(e)) => {
                Err(ServerError::Io { what: "read reply", detail: e.to_string() })
            }
        }
    }

    /// Submits a job payload; returns the server-assigned job id.
    pub fn submit(&mut self, payload: &[u8]) -> Result<u64, ServerError> {
        self.ticket = self.ticket.wrapping_add(1);
        let ticket = self.ticket;
        match self.call(&JobMsg::Submit { ticket, payload: payload.to_vec() })? {
            JobMsg::Accepted { ticket: t, job_id } if t == ticket => Ok(job_id),
            JobMsg::Rejected { ticket: t, reason } if t == ticket => {
                Err(ServerError::Rejected { reason })
            }
            other => Err(unexpected("Accepted/Rejected", &other)),
        }
    }

    /// The job's current state (non-blocking).
    pub fn status(&mut self, job_id: u64) -> Result<JobState, ServerError> {
        match self.call(&JobMsg::Status { job_id })? {
            JobMsg::StatusIs { job_id: id, state } if id == job_id => Ok(state),
            other => Err(unexpected("StatusIs", &other)),
        }
    }

    /// Requests cancellation; returns the state after the request took
    /// effect (a queued job reports `Cancelled` immediately, a running
    /// one usually still reports `Running` until its next checkpoint).
    pub fn cancel(&mut self, job_id: u64) -> Result<JobState, ServerError> {
        match self.call(&JobMsg::Cancel { job_id })? {
            JobMsg::StatusIs { job_id: id, state } if id == job_id => Ok(state),
            other => Err(unexpected("StatusIs", &other)),
        }
    }

    /// Blocks until the job finalizes; returns its outcome and whether
    /// it was served from the content-hash cache.
    pub fn result(&mut self, job_id: u64) -> Result<(JobOutcome, bool), ServerError> {
        match self.call(&JobMsg::Result { job_id })? {
            JobMsg::ResultIs { job_id: id, outcome, cached } if id == job_id => {
                Ok((outcome, cached))
            }
            other => Err(unexpected("ResultIs", &other)),
        }
    }

    /// Aggregate server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ServerError> {
        match self.call(&JobMsg::Stats)? {
            JobMsg::StatsIs(stats) => Ok(stats),
            other => Err(unexpected("StatsIs", &other)),
        }
    }

    /// The workloads the server's runner advertises.
    pub fn catalog(&mut self) -> Result<Vec<CatalogEntry>, ServerError> {
        match self.call(&JobMsg::Catalog)? {
            JobMsg::CatalogIs { entries } => Ok(entries),
            other => Err(unexpected("CatalogIs", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &JobMsg) -> ServerError {
    ServerError::Protocol { what: format!("expected {wanted}, got {got:?}") }
}
