//! Blocking request/response client for the job server.
//!
//! One [`Client`] owns one connection and speaks the strict
//! request/response discipline the server enforces: every call writes
//! one [`JobMsg`] request and reads exactly one reply. [`Client::result`]
//! blocks server-side until the job finalizes, so callers get
//! completion without polling.
//!
//! # Timeouts and retries
//!
//! [`ClientConfig`] adds the resilience half: a connect timeout, an
//! optional socket read timeout (so a dead server surfaces as a typed
//! error instead of an eternal block), and a seeded deterministic retry
//! policy used by [`Client::run_job`] — exponential backoff with
//! SplitMix64 jitter, the same PRNG discipline as the executor's
//! `FaultPlan`. On a transient failure (connection refused/reset, a
//! read timeout, a corrupt reply) the client reconnects and resubmits
//! the same payload. Resubmission is idempotent by construction: jobs
//! are deterministic functions of their payload bytes, and the server's
//! content-hash cache replays an already-completed result bit-for-bit,
//! so a retry can duplicate *work* at worst, never *results*.
//! [`ServerError::Rejected`] is permanent and never retried.
//!
//! Sizing note: `read_timeout` bounds every reply, including the
//! server-side-blocking [`Client::result`] wait — set it comfortably
//! above the server's job deadline (plus expected queueing) or leave it
//! `None` and rely on the server's own deadline watchdog to unblock
//! waiters.

use crate::protocol::{CatalogInfo, JobMsg, JobOutcome, JobState, ServerStats};
use crate::ServerError;
use cip_runtime::fault::splitmix64;
use cip_transport::frame::{read_frame, write_frame, ReadError};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side resilience knobs. The default is the legacy behavior
/// plus a 5-second connect timeout: no read timeout, no retries.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long a dial may take before it fails typed.
    pub connect_timeout: Duration,
    /// Socket read timeout for every reply; `None` blocks indefinitely
    /// (the server's job deadline then bounds `result` waits).
    pub read_timeout: Option<Duration>,
    /// Extra attempts [`Client::run_job`] makes after the first one
    /// fails transiently. 0 = fail fast.
    pub retries: u32,
    /// Backoff before retry `n` is `min(backoff_max, backoff_base·2ⁿ)`
    /// plus deterministic jitter in `[0, backoff_base)`.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff term.
    pub backoff_max: Duration,
    /// Jitter seed: retry schedules are a pure function of
    /// `(seed, attempt)`, so chaos runs are reproducible.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl ClientConfig {
    /// The deterministic pause before retry attempt `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.backoff_max);
        let base_ms = self.backoff_base.as_millis() as u64;
        let jitter_ms =
            if base_ms == 0 { 0 } else { splitmix64(self.seed, u64::from(attempt)) % base_ms };
        exp + Duration::from_millis(jitter_ms)
    }
}

/// One connection to a job server (re-dialed transparently by
/// [`Client::run_job`] after transient failures).
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    ticket: u32,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

impl Client {
    /// Connects to a server at `addr` (e.g. `127.0.0.1:45123`) with the
    /// default [`ClientConfig`].
    pub fn connect(addr: &str) -> Result<Self, ServerError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts and retry policy. The first dial
    /// happens eagerly so an unreachable server fails here, not on the
    /// first call.
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> Result<Self, ServerError> {
        let mut client = Self {
            addr: addr.to_string(),
            cfg,
            stream: None,
            ticket: 0,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Dials the server if no live connection is held.
    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut addrs = self.addr.to_socket_addrs().map_err(|e| ServerError::Io {
            what: "resolve job server address",
            detail: e.to_string(),
        })?;
        let Some(sock_addr) = addrs.next() else {
            return Err(ServerError::Io {
                what: "resolve job server address",
                detail: format!("'{}' resolved to no address", self.addr),
            });
        };
        let stream =
            TcpStream::connect_timeout(&sock_addr, self.cfg.connect_timeout).map_err(|e| {
                ServerError::Io { what: "connect to job server", detail: e.to_string() }
            })?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.cfg.read_timeout).ok();
        self.stream = Some(stream);
        Ok(())
    }

    /// Drops the connection so the next call re-dials.
    fn disconnect(&mut self) {
        self.stream = None;
    }

    fn call(&mut self, msg: &JobMsg) -> Result<JobMsg, ServerError> {
        self.ensure_connected()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(ServerError::Protocol { what: "no connection after dial".to_string() });
        };
        let result = (|| {
            write_frame(stream, msg, 0, &mut self.wbuf)
                .map_err(|e| ServerError::Io { what: "send request", detail: e.to_string() })?;
            match read_frame::<JobMsg>(stream, &mut self.rbuf) {
                Ok((reply, _, _)) => Ok(reply),
                Err(ReadError::Eof) => Err(ServerError::Protocol {
                    what: "server closed the connection mid-request".to_string(),
                }),
                Err(ReadError::Corrupt(e) | ReadError::Fatal(e)) => Err(ServerError::Wire(e)),
                Err(ReadError::Io(e)) => {
                    Err(ServerError::Io { what: "read reply", detail: e.to_string() })
                }
            }
        })();
        // Any failed exchange poisons the request/response framing on
        // this connection: drop it so the next call starts clean.
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    /// Submits a job payload; returns the server-assigned job id.
    pub fn submit(&mut self, payload: &[u8]) -> Result<u64, ServerError> {
        self.ticket = self.ticket.wrapping_add(1);
        let ticket = self.ticket;
        match self.call(&JobMsg::Submit { ticket, payload: payload.to_vec() })? {
            JobMsg::Accepted { ticket: t, job_id } if t == ticket => Ok(job_id),
            JobMsg::Rejected { ticket: t, reason } if t == ticket => {
                Err(ServerError::Rejected { reason })
            }
            other => Err(unexpected("Accepted/Rejected", &other)),
        }
    }

    /// The job's current state (non-blocking).
    pub fn status(&mut self, job_id: u64) -> Result<JobState, ServerError> {
        match self.call(&JobMsg::Status { job_id })? {
            JobMsg::StatusIs { job_id: id, state } if id == job_id => Ok(state),
            other => Err(unexpected("StatusIs", &other)),
        }
    }

    /// Requests cancellation; returns the state after the request took
    /// effect (a queued job reports `Cancelled` immediately, a running
    /// one usually still reports `Running` until its next checkpoint).
    pub fn cancel(&mut self, job_id: u64) -> Result<JobState, ServerError> {
        match self.call(&JobMsg::Cancel { job_id })? {
            JobMsg::StatusIs { job_id: id, state } if id == job_id => Ok(state),
            other => Err(unexpected("StatusIs", &other)),
        }
    }

    /// Blocks until the job finalizes; returns its outcome and whether
    /// it was served from the content-hash cache.
    pub fn result(&mut self, job_id: u64) -> Result<(JobOutcome, bool), ServerError> {
        match self.call(&JobMsg::Result { job_id })? {
            JobMsg::ResultIs { job_id: id, outcome, cached } if id == job_id => {
                Ok((outcome, cached))
            }
            other => Err(unexpected("ResultIs", &other)),
        }
    }

    /// Aggregate server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ServerError> {
        match self.call(&JobMsg::Stats)? {
            JobMsg::StatsIs(stats) => Ok(stats),
            other => Err(unexpected("StatsIs", &other)),
        }
    }

    /// The workloads the server's runner advertises, plus its admission
    /// limits.
    pub fn catalog(&mut self) -> Result<CatalogInfo, ServerError> {
        match self.call(&JobMsg::Catalog)? {
            JobMsg::CatalogIs { entries, max_payload } => Ok(CatalogInfo { entries, max_payload }),
            other => Err(unexpected("CatalogIs", &other)),
        }
    }

    /// Submits `payload` and waits for its outcome, retrying the whole
    /// exchange (reconnect, resubmit, re-await) up to
    /// [`ClientConfig::retries`] times on transient failures. Safe to
    /// retry because job execution is a deterministic function of the
    /// payload and completed results replay from the content-hash cache
    /// bit-identically; a [`ServerError::Rejected`] is returned
    /// immediately — admission refusals are policy, not weather.
    pub fn run_job(&mut self, payload: &[u8]) -> Result<(JobOutcome, bool), ServerError> {
        let attempts = self.cfg.retries.saturating_add(1);
        let mut attempt = 0u32;
        loop {
            let outcome = self.ensure_connected().and_then(|()| {
                let job_id = self.submit(payload)?;
                self.result(job_id)
            });
            match outcome {
                Ok(r) => return Ok(r),
                Err(e @ (ServerError::Rejected { .. } | ServerError::RetriesExhausted { .. })) => {
                    return Err(e);
                }
                Err(e) => {
                    self.disconnect();
                    if attempt + 1 >= attempts {
                        return Err(if attempt == 0 {
                            e
                        } else {
                            ServerError::RetriesExhausted { attempts, last: Box::new(e) }
                        });
                    }
                    std::thread::sleep(self.cfg.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

fn unexpected(wanted: &str, got: &JobMsg) -> ServerError {
    ServerError::Protocol { what: format!("expected {wanted}, got {got:?}") }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(400),
            seed: 7,
            ..ClientConfig::default()
        };
        let again = cfg.clone();
        let a: Vec<Duration> = (0..8).map(|n| cfg.backoff(n)).collect();
        let b: Vec<Duration> = (0..8).map(|n| again.backoff(n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // Exponential up to the cap, jitter bounded by the base.
        for (n, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(50u64 << n.min(3)).min(Duration::from_millis(400));
            assert!(*d >= exp, "attempt {n}: {d:?} < {exp:?}");
            assert!(*d < exp + Duration::from_millis(50), "attempt {n}: {d:?} jitter too big");
        }
        let other = ClientConfig { seed: 8, ..cfg };
        let c: Vec<Duration> = (0..8).map(|n| other.backoff(n)).collect();
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow_the_backoff() {
        let cfg = ClientConfig::default();
        assert_eq!(cfg.backoff(200).min(cfg.backoff_max), cfg.backoff_max);
    }
}
