//! The job-server control protocol.
//!
//! Client and server speak [`JobMsg`] frames over one TCP connection,
//! framed exactly like mesh and worker-control traffic
//! ([`cip_transport::frame`]: versioned header + CRC), so the wire
//! corruption guarantees are shared with the data plane. Control
//! corruption is fatal for the connection — there is no NACK layer here
//! — but never for the server: the handler drops the connection and the
//! jobs it submitted keep running.
//!
//! The payload of a [`JobMsg::Submit`] is opaque to this crate: the
//! server hands it to its [`crate::JobRunner`] verbatim, and the
//! content-hash cache keys on exactly these bytes. A `ticket` chosen by
//! the client correlates `Submit` with `Accepted`/`Rejected` so one
//! connection can pipeline submissions.

use cip_transport::{ByteReader, ByteWriter, Wire, WireError};

/// Where a job is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is available.
    Done,
    /// The runner rejected or aborted it.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    fn code(self) -> u8 {
        match self {
            Self::Queued => 0,
            Self::Running => 1,
            Self::Done => 2,
            Self::Failed => 3,
            Self::Cancelled => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0 => Self::Queued,
            1 => Self::Running,
            2 => Self::Done,
            3 => Self::Failed,
            4 => Self::Cancelled,
            _ => return Err(WireError::Malformed { what: "unknown job state" }),
        })
    }
}

/// How a job ended — the payload of a [`JobMsg::ResultIs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The runner finished; `payload` is its (runner-defined) result.
    Done {
        /// Runner-defined result bytes.
        payload: Vec<u8>,
    },
    /// The runner failed.
    Failed {
        /// Why.
        reason: String,
    },
    /// The job was cancelled before it produced a result.
    Cancelled,
}

/// One catalog row: a workload the server advertises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Stable workload name.
    pub name: String,
    /// One-line human summary.
    pub summary: String,
}

/// Aggregate server counters, as reported by [`JobMsg::StatsIs`]. The
/// same values back the `server.jobs.*` telemetry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs accepted (cache hits included).
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Submissions answered from the content-hash cache.
    pub cache_hits: u64,
    /// Jobs whose runner failed.
    pub failed: u64,
    /// Submissions refused at admission (oversized payload, full
    /// queue, shutdown drain).
    pub rejected: u64,
    /// Jobs whose runner panicked (caught; finalized as failed).
    pub panicked: u64,
    /// Jobs stopped by the per-job deadline watchdog.
    pub deadline_exceeded: u64,
    /// Result-cache entries evicted to stay inside the budget.
    pub cache_evictions: u64,
    /// Current result-cache occupancy in bytes (a gauge, not a
    /// counter).
    pub cache_bytes: u64,
    /// Worker threads the supervisor respawned after a panic retired
    /// their predecessor.
    pub workers_respawned: u64,
    /// The server's `Submit` payload ceiling in bytes (a limit, not a
    /// counter — surfaced here so clients can size submissions).
    pub max_payload: u64,
}

/// What [`JobMsg::CatalogIs`] carries: the advertised workloads plus
/// the admission limits a client needs to size its submissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogInfo {
    /// One row per advertised workload.
    pub entries: Vec<CatalogEntry>,
    /// The server's `Submit` payload ceiling in bytes.
    pub max_payload: u64,
}

/// Messages on a client connection. Requests flow client → server,
/// `*Is`/`Accepted`/`Rejected` replies flow server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobMsg {
    /// Client → server: run `payload` (opaque to the transport; the
    /// server's [`crate::JobRunner`] decodes it).
    Submit {
        /// Client-chosen correlation id, echoed by the reply.
        ticket: u32,
        /// The job payload (cache key: exactly these bytes).
        payload: Vec<u8>,
    },
    /// Server → client: the submission was accepted as job `job_id`.
    Accepted {
        /// Echo of the submit ticket.
        ticket: u32,
        /// Server-assigned job id.
        job_id: u64,
    },
    /// Server → client: the submission was refused (queue full,
    /// shutting down).
    Rejected {
        /// Echo of the submit ticket.
        ticket: u32,
        /// Why.
        reason: String,
    },
    /// Client → server: where is this job?
    Status {
        /// The job to query.
        job_id: u64,
    },
    /// Server → client: the job's current state.
    StatusIs {
        /// Echo of the queried job.
        job_id: u64,
        /// Its state.
        state: JobState,
    },
    /// Client → server: cancel this job (idempotent; unknown ids are
    /// reported via [`JobMsg::StatusIs`] as [`JobState::Failed`]).
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Client → server: block until the job completes, then send
    /// [`JobMsg::ResultIs`].
    Result {
        /// The job to wait for.
        job_id: u64,
    },
    /// Server → client: the job's final outcome.
    ResultIs {
        /// Echo of the awaited job.
        job_id: u64,
        /// How it ended.
        outcome: JobOutcome,
        /// Whether the result came from the content-hash cache.
        cached: bool,
    },
    /// Client → server: report aggregate counters.
    Stats,
    /// Server → client: the counters.
    StatsIs(ServerStats),
    /// Client → server: advertise the available workloads.
    Catalog,
    /// Server → client: the workload catalog and admission limits.
    CatalogIs {
        /// One row per advertised workload.
        entries: Vec<CatalogEntry>,
        /// The server's `Submit` payload ceiling in bytes.
        max_payload: u64,
    },
}

/// Frame tag of [`JobMsg::Submit`].
pub const TAG_SUBMIT: u8 = 1;
/// Frame tag of [`JobMsg::Accepted`].
pub const TAG_ACCEPTED: u8 = 2;
/// Frame tag of [`JobMsg::Rejected`].
pub const TAG_REJECTED: u8 = 3;
/// Frame tag of [`JobMsg::Status`].
pub const TAG_STATUS: u8 = 4;
/// Frame tag of [`JobMsg::StatusIs`].
pub const TAG_STATUS_IS: u8 = 5;
/// Frame tag of [`JobMsg::Cancel`].
pub const TAG_CANCEL: u8 = 6;
/// Frame tag of [`JobMsg::Result`].
pub const TAG_RESULT: u8 = 7;
/// Frame tag of [`JobMsg::ResultIs`].
pub const TAG_RESULT_IS: u8 = 8;
/// Frame tag of [`JobMsg::Stats`].
pub const TAG_STATS: u8 = 9;
/// Frame tag of [`JobMsg::StatsIs`].
pub const TAG_STATS_IS: u8 = 10;
/// Frame tag of [`JobMsg::Catalog`].
pub const TAG_CATALOG: u8 = 11;
/// Frame tag of [`JobMsg::CatalogIs`].
pub const TAG_CATALOG_IS: u8 = 12;

fn w_str(w: &mut ByteWriter<'_>, s: &str) {
    w_bytes(w, s.as_bytes());
}

fn r_str(r: &mut ByteReader<'_>) -> Result<String, WireError> {
    String::from_utf8(r_bytes(r)?).map_err(|_| WireError::Malformed { what: "string not utf-8" })
}

fn w_bytes(w: &mut ByteWriter<'_>, bytes: &[u8]) {
    w.u32(bytes.len() as u32);
    for &b in bytes {
        w.u8(b);
    }
}

fn r_bytes(r: &mut ByteReader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::Malformed { what: "byte length exceeds payload" });
    }
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(r.u8()?);
    }
    Ok(bytes)
}

fn w_outcome(w: &mut ByteWriter<'_>, outcome: &JobOutcome) {
    match outcome {
        JobOutcome::Done { payload } => {
            w.u8(0);
            w_bytes(w, payload);
        }
        JobOutcome::Failed { reason } => {
            w.u8(1);
            w_str(w, reason);
        }
        JobOutcome::Cancelled => w.u8(2),
    }
}

fn r_outcome(r: &mut ByteReader<'_>) -> Result<JobOutcome, WireError> {
    match r.u8()? {
        0 => Ok(JobOutcome::Done { payload: r_bytes(r)? }),
        1 => Ok(JobOutcome::Failed { reason: r_str(r)? }),
        2 => Ok(JobOutcome::Cancelled),
        _ => Err(WireError::Malformed { what: "unknown outcome variant" }),
    }
}

impl Wire for JobMsg {
    fn tag(&self) -> u8 {
        match self {
            Self::Submit { .. } => TAG_SUBMIT,
            Self::Accepted { .. } => TAG_ACCEPTED,
            Self::Rejected { .. } => TAG_REJECTED,
            Self::Status { .. } => TAG_STATUS,
            Self::StatusIs { .. } => TAG_STATUS_IS,
            Self::Cancel { .. } => TAG_CANCEL,
            Self::Result { .. } => TAG_RESULT,
            Self::ResultIs { .. } => TAG_RESULT_IS,
            Self::Stats => TAG_STATS,
            Self::StatsIs(_) => TAG_STATS_IS,
            Self::Catalog => TAG_CATALOG,
            Self::CatalogIs { .. } => TAG_CATALOG_IS,
        }
    }

    fn src_rank(&self) -> u32 {
        0
    }

    fn step(&self) -> u32 {
        0
    }

    fn seq(&self) -> u64 {
        0
    }

    fn encode_payload(&self, w: &mut ByteWriter<'_>) {
        match self {
            Self::Submit { ticket, payload } => {
                w.u32(*ticket);
                w_bytes(w, payload);
            }
            Self::Accepted { ticket, job_id } => {
                w.u32(*ticket);
                w.u64(*job_id);
            }
            Self::Rejected { ticket, reason } => {
                w.u32(*ticket);
                w_str(w, reason);
            }
            Self::Status { job_id } | Self::Cancel { job_id } | Self::Result { job_id } => {
                w.u64(*job_id);
            }
            Self::StatusIs { job_id, state } => {
                w.u64(*job_id);
                w.u8(state.code());
            }
            Self::ResultIs { job_id, outcome, cached } => {
                w.u64(*job_id);
                w.u8(u8::from(*cached));
                w_outcome(w, outcome);
            }
            Self::Stats | Self::Catalog => {}
            Self::StatsIs(s) => {
                w.u64(s.submitted);
                w.u64(s.completed);
                w.u64(s.cancelled);
                w.u64(s.cache_hits);
                w.u64(s.failed);
                w.u64(s.rejected);
                w.u64(s.panicked);
                w.u64(s.deadline_exceeded);
                w.u64(s.cache_evictions);
                w.u64(s.cache_bytes);
                w.u64(s.workers_respawned);
                w.u64(s.max_payload);
            }
            Self::CatalogIs { entries, max_payload } => {
                w.u64(*max_payload);
                w.u32(entries.len() as u32);
                for e in entries {
                    w_str(w, &e.name);
                    w_str(w, &e.summary);
                }
            }
        }
    }

    fn decode_payload(
        tag: u8,
        _from: u32,
        _step: u32,
        _seq: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError> {
        match tag {
            TAG_SUBMIT => Ok(Self::Submit { ticket: r.u32()?, payload: r_bytes(r)? }),
            TAG_ACCEPTED => Ok(Self::Accepted { ticket: r.u32()?, job_id: r.u64()? }),
            TAG_REJECTED => Ok(Self::Rejected { ticket: r.u32()?, reason: r_str(r)? }),
            TAG_STATUS => Ok(Self::Status { job_id: r.u64()? }),
            TAG_STATUS_IS => {
                Ok(Self::StatusIs { job_id: r.u64()?, state: JobState::from_code(r.u8()?)? })
            }
            TAG_CANCEL => Ok(Self::Cancel { job_id: r.u64()? }),
            TAG_RESULT => Ok(Self::Result { job_id: r.u64()? }),
            TAG_RESULT_IS => {
                let job_id = r.u64()?;
                let cached = r.u8()? != 0;
                Ok(Self::ResultIs { job_id, outcome: r_outcome(r)?, cached })
            }
            TAG_STATS => Ok(Self::Stats),
            TAG_STATS_IS => Ok(Self::StatsIs(ServerStats {
                submitted: r.u64()?,
                completed: r.u64()?,
                cancelled: r.u64()?,
                cache_hits: r.u64()?,
                failed: r.u64()?,
                rejected: r.u64()?,
                panicked: r.u64()?,
                deadline_exceeded: r.u64()?,
                cache_evictions: r.u64()?,
                cache_bytes: r.u64()?,
                workers_respawned: r.u64()?,
                max_payload: r.u64()?,
            })),
            TAG_CATALOG => Ok(Self::Catalog),
            TAG_CATALOG_IS => {
                let max_payload = r.u64()?;
                let count = r.u32()? as usize;
                if count * 8 > r.remaining() {
                    return Err(WireError::Malformed { what: "catalog count exceeds payload" });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(CatalogEntry { name: r_str(r)?, summary: r_str(r)? });
                }
                Ok(Self::CatalogIs { entries, max_payload })
            }
            got => Err(WireError::BadTag { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_transport::frame::{decode_frame, encode_frame};

    fn roundtrip(msg: &JobMsg) -> JobMsg {
        let mut buf = Vec::new();
        encode_frame(msg, 0, &mut buf);
        let (decoded, _, _) = decode_frame::<JobMsg>(&buf).expect("frame decodes");
        decoded
    }

    #[test]
    fn every_variant_roundtrips() {
        let msgs = [
            JobMsg::Submit { ticket: 7, payload: vec![1, 2, 3, 255] },
            JobMsg::Accepted { ticket: 7, job_id: 42 },
            JobMsg::Rejected { ticket: 9, reason: "queue full".into() },
            JobMsg::Status { job_id: 42 },
            JobMsg::StatusIs { job_id: 42, state: JobState::Running },
            JobMsg::Cancel { job_id: 42 },
            JobMsg::Result { job_id: 42 },
            JobMsg::ResultIs {
                job_id: 42,
                outcome: JobOutcome::Done { payload: b"totals".to_vec() },
                cached: true,
            },
            JobMsg::ResultIs {
                job_id: 1,
                outcome: JobOutcome::Failed { reason: "x".into() },
                cached: false,
            },
            JobMsg::ResultIs { job_id: 2, outcome: JobOutcome::Cancelled, cached: false },
            JobMsg::Stats,
            JobMsg::StatsIs(ServerStats {
                submitted: 5,
                completed: 3,
                cancelled: 1,
                cache_hits: 2,
                failed: 0,
                rejected: 4,
                panicked: 1,
                deadline_exceeded: 2,
                cache_evictions: 9,
                cache_bytes: 1 << 20,
                workers_respawned: 1,
                max_payload: 16 << 20,
            }),
            JobMsg::Catalog,
            JobMsg::CatalogIs {
                entries: vec![CatalogEntry { name: "tiny".into(), summary: "unit test".into() }],
                max_payload: 4096,
            },
        ];
        for msg in msgs {
            assert_eq!(roundtrip(&msg), msg, "{msg:?}");
        }
    }

    #[test]
    fn all_job_states_roundtrip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            let msg = roundtrip(&JobMsg::StatusIs { job_id: 1, state });
            assert_eq!(msg, JobMsg::StatusIs { job_id: 1, state });
        }
        assert!(JobState::from_code(9).is_err());
    }

    #[test]
    fn large_payloads_roundtrip() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let msg = JobMsg::Submit { ticket: 1, payload };
        assert_eq!(roundtrip(&msg), msg);
    }
}
