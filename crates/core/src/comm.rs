//! Per-rank communication traffic.
//!
//! The paper reports *total* communication counts (FEComm, M2MComm,
//! NRemote). On a real machine the step time is set by the **bottleneck
//! rank**, so a production decomposition tool must also expose the
//! per-rank traffic matrix. This module computes, for each of the three
//! communication kinds, who sends how much to whom:
//!
//! * [`halo_traffic`] — the FE phase's halo exchange (one unit per nodal
//!   value shipped to a distinct remote part; totals match
//!   [`cip_graph::total_comm_volume`]),
//! * [`shipment_traffic`] — the global-search element shipments (totals
//!   match [`cip_contact::n_remote`]),
//! * [`m2m_traffic`] — the ML+RCB mesh-to-mesh transfer (totals match the
//!   M2MComm metric).

use cip_contact::{GlobalFilter, SurfaceElementInfo};
use cip_graph::Graph;
use serde::Serialize;

/// A per-rank traffic summary: the full part-to-part matrix plus row/col
/// sums.
#[derive(Debug, Clone, Serialize)]
pub struct RankTraffic {
    /// Number of ranks (parts).
    pub k: usize,
    /// Row-major `k x k` matrix; `matrix[s * k + r]` = units sent from
    /// rank `s` to rank `r`. The diagonal is always zero.
    pub matrix: Vec<u64>,
}

impl RankTraffic {
    fn zeros(k: usize) -> Self {
        Self { k, matrix: vec![0; k * k] }
    }

    #[inline]
    fn add(&mut self, from: u32, to: u32, units: u64) {
        debug_assert_ne!(from, to);
        self.matrix[from as usize * self.k + to as usize] += units;
    }

    /// Units sent by rank `s`.
    pub fn send_volume(&self, s: u32) -> u64 {
        self.matrix[s as usize * self.k..(s as usize + 1) * self.k].iter().sum()
    }

    /// Units received by rank `r`.
    pub fn recv_volume(&self, r: u32) -> u64 {
        (0..self.k).map(|s| self.matrix[s * self.k + r as usize]).sum()
    }

    /// Total units over all rank pairs.
    pub fn total(&self) -> u64 {
        self.matrix.iter().sum()
    }

    /// The busiest rank's send+recv volume — the bottleneck that actually
    /// bounds the step time.
    pub fn max_rank_volume(&self) -> u64 {
        (0..self.k as u32).map(|r| self.send_volume(r) + self.recv_volume(r)).max().unwrap_or(0)
    }

    /// Ratio of the bottleneck rank's volume to the average rank volume
    /// (1.0 = perfectly even traffic).
    pub fn traffic_imbalance(&self) -> f64 {
        let total: u64 =
            (0..self.k as u32).map(|r| self.send_volume(r) + self.recv_volume(r)).sum();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.k as f64;
        self.max_rank_volume() as f64 / avg
    }

    /// Number of rank pairs that exchange at least one unit (message
    /// count proxy).
    pub fn active_pairs(&self) -> usize {
        self.matrix.iter().filter(|&&v| v > 0).count()
    }

    /// The traffic matrix after losing rank `r`: its row and column are
    /// deleted and the highest rank's label moves into the freed slot —
    /// the same swap-style relabeling as
    /// `cip_partition::compact_parts_after_loss`, so a post-recovery
    /// assignment and its traffic stay label-compatible.
    pub fn without_rank(&self, r: u32) -> RankTraffic {
        assert!((r as usize) < self.k, "rank {r} out of range for k={}", self.k);
        let k = self.k;
        let r = r as usize;
        let new_k = k - 1;
        // old label -> new label: identity, except the top rank fills r.
        let relabel = |p: usize| -> Option<usize> {
            if p == r {
                None
            } else if p == new_k {
                Some(r)
            } else {
                Some(p)
            }
        };
        let mut t = RankTraffic::zeros(new_k);
        for s in 0..k {
            let Some(ns) = relabel(s) else { continue };
            for d in 0..k {
                let Some(nd) = relabel(d) else { continue };
                t.matrix[ns * new_k + nd] += self.matrix[s * k + d];
            }
        }
        t
    }
}

/// FE-phase halo exchange: for every vertex `v` and every *distinct*
/// remote part `p` among its neighbors, one unit flows `P[v] -> p`.
///
/// `traffic.total()` equals [`cip_graph::total_comm_volume`].
pub fn halo_traffic(g: &Graph, assignment: &[u32], k: usize) -> RankTraffic {
    debug_assert_eq!(assignment.len(), g.nv());
    let mut t = RankTraffic::zeros(k);
    let mut seen: Vec<u32> = Vec::with_capacity(16);
    for v in 0..g.nv() as u32 {
        let pv = assignment[v as usize];
        seen.clear();
        for (u, _) in g.neighbors(v) {
            let pu = assignment[u as usize];
            if pu != pv && !seen.contains(&pu) {
                seen.push(pu);
                t.add(pv, pu, 1);
            }
        }
    }
    t
}

/// Global-search shipments: each surface element flows from its owner to
/// every other candidate part of its bounding box.
///
/// `traffic.total()` equals [`cip_contact::n_remote`] for the same filter.
pub fn shipment_traffic<const D: usize, F: GlobalFilter<D>>(
    elements: &[SurfaceElementInfo<D>],
    filter: &F,
    k: usize,
) -> RankTraffic {
    let mut t = RankTraffic::zeros(k);
    let mut out = Vec::new();
    for el in elements {
        filter.candidate_parts(&el.bbox, &mut out);
        for &p in out.iter() {
            if p != el.owner {
                t.add(el.owner, p, 1);
            }
        }
    }
    t
}

/// ML+RCB mesh-to-mesh transfer: each contact point whose FE part differs
/// from its (relabeled) contact part flows FE -> contact before search,
/// and back afterwards (the caller decides whether to count both legs).
pub fn m2m_traffic(fe_labels: &[u32], contact_labels: &[u32], k: usize) -> RankTraffic {
    debug_assert_eq!(fe_labels.len(), contact_labels.len());
    let mut t = RankTraffic::zeros(k);
    for (&f, &c) in fe_labels.iter().zip(contact_labels.iter()) {
        if f != c {
            t.add(f, c, 1);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_contact::BboxFilter;
    use cip_geom::{Aabb, Point};
    use cip_graph::{total_comm_volume, GraphBuilder};

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn halo_traffic_total_matches_comm_volume() {
        let g = path(9);
        let asg = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let t = halo_traffic(&g, &asg, 3);
        assert_eq!(t.total(), total_comm_volume(&g, &asg));
        // Boundary structure of a path split in thirds: vertex 2 sends to
        // part 1, vertex 3 sends to part 0, etc.
        assert_eq!(t.matrix[1], 1);
        assert_eq!(t.matrix[3], 1);
        assert_eq!(t.matrix[5], 1);
        assert_eq!(t.matrix[7], 1);
        assert_eq!(t.matrix[2], 0, "non-adjacent parts exchange nothing");
    }

    #[test]
    fn rank_summaries() {
        let mut t = RankTraffic::zeros(3);
        t.add(0, 1, 5);
        t.add(1, 2, 7);
        t.add(2, 0, 1);
        assert_eq!(t.total(), 13);
        assert_eq!(t.send_volume(1), 7);
        assert_eq!(t.recv_volume(1), 5);
        assert_eq!(t.max_rank_volume(), 12); // rank 1: 7 out + 5 in
        assert_eq!(t.active_pairs(), 3);
        assert!(t.traffic_imbalance() > 1.0);
    }

    #[test]
    fn shipment_traffic_total_matches_n_remote() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([5.0, 0.0]), Point::new([10.0, 0.0])];
        let labels = vec![0u32, 1, 2];
        let filter = BboxFilter::from_points(&pts, &labels, 3);
        let elements: Vec<SurfaceElementInfo<2>> = (0..3)
            .map(|i| SurfaceElementInfo {
                bbox: Aabb::from_point(pts[i]).inflate(6.0),
                owner: labels[i],
            })
            .collect();
        let t = shipment_traffic(&elements, &filter, 3);
        assert_eq!(t.total(), cip_contact::n_remote(&elements, &filter));
        assert!(t.total() > 0);
    }

    #[test]
    fn m2m_traffic_counts_disagreements() {
        let fe = vec![0u32, 0, 1, 1];
        let contact = vec![0u32, 1, 1, 0];
        let t = m2m_traffic(&fe, &contact, 2);
        assert_eq!(t.total(), 2);
        assert_eq!(t.matrix[1], 1);
        assert_eq!(t.matrix[2], 1);
    }

    #[test]
    fn without_rank_swaps_top_label_into_the_hole() {
        let mut t = RankTraffic::zeros(3);
        t.add(0, 1, 5);
        t.add(1, 2, 7);
        t.add(2, 0, 1);
        // Lose rank 1: rank 2 takes label 1; only the 2->0 flow survives.
        let s = t.without_rank(1);
        assert_eq!(s.k, 2);
        assert_eq!(s.total(), 1);
        assert_eq!(s.matrix[2], 1, "old 2->0 must appear as new 1->0");
        // Lose the top rank: remaining labels untouched.
        let s = t.without_rank(2);
        assert_eq!(s.k, 2);
        assert_eq!(s.total(), 5);
        assert_eq!(s.matrix[1], 5, "0->1 flow survives in place");
    }

    #[test]
    fn empty_traffic_is_balanced() {
        let t = RankTraffic::zeros(4);
        assert_eq!(t.total(), 0);
        assert_eq!(t.traffic_imbalance(), 1.0);
        assert_eq!(t.max_rank_volume(), 0);
    }
}
