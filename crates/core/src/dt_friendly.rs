//! The §4.2 decision-tree-friendly partition correction.
//!
//! A raw multi-constraint partition has subdomain boundaries that follow
//! the mesh, not the coordinate axes; a purity-stopped decision tree over
//! such a partition can blow up (Figure 2). The correction:
//!
//! 1. induce a tree over **all** graph vertices (not just contact points)
//!    with the `max_p`/`max_i` stopping rule,
//! 2. reassign every vertex to the **majority part of its leaf** — after
//!    this, subdomain boundaries coincide with leaf faces, i.e. they are
//!    piecewise axes-parallel,
//! 3. the relabeling may break the balance constraints, so contract each
//!    leaf into one vertex of the region graph `G'` and run
//!    multi-constraint k-way refinement + balancing on `G'` — moves on
//!    `G'` shuffle whole rectangular regions between parts, preserving the
//!    axes-parallel geometry by construction.

use cip_dtree::{induce, DtreeConfig, StopRule};
use cip_geom::Point;
use cip_graph::{contract, Graph};
use cip_partition::{balance_kway, refine_kway, PartitionerConfig};
use serde::Serialize;

/// Configuration of the DT-friendly correction.
#[derive(Debug, Clone, Default)]
pub struct DtFriendlyConfig {
    /// Pure-leaf point threshold. `None` = use the paper's recommended
    /// range (see [`recommended_max_pi`]).
    pub max_p: Option<usize>,
    /// Impure-leaf point threshold. `None` = recommended.
    pub max_i: Option<usize>,
    /// Partitioner tolerances/seed for the `G'` refinement.
    pub partitioner: PartitionerConfig,
}

/// Statistics reported by the correction step.
#[derive(Debug, Clone, Serialize)]
pub struct DtFriendlyStats {
    /// Nodes in the full-vertex guidance tree.
    pub tree_nodes: usize,
    /// Leaves (= vertices of `G'`).
    pub regions: usize,
    /// Vertices whose part changed in the majority-relabel step.
    pub relabeled: usize,
    /// Vertices whose part changed in the `G'` refinement step.
    pub refined: usize,
    /// The `max_p` actually used.
    pub max_p: usize,
    /// The `max_i` actually used.
    pub max_i: usize,
}

/// The paper's recommended parameter ranges (§4.2):
/// `n/k^1.5 <= max_p <= n/k` and `n/k^2.5 <= max_i <= n/k^2`.
/// Returns the geometric midpoint of each range, floored at small
/// constants so tiny problems stay sensible.
pub fn recommended_max_pi(n: usize, k: usize) -> (usize, usize) {
    let n = n as f64;
    let k = (k as f64).max(2.0);
    let max_p = n / k.powf(1.25);
    let max_i = n / k.powf(2.25);
    ((max_p as usize).max(8), (max_i as usize).max(2))
}

/// Applies the DT-friendly correction to `asg` (a `k`-way partition of the
/// graph whose vertex `v` sits at `positions[v]`), in place.
pub fn dt_friendly_correct<const D: usize>(
    graph: &Graph,
    positions: &[Point<D>],
    k: usize,
    asg: &mut [u32],
    cfg: &DtFriendlyConfig,
) -> DtFriendlyStats {
    assert_eq!(positions.len(), graph.nv(), "one position per vertex");
    assert_eq!(asg.len(), graph.nv(), "one part per vertex");
    let n = graph.nv();
    let (rec_p, rec_i) = recommended_max_pi(n, k);
    let max_p = cfg.max_p.unwrap_or(rec_p);
    let max_i = cfg.max_i.unwrap_or(rec_i);

    // 1. Guidance tree over all vertices.
    let tree_cfg =
        DtreeConfig { stop: StopRule::MaxPMaxI { max_p, max_i }, ..DtreeConfig::default() };
    let tree = induce(positions, asg, k, &tree_cfg);

    // 2. Majority relabel: each vertex takes its leaf's majority part.
    let relabeled_parts = tree.relabel_points(positions);
    let relabeled = asg.iter().zip(relabeled_parts.iter()).filter(|(a, b)| a != b).count();

    // 3. Contract leaves into G' and refine there.
    let (leaf_of_vertex, num_leaves) = tree.leaf_index_of_points(positions);
    let g_prime = contract(graph, &leaf_of_vertex, num_leaves);
    // Each leaf's part in G' is its (pure, by construction) relabeled part.
    let mut coarse_asg = vec![0u32; num_leaves];
    for (v, &leaf) in leaf_of_vertex.iter().enumerate() {
        coarse_asg[leaf as usize] = relabeled_parts[v];
    }
    refine_kway(&g_prime, k, &mut coarse_asg, &cfg.partitioner);
    balance_kway(&g_prime, k, &mut coarse_asg, &cfg.partitioner);
    refine_kway(&g_prime, k, &mut coarse_asg, &cfg.partitioner);

    // Project back.
    let mut refined = 0usize;
    for (v, &leaf) in leaf_of_vertex.iter().enumerate() {
        let p = coarse_asg[leaf as usize];
        if p != relabeled_parts[v] {
            refined += 1;
        }
        asg[v] = p;
    }

    DtFriendlyStats {
        tree_nodes: tree.num_nodes(),
        regions: num_leaves,
        relabeled,
        refined,
        max_p,
        max_i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_dtree::{induce as induce_tree, DtreeConfig as TreeCfg};
    use cip_graph::{GraphBuilder, Partition};

    /// An n x n grid graph with positions; diagonal 2-way partition.
    fn diagonal_setup(n: usize) -> (Graph, Vec<Point<3>>, Vec<u32>) {
        let mut b = GraphBuilder::new(n * n, 1);
        let id = |i: usize, j: usize| (j * n + i) as u32;
        let mut positions = Vec::with_capacity(n * n);
        let mut asg = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < n {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < n {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        for j in 0..n {
            for i in 0..n {
                positions.push(Point::new([i as f64, j as f64, 0.0]));
                asg.push(u32::from(i + j >= n));
            }
        }
        (b.build(), positions, asg)
    }

    #[test]
    fn correction_shrinks_the_search_tree() {
        let n = 24;
        let (graph, positions, mut asg) = diagonal_setup(n);
        // Search tree on the raw diagonal partition: large.
        let before = induce_tree(&positions, &asg, 2, &TreeCfg::search_tree()).num_nodes();
        let stats = dt_friendly_correct(&graph, &positions, 2, &mut asg, &Default::default());
        let after = induce_tree(&positions, &asg, 2, &TreeCfg::search_tree()).num_nodes();
        assert!(
            after < before,
            "search tree should shrink: before {before}, after {after} (stats {stats:?})"
        );
        // Balance must be restored within the partitioner tolerance.
        let p = Partition::from_assignment(&graph, 2, asg);
        assert!(p.max_imbalance() <= 1.11, "imbalance {}", p.max_imbalance());
    }

    #[test]
    fn correction_preserves_an_already_axis_aligned_partition() {
        let n = 16;
        let (graph, positions, _) = diagonal_setup(n);
        // Perfect vertical split: already axes-parallel and balanced.
        let mut asg: Vec<u32> = (0..n * n).map(|v| u32::from(v % n >= n / 2)).collect();
        let original = asg.clone();
        dt_friendly_correct(&graph, &positions, 2, &mut asg, &Default::default());
        let changed = asg.iter().zip(original.iter()).filter(|(a, b)| a != b).count();
        assert!(
            changed <= n * n / 10,
            "axis-aligned partition should be nearly untouched ({changed} moved)"
        );
    }

    #[test]
    fn recommended_ranges_are_ordered() {
        for (n, k) in [(10_000usize, 25usize), (150_000, 100), (500, 4)] {
            let (max_p, max_i) = recommended_max_pi(n, k);
            assert!(max_i < max_p, "max_i {max_i} must be < max_p {max_p}");
            // Inside the paper's bands (allowing the small-problem floors).
            let nf = n as f64;
            let kf = k as f64;
            assert!(max_p as f64 <= nf / kf + 1.0);
            assert!(max_p as f64 >= (nf / kf.powf(1.5)).min(8.0));
        }
    }

    #[test]
    fn explicit_parameters_respected() {
        let (graph, positions, mut asg) = diagonal_setup(12);
        let cfg = DtFriendlyConfig { max_p: Some(40), max_i: Some(6), ..Default::default() };
        let stats = dt_friendly_correct(&graph, &positions, 2, &mut asg, &cfg);
        assert_eq!(stats.max_p, 40);
        assert_eq!(stats.max_i, 6);
        assert!(stats.regions >= 2);
    }
}
