//! The §5.1 evaluation metrics and their aggregation.

use serde::{Deserialize, Serialize};

/// Metrics of one snapshot under one algorithm.
///
/// Fields that do not apply to an algorithm are zero (e.g. `m2m_comm` for
/// MCML+DT, `nt_nodes` for ML+RCB), matching the paper's Table 1 layout.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SnapshotMetrics {
    /// Simulation step of the snapshot.
    pub step: usize,
    /// **FEComm**: total communication volume of the mesh partition — the
    /// halo-exchange cost of the finite-element phase.
    pub fe_comm: u64,
    /// **NTNodes**: decision-tree size (MCML+DT only) — the cost of
    /// setting up / broadcasting the contact-search structure.
    pub nt_nodes: u64,
    /// **NRemote**: surface elements shipped to remote parts during global
    /// search.
    pub n_remote: u64,
    /// **M2MComm**: contact points whose contact-phase part differs from
    /// their FE-phase part (ML+RCB only; incurred twice per step).
    pub m2m_comm: u64,
    /// **UpdComm**: contact points migrated by the contact-decomposition
    /// update between consecutive snapshots (ML+RCB) or by repartitioning
    /// (MCML+DT non-fixed policies).
    pub upd_comm: u64,
    /// Edge-cut of the FE partition (diagnostic).
    pub edge_cut: u64,
    /// Load imbalance of the FE constraint (diagnostic).
    pub imbalance_fe: f64,
    /// Load imbalance of the contact constraint / contact decomposition
    /// (diagnostic).
    pub imbalance_contact: f64,
    /// Number of contact points in this snapshot (diagnostic).
    pub contact_points: u64,
    /// Number of surface elements in this snapshot (diagnostic).
    pub surface_elements: u64,
}

/// Averages of the metrics over a snapshot sequence — one row of Table 1.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MetricsRow {
    /// Average FEComm.
    pub fe_comm: f64,
    /// Average NTNodes.
    pub nt_nodes: f64,
    /// Average NRemote.
    pub n_remote: f64,
    /// Average M2MComm.
    pub m2m_comm: f64,
    /// Average UpdComm.
    pub upd_comm: f64,
    /// Average edge-cut.
    pub edge_cut: f64,
    /// Average FE imbalance.
    pub imbalance_fe: f64,
    /// Average contact imbalance.
    pub imbalance_contact: f64,
    /// Average contact-point count.
    pub contact_points: f64,
    /// Average surface-element count.
    pub surface_elements: f64,
}

impl MetricsRow {
    /// The total per-step communication excluding contact search, with
    /// M2MComm counted **twice** (information flows to the contact
    /// decomposition and back), as in the paper's §5.2 comparison.
    pub fn non_search_comm(&self) -> f64 {
        self.fe_comm + 2.0 * self.m2m_comm
    }

    /// Serializes the row as a JSON object (self-contained — no serde
    /// runtime needed), field names matching the struct.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"fe_comm\":{},\"nt_nodes\":{},\"n_remote\":{},\"m2m_comm\":{},",
                "\"upd_comm\":{},\"edge_cut\":{},\"imbalance_fe\":{},",
                "\"imbalance_contact\":{},\"contact_points\":{},\"surface_elements\":{}}}"
            ),
            json_f64(self.fe_comm),
            json_f64(self.nt_nodes),
            json_f64(self.n_remote),
            json_f64(self.m2m_comm),
            json_f64(self.upd_comm),
            json_f64(self.edge_cut),
            json_f64(self.imbalance_fe),
            json_f64(self.imbalance_contact),
            json_f64(self.contact_points),
            json_f64(self.surface_elements),
        )
    }
}

impl SnapshotMetrics {
    /// Serializes the snapshot metrics as a JSON object (self-contained —
    /// no serde runtime needed), field names matching the struct.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"step\":{},\"fe_comm\":{},\"nt_nodes\":{},\"n_remote\":{},",
                "\"m2m_comm\":{},\"upd_comm\":{},\"edge_cut\":{},\"imbalance_fe\":{},",
                "\"imbalance_contact\":{},\"contact_points\":{},\"surface_elements\":{}}}"
            ),
            self.step,
            self.fe_comm,
            self.nt_nodes,
            self.n_remote,
            self.m2m_comm,
            self.upd_comm,
            self.edge_cut,
            json_f64(self.imbalance_fe),
            json_f64(self.imbalance_contact),
            self.contact_points,
            self.surface_elements,
        )
    }
}

/// Schema tag stamped on every results document written under `results/`
/// (by the bench bins and `cip-trace` alike).
pub const RESULTS_SCHEMA: &str = "cip-results-v1";

/// Wraps a JSON payload in the shared results envelope:
/// `{"schema": "cip-results-v1", "kind": <kind>, "payload": <payload>}`.
///
/// `payload_json` must already be valid JSON (e.g. from
/// [`MetricsRow::to_json`] or serde).
pub fn results_document(kind: &str, payload_json: &str) -> String {
    let escaped: String = kind
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    format!("{{\"schema\":\"{RESULTS_SCHEMA}\",\"kind\":\"{escaped}\",\"payload\":{payload_json}}}")
}

/// Renders a finite f64 as JSON (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Averages a metrics sequence into a Table-1 row.
pub fn average_metrics(seq: &[SnapshotMetrics]) -> MetricsRow {
    if seq.is_empty() {
        return MetricsRow::default();
    }
    let n = seq.len() as f64;
    let mut row = MetricsRow::default();
    for m in seq {
        row.fe_comm += m.fe_comm as f64;
        row.nt_nodes += m.nt_nodes as f64;
        row.n_remote += m.n_remote as f64;
        row.m2m_comm += m.m2m_comm as f64;
        row.upd_comm += m.upd_comm as f64;
        row.edge_cut += m.edge_cut as f64;
        row.imbalance_fe += m.imbalance_fe;
        row.imbalance_contact += m.imbalance_contact;
        row.contact_points += m.contact_points as f64;
        row.surface_elements += m.surface_elements as f64;
    }
    row.fe_comm /= n;
    row.nt_nodes /= n;
    row.n_remote /= n;
    row.m2m_comm /= n;
    row.upd_comm /= n;
    row.edge_cut /= n;
    row.imbalance_fe /= n;
    row.imbalance_contact /= n;
    row.contact_points /= n;
    row.surface_elements /= n;
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_is_arithmetic_mean() {
        let seq = vec![
            SnapshotMetrics { fe_comm: 10, n_remote: 4, m2m_comm: 2, ..Default::default() },
            SnapshotMetrics { fe_comm: 20, n_remote: 8, m2m_comm: 4, ..Default::default() },
        ];
        let row = average_metrics(&seq);
        assert_eq!(row.fe_comm, 15.0);
        assert_eq!(row.n_remote, 6.0);
        assert_eq!(row.m2m_comm, 3.0);
        assert_eq!(row.non_search_comm(), 15.0 + 6.0);
    }

    #[test]
    fn empty_sequence_is_zero() {
        let row = average_metrics(&[]);
        assert_eq!(row.fe_comm, 0.0);
        assert_eq!(row.non_search_comm(), 0.0);
    }

    #[test]
    fn non_search_comm_counts_m2m_twice() {
        let row = MetricsRow { fe_comm: 100.0, m2m_comm: 30.0, ..Default::default() };
        assert_eq!(row.non_search_comm(), 160.0);
    }

    #[test]
    fn json_exports_are_valid_and_carry_fields() {
        let snap = SnapshotMetrics {
            step: 7,
            fe_comm: 123,
            n_remote: 4,
            imbalance_fe: 1.05,
            ..Default::default()
        };
        let j = snap.to_json();
        cip_telemetry::json::validate(&j).expect("snapshot JSON must parse");
        assert!(j.contains("\"step\":7"));
        assert!(j.contains("\"fe_comm\":123"));
        assert!(j.contains("\"imbalance_fe\":1.05"));

        let row = MetricsRow { fe_comm: 10.5, upd_comm: 3.0, ..Default::default() };
        let j = row.to_json();
        cip_telemetry::json::validate(&j).expect("row JSON must parse");
        assert!(j.contains("\"fe_comm\":10.5"));
        assert!(j.contains("\"upd_comm\":3.0"));
    }

    #[test]
    fn results_document_wraps_payload() {
        let doc = results_document("table\"1", &MetricsRow::default().to_json());
        cip_telemetry::json::validate(&doc).expect("envelope must parse");
        assert!(doc.starts_with(&format!("{{\"schema\":\"{RESULTS_SCHEMA}\"")));
        assert!(doc.contains("\"kind\":\"table\\\"1\""));
    }
}
