//! The MCML+DT pipeline (§4).
//!
//! One decomposition serves both computation phases: the nodal graph
//! carries two vertex weights (FE work, contact work) and boosted
//! contact-contact edge weights, a multilevel multi-constraint partitioner
//! balances both phases at once, the DT-friendly correction straightens
//! subdomain boundaries, and a purity-stopped decision tree over the
//! contact points is (re-)induced every snapshot as the global-search
//! filter. Because the FE and contact decompositions are one and the same,
//! the mesh-to-mesh transfer cost of ML+RCB (M2MComm) simply does not
//! exist here.

use crate::common::SnapshotView;
use crate::dt_friendly::{dt_friendly_correct, DtFriendlyConfig, DtFriendlyStats};
use crate::metrics::SnapshotMetrics;
use cip_contact::{n_remote, DtreeFilter};
use cip_dtree::{induce, DtreeConfig};
use cip_graph::{edge_cut, total_comm_volume, Partition};
use cip_partition::{
    diffusion_repartition, partition_kway, repartition, repartition_survivors, PartitionerConfig,
};
use cip_sim::SimResult;
use rayon::prelude::*;

/// Which repartitioning algorithm non-fixed update policies use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepartitionMethod {
    /// Partition from scratch, then Hungarian-relabel for maximum overlap.
    ScratchRemap,
    /// Local diffusion from the previous assignment (less migration when
    /// the imbalance is mild — the Schloegel-style updater §4.3 cites).
    Diffusion,
}

/// How the decomposition is maintained over the snapshot sequence (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Keep the step-0 partition; only re-induce the search tree each
    /// snapshot. This is the policy used for the paper's Table 1.
    Fixed,
    /// Repartition (multi-constraint, overlap-maximizing) every `period`
    /// snapshots; re-induce the tree every snapshot — the paper's
    /// suggested hybrid.
    Hybrid {
        /// Snapshots between repartitionings.
        period: usize,
    },
    /// Repartition at every snapshot.
    PerStep,
}

/// A scripted rank loss for robustness evaluation: at the given
/// snapshot, one rank disappears and its load is diffused over the
/// survivors (cf. DESIGN.md §6c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankLoss {
    /// Snapshot index at which the rank dies.
    pub snapshot: usize,
    /// The dying rank.
    pub rank: u32,
}

/// MCML+DT configuration.
#[derive(Debug, Clone)]
pub struct McmlDtConfig {
    /// Number of parts (processors).
    pub k: usize,
    /// Edge weight between pairs of contact nodes (paper: 5).
    pub contact_edge_weight: i64,
    /// DT-friendly correction (§4.2); `None` disables it (ablation).
    pub dt_friendly: Option<DtFriendlyConfig>,
    /// Multilevel partitioner settings.
    pub partitioner: PartitionerConfig,
    /// Search-tree induction settings (purity stop; optionally the
    /// margin-aware splitter of §6).
    pub tree: DtreeConfig,
    /// Update policy over the sequence.
    pub update: UpdatePolicy,
    /// Use tight-leaf query semantics for the global-search filter
    /// (an extension in the spirit of §6 — fewer false positives; the
    /// paper's own semantics, used by default, answer per leaf *region*).
    pub tight_filter: bool,
    /// Repartitioning algorithm for the `Hybrid` / `PerStep` policies.
    pub repartition_method: RepartitionMethod,
    /// Optional scripted rank loss: from that snapshot on, the sweep
    /// continues over `k - 1` (then `k - 2`, ...) parts, with the dead
    /// rank's load diffused onto the survivors. Forces the sequential
    /// sweep (the loss carries state between snapshots).
    pub rank_loss: Option<RankLoss>,
}

impl McmlDtConfig {
    /// The paper's Table-1 configuration for `k` parts: unit vertex
    /// weights, contact-edge weight 5, DT-friendly correction on, fixed
    /// partition with per-snapshot tree re-induction.
    pub fn paper(k: usize) -> Self {
        Self {
            k,
            contact_edge_weight: 5,
            dt_friendly: Some(DtFriendlyConfig::default()),
            partitioner: PartitionerConfig::default(),
            tree: DtreeConfig::search_tree(),
            update: UpdatePolicy::Fixed,
            tight_filter: false,
            repartition_method: RepartitionMethod::ScratchRemap,
            rank_loss: None,
        }
    }
}

/// Runs MCML+DT over the whole snapshot sequence, returning per-snapshot
/// metrics and the DT-friendly stats of the initial partitioning (if the
/// correction was enabled).
pub fn evaluate_mcml_dt(
    sim: &SimResult,
    cfg: &McmlDtConfig,
) -> (Vec<SnapshotMetrics>, Option<DtFriendlyStats>) {
    assert!(!sim.is_empty(), "simulation produced no snapshots");
    let k = cfg.k;

    // ---- Initial decomposition on snapshot 0. -------------------------
    let view0 = SnapshotView::build(sim, 0, cfg.contact_edge_weight);
    let mut asg = partition_kway(&view0.graph2.graph, k, &cfg.partitioner);
    let mut friendly_stats = None;
    if let Some(fc) = &cfg.dt_friendly {
        let positions: Vec<_> =
            view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
        friendly_stats =
            Some(dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, fc));
    }
    // Node-indexed partition (dead nodes: u32::MAX — they can never come
    // back to life, erosion is monotone).
    let mut node_parts = view0.graph2.assignment_on_nodes(&asg);

    // ---- Sweep the sequence. ------------------------------------------
    // Under the fixed policy the snapshots are independent given the
    // step-0 partition, so they evaluate in parallel; the repartitioning
    // policies — and a scripted rank loss — carry state from snapshot to
    // snapshot and stay sequential.
    if cfg.update == UpdatePolicy::Fixed && cfg.rank_loss.is_none() {
        let out: Vec<SnapshotMetrics> = (0..sim.len())
            .into_par_iter()
            .map(|i| {
                let built;
                let view: &SnapshotView = if i == 0 {
                    &view0
                } else {
                    built = SnapshotView::build(sim, i, cfg.contact_edge_weight);
                    &built
                };
                snapshot_metrics(sim, i, view, &node_parts, cfg, k, 0)
            })
            .collect();
        return (out, friendly_stats);
    }

    let mut live_k = k;
    let mut out = Vec::with_capacity(sim.len());
    for i in 0..sim.len() {
        let built;
        let view: &SnapshotView = if i == 0 {
            &view0
        } else {
            built = SnapshotView::build(sim, i, cfg.contact_edge_weight);
            &built
        };

        let mut upd_comm = 0u64;

        // Scripted rank loss: diffuse the dead rank's load over the
        // survivors (or collapse to a single part when too few remain).
        if let Some(loss) = cfg.rank_loss {
            if i == loss.snapshot && (loss.rank as usize) < live_k {
                let old: Vec<u32> =
                    view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
                let new_node_parts = if live_k > 2 {
                    let (fresh, new_k) = repartition_survivors(
                        &view.graph2.graph,
                        live_k,
                        &old,
                        &[loss.rank],
                        &cfg.partitioner,
                    );
                    live_k = new_k;
                    view.graph2.assignment_on_nodes(&fresh)
                } else {
                    live_k = 1;
                    view.graph2.assignment_on_nodes(&vec![0u32; old.len()])
                };
                upd_comm += migrated_contact_points(view, &node_parts, &new_node_parts);
                for (n, &p) in new_node_parts.iter().enumerate() {
                    if p != u32::MAX {
                        node_parts[n] = p;
                    }
                }
            }
        }

        let repartition_now = match cfg.update {
            UpdatePolicy::Fixed => false,
            UpdatePolicy::PerStep => i > 0,
            UpdatePolicy::Hybrid { period } => i > 0 && period > 0 && i % period == 0,
        };
        if repartition_now {
            let old: Vec<u32> =
                view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
            let mut fresh = match cfg.repartition_method {
                RepartitionMethod::ScratchRemap => {
                    repartition(&view.graph2.graph, live_k, &old, &cfg.partitioner)
                }
                RepartitionMethod::Diffusion => {
                    diffusion_repartition(&view.graph2.graph, live_k, &old, &cfg.partitioner)
                }
            };
            if let Some(fc) = &cfg.dt_friendly {
                let positions: Vec<_> = view
                    .graph2
                    .node_of_vertex
                    .iter()
                    .map(|&n| view.mesh.points[n as usize])
                    .collect();
                dt_friendly_correct(&view.graph2.graph, &positions, live_k, &mut fresh, fc);
            }
            // UpdComm: contact points migrated by the repartitioning.
            let new_node_parts = view.graph2.assignment_on_nodes(&fresh);
            upd_comm += migrated_contact_points(view, &node_parts, &new_node_parts);
            // Keep parts of still-dead nodes from before (irrelevant, but
            // cheap to carry): merge live updates only.
            for (n, &p) in new_node_parts.iter().enumerate() {
                if p != u32::MAX {
                    node_parts[n] = p;
                }
            }
        }

        out.push(snapshot_metrics(sim, i, view, &node_parts, cfg, live_k, upd_comm));
    }
    (out, friendly_stats)
}

/// Contact points whose part changes between two node assignments (the
/// UpdComm unit).
fn migrated_contact_points(view: &SnapshotView, old: &[u32], new: &[u32]) -> u64 {
    view.contact
        .nodes
        .iter()
        .filter(|&&n| old[n as usize] != u32::MAX && old[n as usize] != new[n as usize])
        .count() as u64
}

/// Evaluates one snapshot's metrics under the current node partition
/// (`k` is the *live* part count — after a rank loss it is smaller than
/// `cfg.k`).
fn snapshot_metrics(
    sim: &SimResult,
    i: usize,
    view: &SnapshotView,
    node_parts: &[u32],
    cfg: &McmlDtConfig,
    k: usize,
    upd_comm: u64,
) -> SnapshotMetrics {
    let asg_now: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    debug_assert!(asg_now.iter().all(|&p| p != u32::MAX));

    // FEComm + balance diagnostics.
    let fe_comm = total_comm_volume(&view.graph2.graph, &asg_now);
    let cut = edge_cut(&view.graph1.graph, &asg_now) as u64;
    let part = Partition::from_assignment(&view.graph2.graph, k, asg_now);

    // Search tree over the contact points.
    let labels = view.contact.labels_from_node_parts(node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &cfg.tree);

    // Global search with the decision-tree filter.
    let elements = view.surface_elements(node_parts);
    let filter =
        if cfg.tight_filter { DtreeFilter::tight(&tree, k) } else { DtreeFilter::new(&tree, k) };
    let shipped = n_remote(&elements, &filter);

    SnapshotMetrics {
        step: sim.snapshots[i].step,
        fe_comm,
        nt_nodes: tree.num_nodes() as u64,
        n_remote: shipped,
        m2m_comm: 0,
        upd_comm,
        edge_cut: cut,
        imbalance_fe: part.imbalance(0),
        imbalance_contact: part.imbalance(1),
        contact_points: view.contact.len() as u64,
        surface_elements: view.faces.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_sim::SimConfig;

    fn tiny_sim() -> SimResult {
        cip_sim::run(&SimConfig::tiny())
    }

    #[test]
    fn fixed_policy_produces_metrics_for_every_snapshot() {
        let sim = tiny_sim();
        let cfg = McmlDtConfig::paper(4);
        let (metrics, stats) = evaluate_mcml_dt(&sim, &cfg);
        assert_eq!(metrics.len(), sim.len());
        assert!(stats.is_some());
        for m in &metrics {
            assert!(m.fe_comm > 0, "step {} has no FE communication", m.step);
            assert!(m.nt_nodes >= 1);
            assert_eq!(m.m2m_comm, 0, "MCML+DT has no mesh-to-mesh transfer");
            assert_eq!(m.upd_comm, 0, "fixed policy never migrates");
            assert!(m.imbalance_fe >= 1.0);
        }
    }

    #[test]
    fn balance_holds_on_first_snapshot() {
        let sim = tiny_sim();
        let cfg = McmlDtConfig::paper(4);
        let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
        // The partition is computed on snapshot 0, so snapshot 0 must be
        // well balanced on the FE constraint.
        assert!(metrics[0].imbalance_fe <= 1.15, "FE imbalance {}", metrics[0].imbalance_fe);
        assert!(
            metrics[0].imbalance_contact <= 1.8,
            "contact imbalance {}",
            metrics[0].imbalance_contact
        );
    }

    #[test]
    fn per_step_policy_reports_migration_and_restores_balance() {
        let sim = tiny_sim();
        let cfg = McmlDtConfig { update: UpdatePolicy::PerStep, ..McmlDtConfig::paper(4) };
        let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
        // Late snapshots stay balanced because we repartition.
        let last = metrics.last().unwrap();
        assert!(last.imbalance_fe <= 1.25, "late imbalance {}", last.imbalance_fe);
    }

    #[test]
    fn hybrid_policy_repartitions_periodically() {
        let sim = tiny_sim();
        let cfg =
            McmlDtConfig { update: UpdatePolicy::Hybrid { period: 5 }, ..McmlDtConfig::paper(3) };
        let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
        assert_eq!(metrics.len(), sim.len());
        // Non-repartition snapshots report zero migration.
        for (i, m) in metrics.iter().enumerate() {
            if i == 0 || i % 5 != 0 {
                assert_eq!(m.upd_comm, 0, "snapshot {i}");
            }
        }
    }

    #[test]
    fn rank_loss_diffuses_load_onto_survivors() {
        let sim = tiny_sim();
        let cfg = McmlDtConfig {
            rank_loss: Some(RankLoss { snapshot: 1, rank: 1 }),
            ..McmlDtConfig::paper(4)
        };
        let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
        assert_eq!(metrics.len(), sim.len());
        // Snapshot 0 runs on the full machine, untouched.
        assert_eq!(metrics[0].upd_comm, 0);
        // The loss snapshot migrates the dead rank's contact points (the
        // partitioner balances the contact constraint, so a dying rank
        // always owns some).
        assert!(metrics[1].upd_comm > 0, "rank loss migrated nothing");
        // The sweep keeps producing sane metrics over the 3 survivors.
        for m in &metrics[1..] {
            assert!(m.fe_comm > 0);
            assert!(m.imbalance_fe >= 1.0);
        }
        // The survivors are rebalanced at the loss, not left lopsided
        // with a silent hole where the dead rank was.
        assert!(
            metrics[1].imbalance_fe <= 1.5,
            "post-loss FE imbalance {}",
            metrics[1].imbalance_fe
        );
    }

    #[test]
    fn rank_loss_below_three_survivors_collapses_to_serial() {
        let sim = tiny_sim();
        let cfg = McmlDtConfig {
            rank_loss: Some(RankLoss { snapshot: 1, rank: 0 }),
            ..McmlDtConfig::paper(2)
        };
        let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
        assert_eq!(metrics.len(), sim.len());
        // One part left: no cross-part traffic from the loss on.
        for (i, m) in metrics.iter().enumerate().skip(1) {
            assert_eq!(m.fe_comm, 0, "snapshot {i} still has halo traffic");
            assert!((m.imbalance_fe - 1.0).abs() < 1e-9, "snapshot {i}");
        }
        // The collapse itself migrated the other part's contact points —
        // proof the pre-loss snapshot really ran on two ranks. (FEComm
        // can legitimately be 0 at k=2: the two bodies share no FE edges,
        // and the dt-friendly correction may align parts with bodies.)
        assert!(metrics[1].upd_comm > 0, "collapse to serial migrated nothing");
    }

    #[test]
    fn disabling_dt_friendly_increases_tree_size() {
        let sim = tiny_sim();
        let with = McmlDtConfig::paper(4);
        let without = McmlDtConfig { dt_friendly: None, ..McmlDtConfig::paper(4) };
        let (m_with, s_with) = evaluate_mcml_dt(&sim, &with);
        let (m_without, s_without) = evaluate_mcml_dt(&sim, &without);
        assert!(s_with.is_some());
        assert!(s_without.is_none());
        let avg = |ms: &[SnapshotMetrics]| {
            ms.iter().map(|m| m.nt_nodes as f64).sum::<f64>() / ms.len() as f64
        };
        // The friendly correction should not make trees (much) bigger; on
        // most geometries it makes them smaller. Allow equality + slack.
        assert!(
            avg(&m_with) <= avg(&m_without) * 1.3 + 4.0,
            "with: {}, without: {}",
            avg(&m_with),
            avg(&m_without)
        );
    }
}
