//! Shared per-snapshot machinery for both pipelines.

use cip_contact::SurfaceElementInfo;
use cip_geom::{Aabb, Point};
use cip_mesh::graphs::{nodal_graph, NodalGraph, NodalGraphOptions};
use cip_mesh::{Mesh, Surface};
use cip_sim::SimResult;

/// The contact points of one snapshot: node ids and their positions,
/// parallel arrays.
#[derive(Debug, Clone)]
pub struct ContactPoints {
    /// Mesh node ids (sorted ascending, as produced by surface
    /// extraction).
    pub nodes: Vec<u32>,
    /// Positions of those nodes at this snapshot.
    pub positions: Vec<Point<3>>,
}

impl ContactPoints {
    /// Extracts the contact points of `surface` at the given positions.
    pub fn from_surface(surface: &Surface, points: &[Point<3>]) -> Self {
        let nodes = surface.contact_nodes.clone();
        let positions = nodes.iter().map(|&n| points[n as usize]).collect();
        Self { nodes, positions }
    }

    /// Number of contact points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no contact points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The part of each contact point under a mesh-node assignment
    /// (`node_parts[n]` = part of node `n`, `u32::MAX` allowed only for
    /// non-contact nodes).
    pub fn labels_from_node_parts(&self, node_parts: &[u32]) -> Vec<u32> {
        self.nodes
            .iter()
            .map(|&n| {
                let p = node_parts[n as usize];
                debug_assert_ne!(p, u32::MAX, "contact node {n} has no part");
                p
            })
            .collect()
    }
}

/// Everything both pipelines need about one snapshot, computed once.
pub struct SnapshotView {
    /// The materialized mesh at this snapshot.
    pub mesh: Mesh<3>,
    /// The two-constraint nodal graph (FE + contact work, boosted contact
    /// edges).
    pub graph2: NodalGraph,
    /// The single-constraint nodal graph (baseline FE partitioning /
    /// FEComm evaluation uses the same topology; kept separate because the
    /// baseline uses uniform edge weights).
    pub graph1: NodalGraph,
    /// Contact points.
    pub contact: ContactPoints,
    /// One entry per contact face: its node ids (for ownership), bbox,
    /// and the body it belongs to.
    pub faces: Vec<FaceView>,
}

/// A contact face as the pipelines see it.
#[derive(Debug, Clone)]
pub struct FaceView {
    /// Global node ids of the face.
    pub nodes: Vec<u32>,
    /// Bounding box at this snapshot.
    pub bbox: Aabb<3>,
    /// Body id of the owning element.
    pub body: u16,
}

impl SnapshotView {
    /// Builds the view of snapshot `i` of a simulation run.
    pub fn build(sim: &SimResult, i: usize, contact_edge_weight: i64) -> Self {
        let mesh = sim.mesh_at(i);
        let surface = &sim.snapshots[i].contact;
        let mask = surface.contact_node_mask(mesh.num_nodes());
        let graph2 = nodal_graph(
            &mesh,
            &mask,
            NodalGraphOptions { ncon: 2, contact_edge_weight, normal_edge_weight: 1 },
        );
        let graph1 = nodal_graph(&mesh, &mask, NodalGraphOptions::single_constraint());
        let contact = ContactPoints::from_surface(surface, &mesh.points);
        let faces = surface
            .faces
            .iter()
            .map(|sf| {
                let nodes: Vec<u32> = sf.face.nodes().to_vec();
                let mut bbox = Aabb::empty();
                for &n in &nodes {
                    bbox.grow(&mesh.points[n as usize]);
                }
                FaceView { nodes, bbox, body: sf.body }
            })
            .collect();
        Self { mesh, graph2, graph1, contact, faces }
    }

    /// Surface-element descriptors under a node-part assignment: bbox plus
    /// the owning part (majority part of the face's nodes).
    pub fn surface_elements(&self, node_parts: &[u32]) -> Vec<SurfaceElementInfo<3>> {
        self.faces
            .iter()
            .map(|f| SurfaceElementInfo { bbox: f.bbox, owner: face_owner(&f.nodes, node_parts) })
            .collect()
    }

    /// Body id of every contact face (parallel to
    /// [`SnapshotView::surface_elements`]).
    pub fn face_bodies(&self) -> Vec<u16> {
        self.faces.iter().map(|f| f.body).collect()
    }
}

/// The part that owns a surface element: the majority part among its
/// nodes' parts (ties broken towards the smallest part id, so ownership is
/// deterministic).
pub fn face_owner(face_nodes: &[u32], node_parts: &[u32]) -> u32 {
    debug_assert!(!face_nodes.is_empty());
    // Faces have at most 4 nodes; a tiny fixed scan beats any map.
    let mut parts = [u32::MAX; 4];
    let mut counts = [0u8; 4];
    let mut used = 0usize;
    for &n in face_nodes {
        let p = node_parts[n as usize];
        debug_assert_ne!(p, u32::MAX, "face node {n} has no part");
        match parts[..used].iter().position(|&q| q == p) {
            Some(i) => counts[i] += 1,
            None => {
                parts[used] = p;
                counts[used] = 1;
                used += 1;
            }
        }
    }
    let mut best = 0usize;
    for i in 1..used {
        if counts[i] > counts[best] || (counts[i] == counts[best] && parts[i] < parts[best]) {
            best = i;
        }
    }
    parts[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_sim::SimConfig;

    #[test]
    fn face_owner_majority_and_ties() {
        let parts = vec![0u32, 0, 1, 2, 1, 1];
        assert_eq!(face_owner(&[0, 1, 2, 3], &parts), 0); // 2x part0 beats 1x1,1x2
        assert_eq!(face_owner(&[2, 4, 5], &parts), 1);
        assert_eq!(face_owner(&[0, 2], &parts), 0, "tie -> smaller part id");
        assert_eq!(face_owner(&[3], &parts), 2);
    }

    #[test]
    fn snapshot_view_is_consistent() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let view = SnapshotView::build(&sim, 0, 5);
        assert_eq!(view.graph2.graph.ncon(), 2);
        assert_eq!(view.graph1.graph.ncon(), 1);
        assert_eq!(view.graph1.graph.nv(), view.graph2.graph.nv());
        assert_eq!(view.contact.len(), sim.snapshots[0].contact.num_contact_nodes());
        assert_eq!(view.faces.len(), sim.snapshots[0].contact.num_faces());
        // Total contact weight equals the contact-node count.
        let totals = view.graph2.graph.total_vwgt();
        assert_eq!(totals[1] as usize, view.contact.len());
    }

    #[test]
    fn contact_points_track_node_positions() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let view = SnapshotView::build(&sim, 3, 5);
        for (i, &n) in view.contact.nodes.iter().enumerate() {
            assert_eq!(view.contact.positions[i], view.mesh.points[n as usize]);
        }
    }

    #[test]
    fn labels_from_node_parts_roundtrip() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let view = SnapshotView::build(&sim, 0, 5);
        let node_parts = vec![3u32; view.mesh.num_nodes()];
        let labels = view.contact.labels_from_node_parts(&node_parts);
        assert!(labels.iter().all(|&l| l == 3));
        assert_eq!(labels.len(), view.contact.len());
    }
}
