//! The ML+RCB baseline (§3; Plimpton et al. '98, Brown et al. '00).
//!
//! Two *decoupled* decompositions:
//!
//! * the **FE phase** uses a static single-constraint multilevel partition
//!   of the nodal graph (best possible FE balance and cut);
//! * the **contact phase** uses recursive coordinate bisection over the
//!   contact points, updated incrementally each snapshot by shifting the
//!   existing cuts (UpdComm counts the points that migrate).
//!
//! The price of decoupling: each step, the updated nodal data of every
//! contact point whose two decompositions disagree must be shipped to the
//! contact processor and back (M2MComm, counted once here and twice in the
//! §5.2 totals). The paper optimizes this mapping with a maximal-weight
//! matching between the two labelings; we use the exact Hungarian
//! optimum. Global search uses the classical per-subdomain bounding-box
//! filter.

use crate::common::SnapshotView;
use crate::metrics::SnapshotMetrics;
use cip_contact::{n_remote, BboxFilter, RcbRegionFilter};
use cip_geom::RcbTree;
use cip_graph::{edge_cut, total_comm_volume, Partition};
use cip_partition::{max_weight_assignment, partition_kway, PartitionerConfig};
use cip_sim::SimResult;

/// ML+RCB configuration.
#[derive(Debug, Clone)]
pub struct MlRcbConfig {
    /// Number of parts (processors).
    pub k: usize,
    /// Multilevel partitioner settings (FE phase).
    pub partitioner: PartitionerConfig,
    /// Rebuild the RCB decomposition from scratch every snapshot instead
    /// of updating it incrementally (ablation; the baseline as published
    /// updates incrementally to keep UpdComm small).
    pub rebuild_rcb: bool,
    /// Use the RCB *regions* as the global-search descriptor instead of
    /// the per-part contact-point bounding boxes (ablation: regions cover
    /// all space — no under-approximation, but more false positives in
    /// empty space).
    pub region_filter: bool,
}

impl MlRcbConfig {
    /// The paper's baseline configuration for `k` parts.
    pub fn paper(k: usize) -> Self {
        Self {
            k,
            partitioner: PartitionerConfig { eps: vec![0.05], ..Default::default() },
            rebuild_rcb: false,
            region_filter: false,
        }
    }
}

/// Runs ML+RCB over the whole snapshot sequence.
pub fn evaluate_ml_rcb(sim: &SimResult, cfg: &MlRcbConfig) -> Vec<SnapshotMetrics> {
    assert!(!sim.is_empty(), "simulation produced no snapshots");
    let k = cfg.k;

    // ---- Static FE partition on snapshot 0 (single constraint). -------
    let view0 = SnapshotView::build(sim, 0, 1);
    let fe_asg0 = partition_kway(&view0.graph1.graph, k, &cfg.partitioner);
    let fe_node_parts = view0.graph1.assignment_on_nodes(&fe_asg0);

    // ---- Sweep. ---------------------------------------------------------
    let mut out = Vec::with_capacity(sim.len());
    let mut rcb: Option<RcbTree<3>> = None;
    // Previous snapshot's RCB part per mesh node (u32::MAX = was not a
    // contact node).
    let mut prev_rcb_parts: Vec<u32> = vec![u32::MAX; sim.base.num_nodes()];

    for i in 0..sim.len() {
        let built;
        let view: &SnapshotView = if i == 0 {
            &view0
        } else {
            built = SnapshotView::build(sim, i, 1);
            &built
        };

        // FE phase metrics under the static partition.
        let asg_now: Vec<u32> =
            view.graph1.node_of_vertex.iter().map(|&n| fe_node_parts[n as usize]).collect();
        let fe_comm = total_comm_volume(&view.graph1.graph, &asg_now);
        let cut = edge_cut(&view.graph1.graph, &asg_now) as u64;
        let part = Partition::from_assignment(&view.graph1.graph, k, asg_now);

        // Contact decomposition: RCB over the contact points.
        let weights = vec![1.0f64; view.contact.len()];
        let rcb_labels = match (&mut rcb, cfg.rebuild_rcb) {
            (Some(tree), false) => tree.update(&view.contact.positions, &weights),
            _ => {
                let (tree, labels) = RcbTree::build(&view.contact.positions, &weights, k);
                rcb = Some(tree);
                labels
            }
        };

        // UpdComm: contact points present in both snapshots whose RCB part
        // changed.
        let mut upd_comm = 0u64;
        for (ci, &n) in view.contact.nodes.iter().enumerate() {
            let old = prev_rcb_parts[n as usize];
            if i > 0 && old != u32::MAX && old != rcb_labels[ci] {
                upd_comm += 1;
            }
        }
        prev_rcb_parts.iter_mut().for_each(|p| *p = u32::MAX);
        for (ci, &n) in view.contact.nodes.iter().enumerate() {
            prev_rcb_parts[n as usize] = rcb_labels[ci];
        }

        // M2MComm: optimal (Hungarian) relabeling of RCB parts onto FE
        // parts, then count the disagreeing contact points.
        let fe_labels = view.contact.labels_from_node_parts(&fe_node_parts);
        let mut overlap = vec![0i64; k * k];
        for (ci, &rp) in rcb_labels.iter().enumerate() {
            overlap[rp as usize * k + fe_labels[ci] as usize] += 1;
        }
        let sigma = max_weight_assignment(k, &overlap);
        let matched: i64 = sigma.iter().enumerate().map(|(rp, &fp)| overlap[rp * k + fp]).sum();
        let m2m_comm = view.contact.len() as u64 - matched as u64;

        // NRemote: each RCB subdomain is described either by the bounding
        // box of its contact points (the published baseline) or by its RCB
        // region (ablation); surface elements are owned by their
        // (majority-node) RCB part.
        let mut rcb_node_parts = vec![u32::MAX; sim.base.num_nodes()];
        for (ci, &n) in view.contact.nodes.iter().enumerate() {
            rcb_node_parts[n as usize] = rcb_labels[ci];
        }
        let elements = view.surface_elements(&rcb_node_parts);
        let shipped = if cfg.region_filter {
            let tree = rcb.as_ref().expect("RCB tree exists after first snapshot");
            n_remote(&elements, &RcbRegionFilter::new(tree))
        } else {
            let filter = BboxFilter::from_points(&view.contact.positions, &rcb_labels, k);
            n_remote(&elements, &filter)
        };

        // Contact-phase balance: point counts per RCB part.
        let mut counts = vec![0u64; k];
        for &p in &rcb_labels {
            counts[p as usize] += 1;
        }
        let avg = view.contact.len() as f64 / k as f64;
        let imbalance_contact = counts.iter().copied().max().unwrap_or(0) as f64 / avg.max(1e-12);

        out.push(SnapshotMetrics {
            step: sim.snapshots[i].step,
            fe_comm,
            nt_nodes: 0,
            n_remote: shipped,
            m2m_comm,
            upd_comm,
            edge_cut: cut,
            imbalance_fe: part.imbalance(0),
            imbalance_contact,
            contact_points: view.contact.len() as u64,
            surface_elements: view.faces.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_sim::SimConfig;

    fn tiny_sim() -> SimResult {
        cip_sim::run(&SimConfig::tiny())
    }

    #[test]
    fn baseline_produces_metrics_for_every_snapshot() {
        let sim = tiny_sim();
        let metrics = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        assert_eq!(metrics.len(), sim.len());
        for m in &metrics {
            assert!(m.fe_comm > 0);
            assert_eq!(m.nt_nodes, 0, "ML+RCB builds no decision tree");
            assert!(m.imbalance_contact >= 1.0);
        }
    }

    #[test]
    fn m2m_comm_is_nonzero_for_decoupled_decompositions() {
        // The FE partition ignores geometry and the RCB partition ignores
        // the mesh; on any nontrivial problem some contact points must
        // disagree.
        let sim = tiny_sim();
        let metrics = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        let total_m2m: u64 = metrics.iter().map(|m| m.m2m_comm).sum();
        assert!(total_m2m > 0, "decoupled decompositions should disagree somewhere");
    }

    #[test]
    fn first_snapshot_has_no_update_migration() {
        let sim = tiny_sim();
        let metrics = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        assert_eq!(metrics[0].upd_comm, 0);
    }

    #[test]
    fn incremental_update_migrates_less_than_rebuild() {
        let sim = tiny_sim();
        let inc = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        let reb =
            evaluate_ml_rcb(&sim, &MlRcbConfig { rebuild_rcb: true, ..MlRcbConfig::paper(4) });
        let sum = |ms: &[SnapshotMetrics]| ms.iter().map(|m| m.upd_comm).sum::<u64>();
        // Rebuilding from scratch reshuffles labels arbitrarily; the
        // incremental update must not migrate more.
        assert!(sum(&inc) <= sum(&reb), "inc {} vs rebuild {}", sum(&inc), sum(&reb));
    }

    #[test]
    fn region_filter_ships_at_least_as_much_as_point_bboxes() {
        // RCB regions cover all space, so they can only add candidates
        // relative to the (tight) point bounding boxes... except where a
        // part's point bbox overhangs its region due to points exactly on
        // a cut plane — allow a small slack.
        let sim = tiny_sim();
        let boxes = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        let regions =
            evaluate_ml_rcb(&sim, &MlRcbConfig { region_filter: true, ..MlRcbConfig::paper(4) });
        let sum = |ms: &[SnapshotMetrics]| ms.iter().map(|m| m.n_remote).sum::<u64>();
        assert!(
            sum(&regions) as f64 >= 0.9 * sum(&boxes) as f64,
            "regions {} vs boxes {}",
            sum(&regions),
            sum(&boxes)
        );
        // Everything else identical (same decompositions).
        for (a, b) in boxes.iter().zip(regions.iter()) {
            assert_eq!(a.fe_comm, b.fe_comm);
            assert_eq!(a.m2m_comm, b.m2m_comm);
        }
    }

    #[test]
    fn fe_partition_is_balanced_at_start() {
        let sim = tiny_sim();
        let metrics = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        assert!(metrics[0].imbalance_fe <= 1.1, "imbalance {}", metrics[0].imbalance_fe);
    }

    #[test]
    fn contact_balance_maintained_by_rcb() {
        let sim = tiny_sim();
        let metrics = evaluate_ml_rcb(&sim, &MlRcbConfig::paper(4));
        // RCB rebalances every snapshot; allow slack for small point sets.
        for m in &metrics {
            assert!(
                m.imbalance_contact <= 1.6,
                "step {}: contact imbalance {}",
                m.step,
                m.imbalance_contact
            );
        }
    }
}
