//! Automatic selection of the §4.3 hybrid update period.
//!
//! The paper argues that "a hybrid approach may be the optimal choice":
//! repartition occasionally, re-induce the tree every step. *How often* to
//! repartition depends on how fast the contact set drifts and how much a
//! migration costs relative to the per-step communication. This module
//! makes that trade-off explicit with a simple linear cost model over the
//! measured metrics and selects the period that minimizes the modeled
//! total cost over a (prefix of a) snapshot sequence.

use crate::mcml_dt::{evaluate_mcml_dt, McmlDtConfig, UpdatePolicy};
use crate::metrics::SnapshotMetrics;
use cip_sim::SimResult;
use serde::Serialize;

/// Linear per-step cost model over the measured metrics.
///
/// The coefficients are relative data sizes: a halo unit is one nodal
/// state vector, a shipment is one surface element (a few nodal vectors),
/// a migrated contact point carries its full history (heavier), and a
/// repartition pays a fixed orchestration overhead.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostModel {
    /// Cost per FEComm (halo) unit.
    pub halo: f64,
    /// Cost per shipped surface element (NRemote unit).
    pub shipment: f64,
    /// Cost per migrated contact point (UpdComm unit).
    pub migration: f64,
    /// Fixed cost charged on every snapshot that repartitions.
    pub repartition_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { halo: 1.0, shipment: 2.0, migration: 4.0, repartition_overhead: 50.0 }
    }
}

impl CostModel {
    /// Modeled communication cost of one snapshot.
    pub fn step_cost(&self, m: &SnapshotMetrics) -> f64 {
        let mut c = self.halo * m.fe_comm as f64
            + self.shipment * m.n_remote as f64
            + self.migration * m.upd_comm as f64
            + 2.0 * self.halo * m.m2m_comm as f64;
        if m.upd_comm > 0 {
            c += self.repartition_overhead;
        }
        c
    }

    /// Modeled total cost of a metric sequence.
    pub fn total_cost(&self, seq: &[SnapshotMetrics]) -> f64 {
        seq.iter().map(|m| self.step_cost(m)).sum()
    }
}

/// The outcome of a period search.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyChoice {
    /// The selected update policy (period 0 encodes `Fixed`).
    pub period: usize,
    /// Modeled cost of every candidate, `(period, cost)`, in the order
    /// evaluated.
    pub costs: Vec<(usize, f64)>,
}

/// Evaluates the fixed policy plus each candidate hybrid period on the
/// sequence and returns the cheapest under `model`.
///
/// Period `0` stands for the fixed policy (never repartition); other
/// candidates must be `>= 1`.
pub fn select_hybrid_period(
    sim: &SimResult,
    base: &McmlDtConfig,
    candidate_periods: &[usize],
    model: &CostModel,
) -> PolicyChoice {
    let mut costs = Vec::new();
    let mut best: Option<(f64, usize)> = None;
    let mut consider = |period: usize, cost: f64, costs: &mut Vec<(usize, f64)>| {
        costs.push((period, cost));
        if best.is_none_or(|(bc, _)| cost < bc) {
            best = Some((cost, period));
        }
    };

    // Fixed policy baseline.
    let fixed_cfg = McmlDtConfig { update: UpdatePolicy::Fixed, ..base.clone() };
    let (fixed_metrics, _) = evaluate_mcml_dt(sim, &fixed_cfg);
    consider(0, model.total_cost(&fixed_metrics), &mut costs);

    for &period in candidate_periods {
        assert!(period >= 1, "hybrid periods must be >= 1 (use 0 only for Fixed)");
        let cfg = McmlDtConfig { update: UpdatePolicy::Hybrid { period }, ..base.clone() };
        let (metrics, _) = evaluate_mcml_dt(sim, &cfg);
        consider(period, model.total_cost(&metrics), &mut costs);
    }

    PolicyChoice { period: best.expect("at least the fixed policy was evaluated").1, costs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_sim::SimConfig;

    #[test]
    fn step_cost_weights_components() {
        let model =
            CostModel { halo: 1.0, shipment: 2.0, migration: 4.0, repartition_overhead: 10.0 };
        let m = SnapshotMetrics {
            fe_comm: 100,
            n_remote: 10,
            upd_comm: 5,
            m2m_comm: 3,
            ..Default::default()
        };
        // 100 + 20 + 20 + 6 + overhead 10
        assert!((model.step_cost(&m) - 156.0).abs() < 1e-9);
        let quiet = SnapshotMetrics { fe_comm: 100, ..Default::default() };
        assert!((model.step_cost(&quiet) - 100.0).abs() < 1e-9, "no overhead when idle");
    }

    #[test]
    fn selection_returns_a_candidate_and_is_minimal() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let base = McmlDtConfig::paper(3);
        let choice = select_hybrid_period(&sim, &base, &[3, 6], &CostModel::default());
        assert_eq!(choice.costs.len(), 3);
        let best_cost = choice.costs.iter().find(|(p, _)| *p == choice.period).unwrap().1;
        for (_, c) in &choice.costs {
            assert!(best_cost <= *c + 1e-9);
        }
    }

    #[test]
    fn expensive_migration_prefers_fixed_policy() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let base = McmlDtConfig::paper(3);
        let model = CostModel { migration: 1e9, repartition_overhead: 1e9, ..CostModel::default() };
        let choice = select_hybrid_period(&sim, &base, &[2], &model);
        assert_eq!(choice.period, 0, "prohibitive migration must select Fixed");
    }

    #[test]
    fn total_cost_is_sum_of_steps() {
        let model = CostModel::default();
        let seq = vec![
            SnapshotMetrics { fe_comm: 10, ..Default::default() },
            SnapshotMetrics { fe_comm: 20, ..Default::default() },
        ];
        assert!((model.total_cost(&seq) - 30.0).abs() < 1e-9);
    }
}
