//! Human-readable decomposition quality reports.
//!
//! Pulls the quality signals scattered across the stack — balance per
//! constraint, edge-cut, communication volume, subdomain connectivity,
//! search-tree statistics — into one struct with a formatted rendering,
//! for the CLI and for users validating their own decompositions.

use cip_dtree::DecisionTree;
use cip_graph::{edge_cut, part_fragments, total_comm_volume, Graph, Partition};
use serde::Serialize;
use std::fmt::Write as _;

/// A quality snapshot of one decomposition.
#[derive(Debug, Clone, Serialize)]
pub struct QualityReport {
    /// Part count.
    pub k: usize,
    /// Vertices in the partitioned graph.
    pub num_vertices: usize,
    /// Edge-cut of the assignment.
    pub edge_cut: i64,
    /// Total communication volume (FEComm).
    pub comm_volume: u64,
    /// Load imbalance per constraint.
    pub imbalance: Vec<f64>,
    /// Number of connected fragments per part (1 = connected).
    pub fragments: Vec<usize>,
    /// Parts that are disconnected (fragments > 1).
    pub disconnected_parts: usize,
    /// Search-tree statistics, when a tree was supplied.
    pub tree_nodes: Option<usize>,
    /// Search-tree depth, when a tree was supplied.
    pub tree_depth: Option<usize>,
    /// Leaves describing the most fragmented subdomain.
    pub max_leaves_per_part: Option<usize>,
}

/// Builds the quality report of `assignment` on `g`, optionally including
/// the statistics of a contact-search tree.
pub fn quality_report(
    g: &Graph,
    assignment: &[u32],
    k: usize,
    tree: Option<&DecisionTree<3>>,
) -> QualityReport {
    let part = Partition::from_assignment(g, k, assignment.to_vec());
    let fragments = part_fragments(g, assignment, k);
    let disconnected = fragments.iter().filter(|&&f| f > 1).count();
    let (tree_nodes, tree_depth, max_leaves) = match tree {
        Some(t) => {
            let s = t.stats(k);
            (
                Some(s.nodes),
                Some(s.depth),
                Some(s.leaves_per_part.iter().copied().max().unwrap_or(0)),
            )
        }
        None => (None, None, None),
    };
    QualityReport {
        k,
        num_vertices: g.nv(),
        edge_cut: edge_cut(g, assignment),
        comm_volume: total_comm_volume(g, assignment),
        imbalance: (0..g.ncon()).map(|j| part.imbalance(j)).collect(),
        fragments,
        disconnected_parts: disconnected,
        tree_nodes,
        tree_depth,
        max_leaves_per_part: max_leaves,
    }
}

impl QualityReport {
    /// Renders a terminal-friendly summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "decomposition: {} vertices into {} parts", self.num_vertices, self.k);
        let _ = writeln!(
            s,
            "  edge cut {} | comm volume {} | imbalance {}",
            self.edge_cut,
            self.comm_volume,
            self.imbalance.iter().map(|i| format!("{i:.3}")).collect::<Vec<_>>().join(" / ")
        );
        let _ = writeln!(
            s,
            "  connectivity: {} of {} parts disconnected (worst: {} fragments)",
            self.disconnected_parts,
            self.k,
            self.fragments.iter().copied().max().unwrap_or(0)
        );
        if let (Some(n), Some(d)) = (self.tree_nodes, self.tree_depth) {
            let _ = writeln!(
                s,
                "  search tree: {} nodes, depth {}, worst subdomain needs {} leaves",
                n,
                d,
                self.max_leaves_per_part.unwrap_or(0)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_dtree::{induce, DtreeConfig};
    use cip_geom::Point;
    use cip_graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn report_on_clean_halves() {
        let g = path(8);
        let asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let r = quality_report(&g, &asg, 2, None);
        assert_eq!(r.edge_cut, 1);
        assert_eq!(r.comm_volume, 2);
        assert_eq!(r.disconnected_parts, 0);
        assert_eq!(r.fragments, vec![1, 1]);
        assert!(r.tree_nodes.is_none());
        let text = r.render();
        assert!(text.contains("8 vertices into 2 parts"));
        assert!(!text.contains("search tree"));
    }

    #[test]
    fn report_detects_fragmentation() {
        let g = path(6);
        // Part 0 in two pieces.
        let asg = vec![0, 1, 0, 0, 1, 1];
        let r = quality_report(&g, &asg, 2, None);
        assert_eq!(r.disconnected_parts, 2);
        assert_eq!(r.fragments, vec![2, 2]);
    }

    #[test]
    fn report_includes_tree_stats() {
        let g = path(4);
        let asg = vec![0, 0, 1, 1];
        let pts: Vec<Point<3>> = (0..4).map(|i| Point::new([i as f64, 0.0, 0.0])).collect();
        let tree = induce(&pts, &asg, 2, &DtreeConfig::search_tree());
        let r = quality_report(&g, &asg, 2, Some(&tree));
        assert_eq!(r.tree_nodes, Some(3));
        assert_eq!(r.max_leaves_per_part, Some(1));
        assert!(r.render().contains("search tree: 3 nodes"));
    }
}
