//! The a-priori-known-contact method (§3, first problem class).
//!
//! When the portions of the mesh that will come into contact are known in
//! advance (e.g. a die stamping a blank), the classical approach [Hoover
//! et al., ParaDyn] augments the nodal graph with *virtual edges* between
//! the surfaces that will touch and runs a two-constraint partitioning on
//! it. Minimizing the edge-cut then co-locates the contacting surfaces on
//! the same processor, so most contact pairs need no communication at all.
//!
//! This module implements that method as a third algorithm, both because
//! the paper surveys it and because it makes a sharp experimental point:
//! on *predictable* contact it beats the general-purpose schemes, and on
//! *unpredictable* contact (the paper's problem class) its advantage
//! evaporates — which is exactly why MCML+DT exists.

use crate::common::SnapshotView;
use crate::metrics::SnapshotMetrics;
use cip_contact::{n_remote, DtreeFilter};
use cip_dtree::{induce, DtreeConfig};
use cip_graph::{edge_cut, total_comm_volume, Graph, GraphBuilder, Partition};
use cip_partition::{partition_kway, PartitionerConfig};
use cip_sim::SimResult;

/// Configuration of the known-contact method.
#[derive(Debug, Clone)]
pub struct KnownContactConfig {
    /// Number of parts.
    pub k: usize,
    /// Weight of the virtual edges between predicted contact pairs.
    pub virtual_edge_weight: i64,
    /// Capture distance for predicting which contact points will touch
    /// (pairs of different bodies within this distance at the *prediction
    /// snapshot* get a virtual edge).
    pub prediction_radius: f64,
    /// Snapshot used to predict the contacts (0 = the initial state, as a
    /// real pre-simulation prediction would use).
    pub prediction_snapshot: usize,
    /// Partitioner settings.
    pub partitioner: PartitionerConfig,
}

impl KnownContactConfig {
    /// Reasonable defaults for `k` parts.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            virtual_edge_weight: 10,
            prediction_radius: 3.0,
            prediction_snapshot: 0,
            partitioner: PartitionerConfig::default(),
        }
    }
}

/// Builds the augmented graph: the two-constraint nodal graph plus
/// virtual edges between predicted contacting point pairs.
///
/// Prediction: for contact points of *different bodies* within
/// `radius` of each other (in the prediction snapshot's configuration,
/// with the projectile's future path accounted for by ignoring the z
/// coordinate — the projectile travels in -z), add an edge of
/// `virtual_edge_weight`.
fn augmented_graph(view: &SnapshotView, cfg: &KnownContactConfig) -> Graph {
    let base = &view.graph2.graph;
    let mut b = GraphBuilder::new(base.nv(), base.ncon());
    for v in 0..base.nv() as u32 {
        b.set_vwgt(v, base.vwgt(v));
    }
    for v in 0..base.nv() as u32 {
        for (u, w) in base.neighbors(v) {
            if u > v {
                b.add_edge(v, u, w);
            }
        }
    }

    // Predicted contacts: xy-proximity between contact points of
    // different bodies (the projectile bores straight down, so xy overlap
    // predicts eventual touching).
    let n = view.contact.len();
    // Body of each contact point: body of any face containing it.
    let mut body = vec![u16::MAX; view.mesh.num_nodes()];
    for f in &view.faces {
        for &node in &f.nodes {
            body[node as usize] = f.body;
        }
    }
    let r2 = cfg.prediction_radius * cfg.prediction_radius;
    for i in 0..n {
        let ni = view.contact.nodes[i];
        let pi = view.contact.positions[i];
        for j in i + 1..n {
            let nj = view.contact.nodes[j];
            if body[ni as usize] == body[nj as usize] {
                continue;
            }
            let pj = view.contact.positions[j];
            let dx = pi[0] - pj[0];
            let dy = pi[1] - pj[1];
            if dx * dx + dy * dy <= r2 {
                let (gi, gj) = (
                    view.graph2.vertex_of_node[ni as usize],
                    view.graph2.vertex_of_node[nj as usize],
                );
                b.add_edge(gi, gj, cfg.virtual_edge_weight);
            }
        }
    }
    b.build()
}

/// Runs the known-contact method over the sequence: partition the
/// augmented snapshot-`prediction_snapshot` graph once, evaluate the same
/// metrics as the other pipelines (search filter: decision tree, like
/// MCML+DT — the method only changes the partition).
pub fn evaluate_known_contact(sim: &SimResult, cfg: &KnownContactConfig) -> Vec<SnapshotMetrics> {
    assert!(!sim.is_empty());
    let k = cfg.k;
    let view_p = SnapshotView::build(sim, cfg.prediction_snapshot, 5);
    let g_aug = augmented_graph(&view_p, cfg);
    let asg = partition_kway(&g_aug, k, &cfg.partitioner);
    let node_parts = view_p.graph2.assignment_on_nodes(&asg);

    let mut out = Vec::with_capacity(sim.len());
    for i in 0..sim.len() {
        let view = SnapshotView::build(sim, i, 5);
        let asg_now: Vec<u32> =
            view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
        let fe_comm = total_comm_volume(&view.graph2.graph, &asg_now);
        let cut = edge_cut(&view.graph1.graph, &asg_now) as u64;
        let part = Partition::from_assignment(&view.graph2.graph, k, asg_now);

        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let elements = view.surface_elements(&node_parts);
        let shipped = n_remote(&elements, &DtreeFilter::new(&tree, k));

        out.push(SnapshotMetrics {
            step: sim.snapshots[i].step,
            fe_comm,
            nt_nodes: tree.num_nodes() as u64,
            n_remote: shipped,
            m2m_comm: 0,
            upd_comm: 0,
            edge_cut: cut,
            imbalance_fe: part.imbalance(0),
            imbalance_contact: part.imbalance(1),
            contact_points: view.contact.len() as u64,
            surface_elements: view.faces.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_sim::SimConfig;

    #[test]
    fn augmented_graph_adds_cross_body_edges() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let view = SnapshotView::build(&sim, 0, 5);
        let cfg = KnownContactConfig::new(3);
        let aug = augmented_graph(&view, &cfg);
        assert_eq!(aug.nv(), view.graph2.graph.nv());
        assert!(
            aug.ne() > view.graph2.graph.ne(),
            "prediction must add virtual edges ({} vs {})",
            aug.ne(),
            view.graph2.graph.ne()
        );
        aug.validate().unwrap();
    }

    #[test]
    fn pipeline_produces_balanced_metrics() {
        let sim = cip_sim::run(&SimConfig::tiny());
        let cfg = KnownContactConfig::new(3);
        let metrics = evaluate_known_contact(&sim, &cfg);
        assert_eq!(metrics.len(), sim.len());
        assert!(metrics[0].imbalance_fe <= 1.2, "{}", metrics[0].imbalance_fe);
        assert!(metrics.iter().all(|m| m.fe_comm > 0));
        assert!(metrics.iter().all(|m| m.m2m_comm == 0));
    }

    /// Cross-owner true contact pairs under a node partition — the cost
    /// the known-contact method is designed to eliminate.
    fn remote_true_pairs(
        sim: &SimResult,
        snapshot: usize,
        node_parts: &[u32],
        tolerance: f64,
    ) -> (usize, usize) {
        let view = SnapshotView::build(sim, snapshot, 5);
        let elements = view.surface_elements(node_parts);
        let bodies = view.face_bodies();
        let pairs = cip_contact::serial_contact_pairs(&elements, &bodies, tolerance);
        let remote = pairs
            .iter()
            .filter(|p| elements[p.a as usize].owner != elements[p.b as usize].owner)
            .count();
        (remote, pairs.len())
    }

    #[test]
    fn colocation_makes_true_contacts_local() {
        // Mid-penetration, the known-contact partition (which saw the
        // prediction) should keep a larger share of the *actual* contact
        // pairs on one processor than a geometry-blind MCML partition.
        let sim = cip_sim::run(&SimConfig::tiny());
        let k = 3;
        let snapshot = sim.len() / 2;

        // Known-contact node partition.
        let kc_cfg = KnownContactConfig::new(k);
        let view_p = SnapshotView::build(&sim, 0, 5);
        let g_aug = augmented_graph(&view_p, &kc_cfg);
        let kc_asg = partition_kway(&g_aug, k, &kc_cfg.partitioner);
        let kc_parts = view_p.graph2.assignment_on_nodes(&kc_asg);

        // Plain two-constraint partition (no prediction).
        let plain_asg = partition_kway(&view_p.graph2.graph, k, &PartitionerConfig::default());
        let plain_parts = view_p.graph2.assignment_on_nodes(&plain_asg);

        let (kc_remote, kc_total) = remote_true_pairs(&sim, snapshot, &kc_parts, 0.4);
        let (pl_remote, pl_total) = remote_true_pairs(&sim, snapshot, &plain_parts, 0.4);
        assert!(kc_total > 0 && pl_total > 0, "workload must produce contacts");
        let kc_frac = kc_remote as f64 / kc_total as f64;
        let pl_frac = pl_remote as f64 / pl_total as f64;
        assert!(
            kc_frac <= pl_frac + 0.05,
            "known-contact remote fraction {kc_frac:.2} should not exceed plain {pl_frac:.2}"
        );
    }
}
