//! MCML+DT — multi-constraint mesh partitioning for contact/impact
//! computations.
//!
//! This crate is the paper's contribution assembled from the substrate
//! crates:
//!
//! * [`dt_friendly`] — the §4.2 decision-tree-friendly partition
//!   correction: induce a `max_p`/`max_i`-stopped tree over *all* mesh
//!   nodes, relabel each leaf to its majority part, contract the leaves
//!   into the region graph `G'`, and run multi-constraint k-way
//!   refinement on `G'` so the final subdomain boundaries are piecewise
//!   axes-parallel;
//! * [`mcml_dt`] — the full MCML+DT pipeline over a snapshot sequence:
//!   two-constraint nodal-graph partitioning, per-snapshot search-tree
//!   induction, and the three §4.3 update policies (fixed partition +
//!   re-induced tree, periodic repartitioning, per-step repartitioning);
//! * [`ml_rcb`] — the ML+RCB baseline (Plimpton et al.): single-constraint
//!   mesh partition for the FE phase, incremental RCB over the contact
//!   points for the search phase, Hungarian-optimized mesh-to-mesh
//!   mapping, bounding-box global-search filter;
//! * [`metrics`] — the six evaluation metrics of §5.1 (FEComm, NTNodes,
//!   NRemote, M2MComm, UpdComm, plus balance diagnostics) and the
//!   aggregation used by Table 1;
//! * [`comm`] — per-rank traffic matrices for each communication kind
//!   (the paper reports totals; the bottleneck rank is what bounds the
//!   step time on a real machine);
//! * [`policy`] — automatic selection of the §4.3 hybrid repartitioning
//!   period under an explicit communication cost model;
//! * [`known_contact`] — the a-priori-known-contact method the paper's §3
//!   surveys (virtual edges between predicted contact pairs), for
//!   comparison on predictable vs unpredictable contact.

pub mod comm;
pub mod common;
pub mod dt_friendly;
pub mod known_contact;
pub mod mcml_dt;
pub mod metrics;
pub mod ml_rcb;
pub mod policy;
pub mod report;

pub use comm::{halo_traffic, m2m_traffic, shipment_traffic, RankTraffic};
pub use common::{face_owner, ContactPoints, FaceView, SnapshotView};
pub use dt_friendly::{dt_friendly_correct, recommended_max_pi, DtFriendlyConfig, DtFriendlyStats};
pub use known_contact::{evaluate_known_contact, KnownContactConfig};
pub use mcml_dt::{evaluate_mcml_dt, McmlDtConfig, RankLoss, RepartitionMethod, UpdatePolicy};
pub use metrics::{average_metrics, results_document, MetricsRow, SnapshotMetrics, RESULTS_SCHEMA};
pub use ml_rcb::{evaluate_ml_rcb, MlRcbConfig};
pub use policy::{select_hybrid_period, CostModel, PolicyChoice};
pub use report::{quality_report, QualityReport};
