//! Diffusion-based repartitioning.
//!
//! The paper's §4.3 cites the multilevel diffusion repartitioners of
//! Schloegel, Karypis & Kumar as the way to update a decomposition after
//! the mesh changes. This module implements the *local diffusion* family:
//! rather than partitioning from scratch and remapping labels
//! ([`crate::repart`]), start from the previous assignment and migrate
//! weight locally, part-to-part, until every constraint is balanced again,
//! then polish the cut with k-way refinement.
//!
//! Compared with scratch-remap, diffusion migrates far fewer vertices when
//! the imbalance is small (the common case between adjacent time steps of
//! a contact simulation) at the price of a slightly worse cut — the
//! classical repartitioning trade-off the paper's §2 describes.

use crate::config::PartitionerConfig;
use crate::kway::{balance_kway, refine_kway};
use cip_graph::Graph;

/// Repartitions by local diffusion from the previous assignment `old`.
///
/// Entries of `old` equal to `u32::MAX` (vertices with no previous home,
/// e.g. newly exposed nodes) are first adopted by the neighboring part
/// with the strongest connection (or part 0 for isolated vertices); then
/// weight diffuses out of over-capacity parts and the cut is refined.
pub fn diffusion_repartition(
    g: &Graph,
    k: usize,
    old: &[u32],
    cfg: &PartitionerConfig,
) -> Vec<u32> {
    assert_eq!(old.len(), g.nv(), "one previous part per vertex");
    let mut asg: Vec<u32> = old.to_vec();

    // Adopt orphans: strongest-connected neighbor part wins; isolated
    // orphans go to part 0.
    let mut conn = vec![0i64; k];
    #[allow(clippy::needless_range_loop)] // v indexes asg and is a vertex id
    for v in 0..g.nv() {
        if asg[v] != u32::MAX {
            debug_assert!((asg[v] as usize) < k, "old part id out of range");
            continue;
        }
        conn.iter_mut().for_each(|c| *c = 0);
        let mut best: Option<(i64, u32)> = None;
        for (u, w) in g.neighbors(v as u32) {
            let p = old[u as usize];
            if p == u32::MAX {
                continue;
            }
            conn[p as usize] += w;
            let c = conn[p as usize];
            if best.is_none_or(|(bc, _)| c > bc) {
                best = Some((c, p));
            }
        }
        asg[v] = best.map_or(0, |(_, p)| p);
    }

    // Diffuse weight out of overloaded parts, then polish.
    balance_kway(g, k, &mut asg, cfg);
    refine_kway(g, k, &mut asg, cfg);
    balance_kway(g, k, &mut asg, cfg);
    asg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repart::{migration_count, repartition};
    use cip_graph::{GraphBuilder, Partition};

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, 1);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn balanced_input_is_barely_touched() {
        let g = grid(12, 12);
        // Perfect halves.
        let old: Vec<u32> = (0..144).map(|v| u32::from(v % 12 >= 6)).collect();
        let cfg = PartitionerConfig::with_seed(3);
        let new = diffusion_repartition(&g, 2, &old, &cfg);
        assert_eq!(migration_count(&old, &new), 0, "already balanced and optimal");
    }

    #[test]
    fn mild_imbalance_migrates_little() {
        let g = grid(12, 12);
        // Slightly lopsided split: 84 / 60.
        let old: Vec<u32> = (0..144).map(|v| u32::from(v % 12 >= 7)).collect();
        let cfg = PartitionerConfig::with_seed(5);
        let new = diffusion_repartition(&g, 2, &old, &cfg);
        let p = Partition::from_assignment(&g, 2, new.clone());
        assert!(p.imbalance(0) <= 1.06, "imbalance {}", p.imbalance(0));
        let moved = migration_count(&old, &new);
        // Only the excess (~12 vertices) needs to move, plus slack.
        assert!(moved <= 30, "diffusion moved {moved} vertices");
    }

    #[test]
    fn diffusion_migrates_less_than_scratch_remap_under_mild_change() {
        let g = grid(16, 16);
        let k = 4;
        let cfg = PartitionerConfig::with_seed(7);
        let base = crate::rb::partition_kway(&g, k, &cfg);
        // Perturb: move one column's worth of vertices to the wrong part.
        let mut old = base.clone();
        for v in 0..16 {
            old[v * 16] = (old[v * 16] + 1) % k as u32;
        }
        let diff = diffusion_repartition(&g, k, &old, &cfg);
        let scratch = repartition(&g, k, &old, &PartitionerConfig::with_seed(8));
        let dm = migration_count(&old, &diff);
        let sm = migration_count(&old, &scratch);
        assert!(dm <= sm, "diffusion ({dm}) should not migrate more than scratch-remap ({sm})");
        let p = Partition::from_assignment(&g, k, diff);
        assert!(p.imbalance(0) <= 1.08, "imbalance {}", p.imbalance(0));
    }

    #[test]
    fn orphans_are_adopted_by_connected_parts() {
        let g = grid(6, 6);
        let mut old: Vec<u32> = (0..36).map(|v| u32::from(v % 6 >= 3)).collect();
        // Orphan an interior vertex of the left half.
        old[7] = u32::MAX;
        let cfg = PartitionerConfig::with_seed(1);
        let new = diffusion_repartition(&g, 2, &old, &cfg);
        assert!(new.iter().all(|&p| p < 2));
        // Vertex 7 is surrounded by part-0 vertices; it must join part 0.
        assert_eq!(new[7], 0);
    }

    #[test]
    fn fully_orphaned_input_still_yields_valid_partition() {
        let g = grid(8, 8);
        let old = vec![u32::MAX; 64];
        let cfg = PartitionerConfig::with_seed(2);
        let new = diffusion_repartition(&g, 4, &old, &cfg);
        assert!(new.iter().all(|&p| p < 4));
        let p = Partition::from_assignment(&g, 4, new);
        // Everything collapsed to part 0 first; balancing must spread it.
        assert!(p.imbalance(0) <= 1.10, "imbalance {}", p.imbalance(0));
    }
}
