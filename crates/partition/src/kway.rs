//! Boundary-driven multi-constraint `k`-way refinement and balancing.
//!
//! This is the refinement primitive the paper's §4.2 relies on twice:
//! once as the final polish of the initial multi-constraint partitioning,
//! and once on the leaf-contracted region graph `G'` after the
//! majority-relabel step, where each vertex is a whole axis-parallel
//! region, so every move provably preserves the piecewise axes-parallel
//! boundary geometry.
//!
//! The implementation follows the METIS id/ed discipline instead of
//! recomputing gains from scratch: a [`RefineWorkspace`] keeps, per
//! vertex, the internal degree `id[v]` (edge weight into the own part)
//! and the graph-constant weighted degree `tdeg[v]`; the external degree
//! is `ed = tdeg - id` and a vertex is *boundary* iff `ed > 0`. Every
//! move updates `id` of the moved vertex and its neighbors in `O(deg)`
//! and keeps an incremental boundary list in sync, so sweeps touch only
//! boundary vertices and [`balance_kway`] picks candidates from the
//! boundary list instead of scanning all `V` vertices per move.
//!
//! Two sweep schedules implement the same move rule:
//!
//! * **sequential** (below `parallel_threshold`): the boundary snapshot is
//!   visited in seeded random order, committing each strictly-improving
//!   feasible move immediately — the classic greedy sweep.
//! * **parallel** (at or above `parallel_threshold`): propose-then-resolve
//!   rounds, mirroring the coarsening matcher. Every boundary vertex
//!   computes its best strictly-positive feasible move against a frozen
//!   assignment snapshot (in parallel); a vertex *wins* its round iff its
//!   `(gain, seeded rank)` priority beats every proposing neighbor, so
//!   the committed set is an independent set and the cut drops by exactly
//!   the sum of the winning gains; winners then commit in priority order
//!   under live balance caps. Every step is a pure function of the
//!   previous snapshot, so the result is **bit-identical at any rayon
//!   thread count**.

use crate::config::PartitionerConfig;
use cip_graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fm::FmScratch;

/// Reusable scratch for the whole uncoarsening path: k-way id/ed degrees
/// and boundary set, per-part weights and caps, the parallel sweep's
/// proposal tables, the 2-way FM scratch, and the projection ping-pong
/// buffer. Create one per multilevel call (or hold one across calls) and
/// every refinement pass, level and restart reuses it — zero steady-state
/// heap allocation on the sequential paths.
#[derive(Debug, Default)]
pub struct RefineWorkspace {
    /// 2-way FM scratch (see `fm.rs`).
    pub(crate) fm: FmScratch,
    /// Projection ping-pong buffer for [`crate::Hierarchy::project_into`].
    pub(crate) proj: Vec<u32>,
    /// Weighted degree per vertex (graph-constant within one call).
    tdeg: Vec<i64>,
    /// Edge weight from `v` into its own part (`ed = tdeg - id`).
    id: Vec<i64>,
    /// Boundary vertices (every `v` with `ed[v] > 0`), unordered.
    bnd: Vec<u32>,
    /// Position of `v` in `bnd`, or `u32::MAX` when interior.
    bnd_pos: Vec<u32>,
    /// Per-part weights (`k * ncon`, part-major).
    pwgts: Vec<i64>,
    /// Per-part weight caps (`k * ncon`).
    caps: Vec<i64>,
    /// Total vertex weight per constraint (derived from `pwgts`, avoiding
    /// the allocating `Graph::total_vwgt`).
    totals: Vec<i64>,
    /// Per-vertex (part, weight) connectivity scratch.
    conn: Vec<(u32, i64)>,
    /// Sequential sweep: the shuffled boundary snapshot.
    order: Vec<u32>,
    /// Parallel sweep: per-vertex proposed gain (i64::MIN = no proposal).
    prop_gain: Vec<i64>,
    /// Parallel sweep: per-vertex proposed destination part.
    prop_to: Vec<u32>,
    /// Parallel sweep: seeded priority rank per vertex.
    rank: Vec<u32>,
    /// Parallel sweep: this round's winners.
    winners: Vec<u32>,
    /// Parallel sweep: per-boundary-position win flags (resolve scratch).
    win_flags: Vec<bool>,
    /// Greedy-growing frontier heap for `bisect::grow_once` restarts.
    pub(crate) grow_heap: BinaryHeap<(i64, Reverse<u32>)>,
    /// Greedy-growing per-vertex frontier gains.
    pub(crate) grow_gains: Vec<i64>,
    /// Greedy-growing side-0 membership flags.
    pub(crate) grow_in0: Vec<bool>,
    /// Greedy-growing assignment buffer, reused across attempts.
    pub(crate) grow_asg: Vec<u32>,
}

impl RefineWorkspace {
    /// A workspace with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves every per-vertex buffer for graphs up to `nv`
    /// vertices, so a following uncoarsening loop never reallocates.
    pub fn reserve(&mut self, nv: usize) {
        self.proj.reserve(nv);
        self.tdeg.reserve(nv);
        self.id.reserve(nv);
        self.bnd.reserve(nv);
        self.bnd_pos.reserve(nv);
        self.order.reserve(nv);
        self.prop_gain.reserve(nv);
        self.prop_to.reserve(nv);
        self.rank.reserve(nv);
        self.winners.reserve(nv);
        self.win_flags.reserve(nv);
        self.grow_heap.reserve(nv);
        self.grow_gains.reserve(nv);
        self.grow_in0.reserve(nv);
        self.grow_asg.reserve(nv);
    }

    /// (Re)derives degrees, boundary list, part weights and caps from
    /// `asg`. Gain initialization (the `id` sweep) runs in parallel on
    /// graphs at or above `cfg.parallel_threshold` vertices; both paths
    /// write identical contents.
    fn init_kway(&mut self, g: &Graph, k: usize, asg: &[u32], cfg: &PartitionerConfig) {
        let nv = g.nv();
        let ncon = g.ncon();
        self.tdeg.clear();
        self.tdeg.resize(nv, 0);
        self.id.clear();
        self.id.resize(nv, 0);
        self.bnd.clear();
        self.bnd_pos.clear();
        self.bnd_pos.resize(nv, u32::MAX);
        self.pwgts.clear();
        self.pwgts.resize(k * ncon, 0);
        self.conn.reserve(16);

        if nv >= cfg.parallel_threshold {
            let (tdeg, id) = (&mut self.tdeg, &mut self.id);
            tdeg.par_iter_mut().zip(id.par_iter_mut()).enumerate().for_each(|(v, (td, idv))| {
                let v = v as u32;
                let own = asg[v as usize];
                for (u, w) in g.neighbors(v) {
                    *td += w;
                    if asg[u as usize] == own {
                        *idv += w;
                    }
                }
            });
        } else {
            for v in 0..nv as u32 {
                let own = asg[v as usize];
                let mut td = 0i64;
                let mut idv = 0i64;
                for (u, w) in g.neighbors(v) {
                    td += w;
                    if asg[u as usize] == own {
                        idv += w;
                    }
                }
                self.tdeg[v as usize] = td;
                self.id[v as usize] = idv;
            }
        }
        for v in 0..nv as u32 {
            if self.tdeg[v as usize] > self.id[v as usize] {
                self.bnd_pos[v as usize] = self.bnd.len() as u32;
                self.bnd.push(v);
            }
        }
        for (v, &p) in asg.iter().enumerate() {
            let base = p as usize * ncon;
            for (j, w) in g.vwgt(v as u32).iter().enumerate() {
                self.pwgts[base + j] += w;
            }
        }

        // Uniform per-part caps from the imbalance tolerances. The totals
        // come from the freshly built part weights, not the allocating
        // `Graph::total_vwgt`.
        self.totals.clear();
        self.totals.resize(ncon, 0);
        for p in 0..k {
            for j in 0..ncon {
                self.totals[j] += self.pwgts[p * ncon + j];
            }
        }
        self.caps.clear();
        for _ in 0..k {
            for j in 0..ncon {
                let t = self.totals[j];
                self.caps.push(((1.0 + cfg.eps_for(j)) * t as f64 / k as f64).ceil() as i64);
            }
        }
    }

    /// Re-syncs `v`'s boundary membership with its current `ed`.
    #[inline]
    fn sync_bnd(&mut self, v: u32) {
        let on = self.tdeg[v as usize] > self.id[v as usize];
        let pos = self.bnd_pos[v as usize];
        if on && pos == u32::MAX {
            self.bnd_pos[v as usize] = self.bnd.len() as u32;
            self.bnd.push(v);
        } else if !on && pos != u32::MAX {
            let last = *self.bnd.last().unwrap();
            self.bnd.swap_remove(pos as usize);
            if last != v {
                self.bnd_pos[last as usize] = pos;
            }
            self.bnd_pos[v as usize] = u32::MAX;
        }
    }

    /// Moves `v` to part `to`, given `v`'s edge weight into `to`
    /// (`conn_to`). Updates `asg`, part weights, id degrees and boundary
    /// membership of `v` and its neighbors in `O(deg)`.
    fn apply_move(&mut self, g: &Graph, asg: &mut [u32], v: u32, to: u32, conn_to: i64) {
        let from = asg[v as usize];
        debug_assert_ne!(from, to);
        let ncon = g.ncon();
        let fb = from as usize * ncon;
        let tb = to as usize * ncon;
        for (j, w) in g.vwgt(v).iter().enumerate() {
            self.pwgts[fb + j] -= w;
            self.pwgts[tb + j] += w;
        }
        asg[v as usize] = to;
        self.id[v as usize] = conn_to;
        self.sync_bnd(v);
        for (u, w) in g.neighbors(v) {
            if asg[u as usize] == from {
                self.id[u as usize] -= w;
            } else if asg[u as usize] == to {
                self.id[u as usize] += w;
            }
            self.sync_bnd(u);
        }
    }

    /// Whether moving `v` into part `p` keeps every constraint of `p`
    /// within its cap.
    #[inline]
    fn fits(&self, g: &Graph, v: u32, p: u32, ncon: usize) -> bool {
        let base = p as usize * ncon;
        g.vwgt(v).iter().enumerate().all(|(j, &w)| self.pwgts[base + j] + w <= self.caps[base + j])
    }
}

/// The connectivity of `v` to each part among its neighbors:
/// returns (part, total edge weight) pairs, unsorted.
fn connectivity(g: &Graph, asg: &[u32], v: u32, out: &mut Vec<(u32, i64)>) {
    out.clear();
    for (u, w) in g.neighbors(v) {
        let p = asg[u as usize];
        match out.iter_mut().find(|(q, _)| *q == p) {
            Some((_, acc)) => *acc += w,
            None => out.push((p, w)),
        }
    }
}

/// Greedy `k`-way refinement: sweeps the boundary vertices, moving each to
/// the adjacent part with the highest positive gain that keeps every
/// constraint within its cap. Stops when a sweep makes no move or after
/// `cfg.kway_passes` sweeps. Graphs at or above `cfg.parallel_threshold`
/// vertices use the deterministic parallel propose-then-resolve sweep
/// (bit-identical at any thread count); smaller graphs use the seeded
/// sequential sweep.
///
/// Never worsens the edge-cut and never moves a vertex into a part that
/// would exceed its cap (moves out of over-cap parts are always allowed).
pub fn refine_kway(g: &Graph, k: usize, asg: &mut [u32], cfg: &PartitionerConfig) {
    refine_kway_with(g, k, asg, cfg, &mut RefineWorkspace::new());
}

/// [`refine_kway`] with a reusable workspace: after the workspace has
/// grown to the graph's size, the sequential path performs no heap
/// allocation across passes, levels and calls.
pub fn refine_kway_with(
    g: &Graph,
    k: usize,
    asg: &mut [u32],
    cfg: &PartitionerConfig,
    ws: &mut RefineWorkspace,
) {
    if g.nv() == 0 || k <= 1 {
        return;
    }
    ws.init_kway(g, k, asg, cfg);
    if g.nv() >= cfg.parallel_threshold {
        refine_parallel(g, asg, cfg, ws);
    } else {
        refine_sequential(g, asg, cfg, ws);
    }
    debug_assert!(check_scratch(g, asg, ws));
}

/// Sequential boundary sweep (graphs below `parallel_threshold`).
#[allow(clippy::needless_range_loop)] // indexing lets us mutate `ws` mid-loop
fn refine_sequential(
    g: &Graph,
    asg: &mut [u32],
    cfg: &PartitionerConfig,
    ws: &mut RefineWorkspace,
) {
    let ncon = g.ncon();
    let rec = &cfg.recorder;
    let mut rng = SmallRng::seed_from_u64(cfg.child_seed(0x4EF1E));

    for _pass in 0..cfg.kway_passes.max(1) {
        rec.add("partition.refine.passes", 1);
        rec.record("partition.refine.boundary", ws.bnd.len() as u64);
        // Snapshot the boundary in seeded random order; vertices that
        // leave the boundary mid-pass are skipped when reached.
        ws.order.clear();
        ws.order.extend_from_slice(&ws.bnd);
        ws.order.shuffle(&mut rng);

        let mut moves = 0usize;
        for i in 0..ws.order.len() {
            let v = ws.order[i];
            if ws.bnd_pos[v as usize] == u32::MAX {
                continue; // no longer boundary
            }
            let from = asg[v as usize];
            let id_w = ws.id[v as usize];
            // Best strictly-improving feasible target part.
            let mut conn = std::mem::take(&mut ws.conn);
            connectivity(g, asg, v, &mut conn);
            let mut best: Option<(i64, u32, i64)> = None;
            for &(p, w) in conn.iter() {
                if p == from {
                    continue;
                }
                let gain = w - id_w;
                if gain <= 0 {
                    continue;
                }
                if ws.fits(g, v, p, ncon) && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, p, w));
                }
            }
            ws.conn = conn;
            if let Some((_, p, w)) = best {
                ws.apply_move(g, asg, v, p, w);
                moves += 1;
            }
        }
        rec.add("partition.refine.moves", moves as u64);
        if moves == 0 {
            break;
        }
    }
}

/// Deterministic parallel propose-then-resolve sweep (graphs at or above
/// `parallel_threshold`). Runs up to `kway_passes * refine_rounds` rounds,
/// stopping as soon as a round commits nothing.
#[allow(clippy::needless_range_loop)] // indexing lets us mutate `ws` mid-loop
fn refine_parallel(g: &Graph, asg: &mut [u32], cfg: &PartitionerConfig, ws: &mut RefineWorkspace) {
    let nv = g.nv();
    let ncon = g.ncon();
    let rec = &cfg.recorder;

    // Seeded priority rank (shared by every round; unique per vertex so
    // priority comparisons are total).
    ws.order.clear();
    ws.order.extend(0..nv as u32);
    let mut rng = SmallRng::seed_from_u64(cfg.child_seed(0x4EF1E));
    ws.order.shuffle(&mut rng);
    ws.rank.clear();
    ws.rank.resize(nv, 0);
    for (i, &v) in ws.order.iter().enumerate() {
        ws.rank[v as usize] = i as u32;
    }
    ws.prop_gain.clear();
    ws.prop_gain.resize(nv, i64::MIN);
    ws.prop_to.clear();
    ws.prop_to.resize(nv, u32::MAX);

    let rounds = cfg.kway_passes.max(1) * cfg.refine_rounds.max(1);
    for _round in 0..rounds {
        rec.add("partition.refine.passes", 1);
        rec.record("partition.refine.boundary", ws.bnd.len() as u64);

        // Propose: every boundary vertex picks its best strictly-positive
        // feasible move against the frozen assignment and part weights.
        // Each task writes only its own vertex's slots — pure function of
        // the snapshot, hence thread-count invariant.
        {
            let (prop_gain, prop_to) = (&mut ws.prop_gain, &mut ws.prop_to);
            let (id, tdeg, pwgts, caps) = (&ws.id, &ws.tdeg, &ws.pwgts, &ws.caps);
            let asg_ro: &[u32] = asg;
            prop_gain
                .par_iter_mut()
                .zip(prop_to.par_iter_mut())
                .enumerate()
                .with_min_len(2048)
                .for_each_init(
                    || Vec::with_capacity(16),
                    |conn, (vi, (pg, pt))| {
                        let v = vi as u32;
                        *pg = i64::MIN;
                        *pt = u32::MAX;
                        if tdeg[vi] <= id[vi] {
                            return; // interior
                        }
                        connectivity(g, asg_ro, v, conn);
                        let from = asg_ro[vi];
                        let id_w = id[vi];
                        // Highest gain wins; gain ties keep the first part
                        // in adjacency order — a deterministic,
                        // snapshot-only choice.
                        let mut best: Option<(i64, u32)> = None;
                        for &(p, w) in conn.iter() {
                            if p == from {
                                continue;
                            }
                            let gain = w - id_w;
                            if gain <= 0 {
                                continue;
                            }
                            let base = p as usize * ncon;
                            let fits = g
                                .vwgt(v)
                                .iter()
                                .enumerate()
                                .all(|(j, &vw)| pwgts[base + j] + vw <= caps[base + j]);
                            if fits && best.is_none_or(|(bg, _)| gain > bg) {
                                best = Some((gain, p));
                            }
                        }
                        if let Some((gain, p)) = best {
                            *pg = gain;
                            *pt = p;
                        }
                    },
                );
        }

        // Resolve: a vertex wins iff its (gain, rank) priority beats every
        // proposing neighbor — winners form an independent set, so the cut
        // drops by exactly the sum of their gains. Pure function of the
        // proposal table.
        // Two passes over the boundary, both workspace-resident: a
        // parallel flag pass (each task writes only its own boundary
        // slot) and a sequential scan that gathers flagged vertices in
        // boundary order. Replaces a `par_iter().filter().collect()`
        // that allocated a fresh Vec per round per rayon job.
        {
            let (prop_gain, rank) = (&ws.prop_gain, &ws.rank);
            ws.win_flags.clear();
            ws.win_flags.resize(ws.bnd.len(), false);
            let bnd: &[u32] = &ws.bnd;
            ws.win_flags.par_iter_mut().enumerate().with_min_len(2048).for_each(|(bi, flag)| {
                let v = bnd[bi];
                let vi = v as usize;
                if prop_gain[vi] == i64::MIN {
                    return;
                }
                let my = (prop_gain[vi], u32::MAX - rank[vi]);
                *flag = g.neighbors(v).all(|(u, _)| {
                    let ui = u as usize;
                    prop_gain[ui] == i64::MIN || my > (prop_gain[ui], u32::MAX - rank[ui])
                });
            });
            ws.winners.clear();
            for (bi, &won) in ws.win_flags.iter().enumerate() {
                if won {
                    ws.winners.push(ws.bnd[bi]);
                }
            }
        }
        // Commit in descending priority so the best moves get the cap
        // headroom first; caps are re-checked against live part weights
        // because independent winners can share a destination part.
        let (prop_gain, rank) = (&ws.prop_gain, &ws.rank);
        ws.winners.sort_unstable_by_key(|&v| {
            std::cmp::Reverse((prop_gain[v as usize], u32::MAX - rank[v as usize]))
        });

        let mut moves = 0usize;
        for i in 0..ws.winners.len() {
            let v = ws.winners[i];
            let to = ws.prop_to[v as usize];
            if !ws.fits(g, v, to, ncon) {
                continue;
            }
            // The winner's gain is exact (no committed neighbor this
            // round), but its connectivity to `to` must be recomputed for
            // the id update.
            let mut conn = std::mem::take(&mut ws.conn);
            connectivity(g, asg, v, &mut conn);
            let w_to = conn.iter().find(|(p, _)| *p == to).map_or(0, |(_, w)| *w);
            ws.conn = conn;
            debug_assert_eq!(w_to - ws.id[v as usize], ws.prop_gain[v as usize]);
            ws.apply_move(g, asg, v, to, w_to);
            moves += 1;
        }
        rec.add("partition.refine.moves", moves as u64);
        if moves == 0 {
            break;
        }
    }
}

/// Debug check: the workspace's id/pwgts/boundary agree with `asg`.
fn check_scratch(g: &Graph, asg: &[u32], ws: &RefineWorkspace) -> bool {
    for v in 0..g.nv() as u32 {
        let own = asg[v as usize];
        let mut idv = 0i64;
        let mut td = 0i64;
        for (u, w) in g.neighbors(v) {
            td += w;
            if asg[u as usize] == own {
                idv += w;
            }
        }
        if ws.id[v as usize] != idv || ws.tdeg[v as usize] != td {
            return false;
        }
        let on = td > idv;
        if on != (ws.bnd_pos[v as usize] != u32::MAX) {
            return false;
        }
    }
    true
}

/// Balance enforcement: for every constraint whose imbalance exceeds the
/// tolerance, moves weight out of over-cap parts into parts with headroom,
/// choosing the (vertex, destination) with the least cut damage among the
/// over-cap part's *boundary* vertices (falling back to a full member scan
/// only when the boundary offers no candidate). Bounded effort; leaves the
/// partition as balanced as it could make it.
pub fn balance_kway(g: &Graph, k: usize, asg: &mut [u32], cfg: &PartitionerConfig) {
    balance_kway_with(g, k, asg, cfg, &mut RefineWorkspace::new());
}

/// [`balance_kway`] with a reusable workspace (same contract as
/// [`refine_kway_with`]).
pub fn balance_kway_with(
    g: &Graph,
    k: usize,
    asg: &mut [u32],
    cfg: &PartitionerConfig,
    ws: &mut RefineWorkspace,
) {
    if g.nv() == 0 || k <= 1 {
        return;
    }
    let ncon = g.ncon();
    ws.init_kway(g, k, asg, cfg);
    let rec = &cfg.recorder;

    for j in 0..ncon {
        if ws.totals[j] == 0 {
            continue;
        }
        let mut budget = g.nv();
        loop {
            // Most overloaded part under constraint j.
            let over: Option<u32> = (0..k as u32)
                .filter(|&p| ws.pwgts[p as usize * ncon + j] > ws.caps[p as usize * ncon + j])
                .max_by_key(|&p| ws.pwgts[p as usize * ncon + j] - ws.caps[p as usize * ncon + j]);
            let Some(from) = over else { break };
            if budget == 0 {
                break;
            }

            // Candidates: boundary members of `from` carrying weight in j
            // (the incremental boundary list makes this O(|boundary|)
            // instead of O(V)); interior members only when the boundary
            // has nothing to offer.
            let mut best = best_balance_move(g, asg, ws, from, j, k, ncon, BalanceScan::Boundary);
            if best.is_none() {
                best = best_balance_move(g, asg, ws, from, j, k, ncon, BalanceScan::AllMembers);
            }
            let Some((_, v, to, w_to)) = best else { break };
            ws.apply_move(g, asg, v, to, w_to);
            rec.add("partition.balance.moves", 1);
            budget -= 1;
        }
    }
    debug_assert!(check_scratch(g, asg, ws));
}

/// Candidate source for [`best_balance_move`].
#[derive(Clone, Copy, PartialEq)]
enum BalanceScan {
    /// Only the over-cap part's boundary vertices.
    Boundary,
    /// Every member of the over-cap part (fallback for interior weight).
    AllMembers,
}

/// The least-damage feasible move of a `from`-member carrying weight in
/// constraint `j`: `(damage, vertex, destination, conn_to_destination)`.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn best_balance_move(
    g: &Graph,
    asg: &[u32],
    ws: &mut RefineWorkspace,
    from: u32,
    j: usize,
    k: usize,
    ncon: usize,
    scan: BalanceScan,
) -> Option<(i64, u32, u32, i64)> {
    let mut best: Option<(i64, u32, u32, i64)> = None;
    let mut conn = std::mem::take(&mut ws.conn);
    let candidates = ws.bnd.len();
    let n = if scan == BalanceScan::Boundary { candidates } else { g.nv() };
    for i in 0..n {
        let v = match scan {
            BalanceScan::Boundary => ws.bnd[i],
            BalanceScan::AllMembers => i as u32,
        };
        if asg[v as usize] != from || g.vwgt(v)[j] <= 0 {
            continue;
        }
        connectivity(g, asg, v, &mut conn);
        let id_w = ws.id[v as usize];
        // Destinations: neighbor parts first, then the globally
        // least-loaded part as a fallback for poorly-connected vertices.
        let try_part = |p: u32, best: &mut Option<(i64, u32, u32, i64)>| {
            if p == from || !ws.fits(g, v, p, ncon) {
                return;
            }
            let ext = conn.iter().find(|(q, _)| *q == p).map_or(0, |(_, w)| *w);
            let damage = id_w - ext; // negative damage = cut improves
                                     // Deterministic tie-break on (vertex, part) keeps the result
                                     // independent of the boundary list's internal order.
            if best.is_none_or(|(bd, bv, bp, _)| (damage, v, p) < (bd, bv, bp)) {
                *best = Some((damage, v, p, ext));
            }
        };
        for idx in 0..conn.len() {
            let p = conn[idx].0;
            try_part(p, &mut best);
        }
        let least: u32 = (0..k as u32).min_by_key(|&p| ws.pwgts[p as usize * ncon + j]).unwrap();
        try_part(least, &mut best);
    }
    ws.conn = conn;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::{edge_cut, GraphBuilder, Partition};

    fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, ncon);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                let w: Vec<i64> =
                    (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
                b.set_vwgt(id(i, j), &w);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    /// Columns-of-the-grid assignment: balanced but high-cut for k=2 when
    /// interleaved.
    #[test]
    fn refinement_reduces_cut_without_breaking_balance() {
        let g = grid(12, 12, 1);
        // Striped assignment: columns alternate parts -> terrible cut.
        let mut asg: Vec<u32> = (0..144).map(|v| ((v % 12) % 2) as u32).collect();
        let before = edge_cut(&g, &asg);
        let cfg = PartitionerConfig::with_seed(4);
        refine_kway(&g, 2, &mut asg, &cfg);
        let after = edge_cut(&g, &asg);
        assert!(after < before, "cut {before} -> {after}");
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.max_imbalance() <= 1.06);
    }

    #[test]
    fn parallel_sweep_reduces_cut_without_breaking_balance() {
        let g = grid(12, 12, 1);
        let mut asg: Vec<u32> = (0..144).map(|v| ((v % 12) % 2) as u32).collect();
        let before = edge_cut(&g, &asg);
        // Force the propose-then-resolve path.
        let cfg = PartitionerConfig { parallel_threshold: 0, ..PartitionerConfig::with_seed(4) };
        refine_kway(&g, 2, &mut asg, &cfg);
        let after = edge_cut(&g, &asg);
        assert!(after < before, "cut {before} -> {after}");
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.max_imbalance() <= 1.06);
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = grid(10, 10, 1);
        for threshold in [usize::MAX, 0] {
            let mut asg: Vec<u32> = (0..100).map(|v| if v < 50 { 0 } else { 1 }).collect();
            let before = edge_cut(&g, &asg);
            let cfg = PartitionerConfig {
                parallel_threshold: threshold,
                ..PartitionerConfig::with_seed(8)
            };
            refine_kway(&g, 2, &mut asg, &cfg);
            assert!(edge_cut(&g, &asg) <= before);
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let g = grid(12, 12, 2);
        let start: Vec<u32> = (0..144).map(|v| ((v % 12) % 3) as u32).collect();
        for threshold in [usize::MAX, 0] {
            let cfg = PartitionerConfig {
                parallel_threshold: threshold,
                ..PartitionerConfig::with_seed(6)
            };
            let mut ws = RefineWorkspace::new();
            // Dirty the workspace with an unrelated run.
            let mut dirty = start.clone();
            refine_kway_with(&g, 3, &mut dirty, &PartitionerConfig::with_seed(1), &mut ws);

            let mut a = start.clone();
            let mut b = start.clone();
            refine_kway_with(&g, 3, &mut a, &cfg, &mut ws);
            refine_kway_with(&g, 3, &mut b, &cfg, &mut RefineWorkspace::new());
            assert_eq!(a, b, "threshold {threshold}");

            let mut c = start.clone();
            let mut d = start.clone();
            balance_kway_with(&g, 3, &mut c, &cfg, &mut ws);
            balance_kway_with(&g, 3, &mut d, &cfg, &mut RefineWorkspace::new());
            assert_eq!(c, d, "balance, threshold {threshold}");
        }
    }

    #[test]
    fn balance_fixes_overloaded_part() {
        let g = grid(10, 10, 1);
        // 80/20 split: part 0 overloaded (cap = ceil(1.05 * 50) = 53).
        let mut asg: Vec<u32> = (0..100).map(|v| if v < 80 { 0 } else { 1 }).collect();
        let cfg = PartitionerConfig::with_seed(2);
        balance_kway(&g, 2, &mut asg, &cfg);
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.imbalance(0) <= 1.06, "imbalance {}", p.imbalance(0));
    }

    #[test]
    fn balance_handles_second_constraint() {
        let g = grid(10, 10, 2);
        // All border (contact) vertices initially in part 0's half plus a
        // skewed assignment of the rest.
        let mut asg: Vec<u32> = (0..100u32).map(|v| u32::from(v >= 90)).collect();
        let cfg = PartitionerConfig { eps: vec![0.05, 0.2], ..PartitionerConfig::with_seed(6) };
        balance_kway(&g, 2, &mut asg, &cfg);
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.imbalance(0) <= 1.06, "c0 imbalance {}", p.imbalance(0));
        assert!(p.imbalance(1) <= 1.21, "c1 imbalance {}", p.imbalance(1));
    }

    #[test]
    fn refinement_is_noop_on_perfect_partition() {
        let g = grid(8, 8, 1);
        // Left/right halves: optimal cut 8.
        let mut asg: Vec<u32> = (0..64).map(|v| u32::from(v % 8 >= 4)).collect();
        let before = edge_cut(&g, &asg);
        assert_eq!(before, 8);
        refine_kway(&g, 2, &mut asg, &PartitionerConfig::with_seed(1));
        assert_eq!(edge_cut(&g, &asg), 8);
    }
}
