//! Greedy multi-constraint `k`-way refinement and balancing.
//!
//! This is the refinement primitive the paper's §4.2 relies on twice:
//! once as the final polish of the initial multi-constraint partitioning,
//! and once on the leaf-contracted region graph `G'` after the
//! majority-relabel step, where each vertex is a whole axis-parallel
//! region, so every move provably preserves the piecewise axes-parallel
//! boundary geometry.

use crate::config::PartitionerConfig;
use cip_graph::{Graph, Partition};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-part weight caps for a uniform `k`-way partition.
fn caps(g: &Graph, k: usize, cfg: &PartitionerConfig) -> Vec<i64> {
    let totals = g.total_vwgt();
    (0..k)
        .flat_map(|_| {
            totals
                .iter()
                .enumerate()
                .map(|(j, &t)| ((1.0 + cfg.eps_for(j)) * t as f64 / k as f64).ceil() as i64)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The connectivity of `v` to each part among its neighbors:
/// returns (part, total edge weight) pairs, unsorted.
fn connectivity(g: &Graph, asg: &[u32], v: u32, out: &mut Vec<(u32, i64)>) {
    out.clear();
    for (u, w) in g.neighbors(v) {
        let p = asg[u as usize];
        match out.iter_mut().find(|(q, _)| *q == p) {
            Some((_, acc)) => *acc += w,
            None => out.push((p, w)),
        }
    }
}

/// Greedy `k`-way refinement: repeatedly sweeps the boundary vertices in
/// random order, moving each to the adjacent part with the highest positive
/// gain that keeps every constraint within its cap. Stops when a sweep
/// makes no move or after `cfg.kway_passes` sweeps.
///
/// Never worsens the edge-cut and never moves a vertex into a part that
/// would exceed its cap (moves out of over-cap parts are always allowed).
pub fn refine_kway(g: &Graph, k: usize, asg: &mut [u32], cfg: &PartitionerConfig) {
    let ncon = g.ncon();
    let caps = caps(g, k, cfg);
    let mut part = Partition::from_assignment(g, k, asg.to_vec());
    let mut rng = SmallRng::seed_from_u64(cfg.child_seed(0x4EF1E));
    let mut conn: Vec<(u32, i64)> = Vec::with_capacity(16);

    for _pass in 0..cfg.kway_passes.max(1) {
        let mut boundary: Vec<u32> = (0..g.nv() as u32)
            .filter(|&v| {
                let pv = part.part(v);
                g.adj(v).iter().any(|&u| part.part(u) != pv)
            })
            .collect();
        boundary.shuffle(&mut rng);

        let mut moves = 0usize;
        for &v in &boundary {
            let from = part.part(v);
            connectivity(g, part.assignment(), v, &mut conn);
            let id_w = conn.iter().find(|(p, _)| *p == from).map_or(0, |(_, w)| *w);
            // Best strictly-improving feasible target part.
            let mut best: Option<(i64, u32)> = None;
            for &(p, w) in conn.iter() {
                if p == from {
                    continue;
                }
                let gain = w - id_w;
                if gain <= 0 {
                    continue;
                }
                let fits = (0..ncon)
                    .all(|j| part.part_weight(p, j) + g.vwgt(v)[j] <= caps[p as usize * ncon + j]);
                if fits && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, p));
                }
            }
            if let Some((_, p)) = best {
                part.move_vertex(g, v, p);
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
    asg.copy_from_slice(part.assignment());
}

/// Balance enforcement: for every constraint whose imbalance exceeds the
/// tolerance, moves weight out of over-cap parts into parts with headroom,
/// choosing the (vertex, destination) with the least cut damage. Bounded
/// effort; leaves the partition as balanced as it could make it.
pub fn balance_kway(g: &Graph, k: usize, asg: &mut [u32], cfg: &PartitionerConfig) {
    let ncon = g.ncon();
    let caps = caps(g, k, cfg);
    let mut part = Partition::from_assignment(g, k, asg.to_vec());
    let mut conn: Vec<(u32, i64)> = Vec::with_capacity(16);

    for j in 0..ncon {
        if part.total_weight(j) == 0 {
            continue;
        }
        let mut budget = g.nv();
        loop {
            // Most overloaded part under constraint j.
            let over: Option<u32> = (0..k as u32)
                .filter(|&p| part.part_weight(p, j) > caps[p as usize * ncon + j])
                .max_by_key(|&p| part.part_weight(p, j) - caps[p as usize * ncon + j]);
            let Some(from) = over else { break };
            if budget == 0 {
                break;
            }

            // Candidate vertices: members of `from` carrying weight in j;
            // prefer boundary vertices and small cut damage.
            let mut best: Option<(i64, u32, u32)> = None; // (damage, v, to)
            for v in 0..g.nv() as u32 {
                if part.part(v) != from || g.vwgt(v)[j] <= 0 {
                    continue;
                }
                connectivity(g, part.assignment(), v, &mut conn);
                let id_w = conn.iter().find(|(p, _)| *p == from).map_or(0, |(_, w)| *w);
                // Destinations: neighbor parts first, then the globally
                // least-loaded part as a fallback for interior vertices.
                let try_part = |p: u32, best: &mut Option<(i64, u32, u32)>| {
                    if p == from {
                        return;
                    }
                    let fits = (0..ncon).all(|jj| {
                        part.part_weight(p, jj) + g.vwgt(v)[jj] <= caps[p as usize * ncon + jj]
                    });
                    if !fits {
                        return;
                    }
                    let ext = conn.iter().find(|(q, _)| *q == p).map_or(0, |(_, w)| *w);
                    let damage = id_w - ext; // negative damage = cut improves
                    if best.is_none_or(|(bd, _, _)| damage < bd) {
                        *best = Some((damage, v, p));
                    }
                };
                for &(p, _) in conn.iter() {
                    try_part(p, &mut best);
                }
                let least: u32 = (0..k as u32).min_by_key(|&p| part.part_weight(p, j)).unwrap();
                try_part(least, &mut best);
            }
            let Some((_, v, to)) = best else { break };
            part.move_vertex(g, v, to);
            budget -= 1;
        }
    }
    asg.copy_from_slice(part.assignment());
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::{edge_cut, GraphBuilder};

    fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, ncon);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                let w: Vec<i64> =
                    (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
                b.set_vwgt(id(i, j), &w);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    /// Columns-of-the-grid assignment: balanced but high-cut for k=2 when
    /// interleaved.
    #[test]
    fn refinement_reduces_cut_without_breaking_balance() {
        let g = grid(12, 12, 1);
        // Striped assignment: columns alternate parts -> terrible cut.
        let mut asg: Vec<u32> = (0..144).map(|v| ((v % 12) % 2) as u32).collect();
        let before = edge_cut(&g, &asg);
        let cfg = PartitionerConfig::with_seed(4);
        refine_kway(&g, 2, &mut asg, &cfg);
        let after = edge_cut(&g, &asg);
        assert!(after < before, "cut {before} -> {after}");
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.max_imbalance() <= 1.06);
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = grid(10, 10, 1);
        let mut asg: Vec<u32> = (0..100).map(|v| if v < 50 { 0 } else { 1 }).collect();
        let before = edge_cut(&g, &asg);
        refine_kway(&g, 2, &mut asg, &PartitionerConfig::with_seed(8));
        assert!(edge_cut(&g, &asg) <= before);
    }

    #[test]
    fn balance_fixes_overloaded_part() {
        let g = grid(10, 10, 1);
        // 80/20 split: part 0 overloaded (cap = ceil(1.05 * 50) = 53).
        let mut asg: Vec<u32> = (0..100).map(|v| if v < 80 { 0 } else { 1 }).collect();
        let cfg = PartitionerConfig::with_seed(2);
        balance_kway(&g, 2, &mut asg, &cfg);
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.imbalance(0) <= 1.06, "imbalance {}", p.imbalance(0));
    }

    #[test]
    fn balance_handles_second_constraint() {
        let g = grid(10, 10, 2);
        // All border (contact) vertices initially in part 0's half plus a
        // skewed assignment of the rest.
        let mut asg: Vec<u32> = (0..100u32).map(|v| u32::from(v >= 90)).collect();
        let cfg = PartitionerConfig { eps: vec![0.05, 0.2], ..PartitionerConfig::with_seed(6) };
        balance_kway(&g, 2, &mut asg, &cfg);
        let p = Partition::from_assignment(&g, 2, asg);
        assert!(p.imbalance(0) <= 1.06, "c0 imbalance {}", p.imbalance(0));
        assert!(p.imbalance(1) <= 1.21, "c1 imbalance {}", p.imbalance(1));
    }

    #[test]
    fn refinement_is_noop_on_perfect_partition() {
        let g = grid(8, 8, 1);
        // Left/right halves: optimal cut 8.
        let mut asg: Vec<u32> = (0..64).map(|v| u32::from(v % 8 >= 4)).collect();
        let before = edge_cut(&g, &asg);
        assert_eq!(before, 8);
        refine_kway(&g, 2, &mut asg, &PartitionerConfig::with_seed(1));
        assert_eq!(edge_cut(&g, &asg), 8);
    }
}
