//! Multilevel recursive bisection: the `k`-way driver.
//!
//! Each bisection is multilevel: coarsen with heavy-edge matching, bisect
//! the coarsest graph with greedy growing, then project back up refining
//! with FM at every level. `k` is split as `k = k1 + k2` with
//! `k1 = floor(k/2)`, and side 0 targets the fraction `k1 / k` of every
//! constraint, so arbitrary (non-power-of-two) part counts work.
//!
//! Per-bisection tolerances are tighter than the user's requested `eps`
//! (imbalance compounds multiplicatively down the recursion); a final
//! k-way refinement + balancing pass on the full graph then enforces the
//! real bound and recovers cut quality across bisector boundaries.

use crate::bisect::{assign_distinct_parts, greedy_bisection_with};
use crate::coarsen::{coarsen_recorded, CoarsenParams, CoarsenWorkspace};
use crate::config::{child_seed, PartitionerConfig};
use crate::fm::{fm_refine_with, rebalance_bisection_with, BisectTargets};
use crate::kway::{balance_kway_with, refine_kway_with, RefineWorkspace};
use cip_graph::subgraph::induced_subgraph;
use cip_graph::Graph;

/// Sub-problems at least this large recurse in parallel (rayon::join).
const PARALLEL_THRESHOLD: usize = 8192;

/// Computes a `k`-way multi-constraint partition of `g`.
///
/// Returns one part id (`0..k`) per vertex. Deterministic for a fixed
/// `cfg.seed`.
///
/// ```
/// use cip_graph::{GraphBuilder, Partition};
/// use cip_partition::{partition_kway, PartitionerConfig};
///
/// // A 16-vertex path graph.
/// let mut b = GraphBuilder::new(16, 1);
/// for v in 0..16 {
///     b.set_vwgt(v, &[1]);
/// }
/// for v in 0..15 {
///     b.add_edge(v, v + 1, 1);
/// }
/// let g = b.build();
///
/// let asg = partition_kway(&g, 2, &PartitionerConfig::default());
/// let p = Partition::from_assignment(&g, 2, asg);
/// assert!(p.is_balanced(0.05));
/// assert_eq!(cip_graph::edge_cut(&g, p.assignment()), 1);
/// ```
pub fn partition_kway(g: &Graph, k: usize, cfg: &PartitionerConfig) -> Vec<u32> {
    partition_kway_with(g, k, cfg, &mut RefineWorkspace::new())
}

/// [`partition_kway`] with a caller-supplied refinement workspace for the
/// full-graph polish passes — the `O(nv)` scratch a repeat caller (the
/// job server's per-worker workspace pool) wants to keep warm across
/// partitions. Bit-identical to [`partition_kway`] for any workspace
/// state.
pub fn partition_kway_with(
    g: &Graph,
    k: usize,
    cfg: &PartitionerConfig,
    ws: &mut RefineWorkspace,
) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    let mut asg = vec![0u32; g.nv()];
    if k == 1 || g.nv() == 0 {
        return asg;
    }
    if g.nv() <= k {
        return assign_distinct_parts(g.nv(), k);
    }
    let _span =
        cfg.recorder.span("partition.rb").attr("nv", g.nv()).attr("ne", g.ne()).attr("k", k);

    // Per-bisection eps: a fraction of the global tolerance, floored so the
    // bisections retain freedom to optimize the cut.
    let levels = (k as f64).log2().ceil().max(1.0);
    let bis_eps: Vec<f64> = (0..g.ncon())
        .map(|j| (cfg.eps_for(j) / levels).max(0.5 * cfg.eps_for(j)).max(0.02))
        .collect();

    let ids: Vec<u32> = (0..g.nv() as u32).collect();
    let assigned = rb_recurse(g, k, 0, cfg, &bis_eps, 1, &ids);
    for (gv, part) in assigned {
        asg[gv as usize] = part;
    }

    // Full-graph k-way polish: refine the cut across bisector boundaries,
    // then enforce the user's balance tolerance. One workspace serves all
    // three passes.
    let _polish = cfg.recorder.span("partition.kway_polish").attr("nv", g.nv()).attr("k", k);
    refine_kway_with(g, k, &mut asg, cfg, ws);
    balance_kway_with(g, k, &mut asg, cfg, ws);
    refine_kway_with(g, k, &mut asg, cfg, ws);
    asg
}

/// Recursively bisects the subgraph whose vertices map to `global_ids`,
/// returning `(global_vertex, part)` assignments for parts
/// `part_lo .. part_lo + k`. Sibling sub-problems are independent, so
/// large ones recurse in parallel — the "straightforward" parallelization
/// the paper's §6 notes.
fn rb_recurse(
    g: &Graph,
    k: usize,
    part_lo: u32,
    cfg: &PartitionerConfig,
    bis_eps: &[f64],
    salt: u64,
    global_ids: &[u32],
) -> Vec<(u32, u32)> {
    if k == 1 {
        return global_ids.iter().map(|&gv| (gv, part_lo)).collect();
    }
    if g.nv() <= k {
        return global_ids
            .iter()
            .enumerate()
            .map(|(v, &gv)| (gv, part_lo + (v % k) as u32))
            .collect();
    }

    let k1 = k / 2;
    let frac0 = k1 as f64 / k as f64;
    // Per-recursion seed override — cheaper than cloning the whole config
    // (the `eps` Vec) at every node of the recursion tree.
    let asg2 = multilevel_bisect_seeded(g, frac0, cfg, bis_eps, cfg.child_seed(salt));

    // Split and recurse.
    let select0: Vec<bool> = asg2.iter().map(|&s| s == 0).collect();
    let sub0 = induced_subgraph(g, &select0);
    let select1: Vec<bool> = asg2.iter().map(|&s| s == 1).collect();
    let sub1 = induced_subgraph(g, &select1);

    let ids0: Vec<u32> = sub0.to_parent.iter().map(|&v| global_ids[v as usize]).collect();
    let ids1: Vec<u32> = sub1.to_parent.iter().map(|&v| global_ids[v as usize]).collect();
    let (mut left, right) = if g.nv() >= PARALLEL_THRESHOLD {
        rayon::join(
            || rb_recurse(&sub0.graph, k1, part_lo, cfg, bis_eps, salt * 2, &ids0),
            || {
                rb_recurse(
                    &sub1.graph,
                    k - k1,
                    part_lo + k1 as u32,
                    cfg,
                    bis_eps,
                    salt * 2 + 1,
                    &ids1,
                )
            },
        )
    } else {
        (
            rb_recurse(&sub0.graph, k1, part_lo, cfg, bis_eps, salt * 2, &ids0),
            rb_recurse(&sub1.graph, k - k1, part_lo + k1 as u32, cfg, bis_eps, salt * 2 + 1, &ids1),
        )
    };
    left.extend(right);
    left
}

/// One multilevel bisection of `g` with side-0 fraction `frac0`, seeded
/// from `cfg.seed`.
pub fn multilevel_bisect(g: &Graph, frac0: f64, cfg: &PartitionerConfig, eps: &[f64]) -> Vec<u32> {
    multilevel_bisect_seeded(g, frac0, cfg, eps, cfg.seed)
}

/// [`multilevel_bisect`] with the random stream rooted at `seed` instead
/// of `cfg.seed`, so recursive callers can derive independent per-node
/// streams without cloning the config.
pub fn multilevel_bisect_seeded(
    g: &Graph,
    frac0: f64,
    cfg: &PartitionerConfig,
    eps: &[f64],
    seed: u64,
) -> Vec<u32> {
    let rec = &cfg.recorder;
    let params = CoarsenParams {
        coarsen_to: cfg.coarsen_to.max(40),
        seed: child_seed(seed, 0xC0A25E),
        parallel_threshold: cfg.parallel_threshold,
        matching_rounds: cfg.matching_rounds,
    };
    let mut ws = CoarsenWorkspace::new();
    let hierarchy = {
        let _span = rec.span("partition.coarsen").attr("nv", g.nv()).attr("ne", g.ne());
        coarsen_recorded(g, &params, &mut ws, rec)
    };

    // One refinement workspace per bisection: shared across the initial
    // partition's restarts and every uncoarsening level. Sibling recursion
    // nodes each build their own (they may run on different rayon
    // threads), but within a node nothing re-allocates.
    let mut rws = RefineWorkspace::new();
    rws.reserve(g.nv());

    // Bisect the coarsest graph.
    let coarsest = hierarchy.coarsest().unwrap_or(g);
    let targets_coarse = BisectTargets::new(coarsest, frac0, eps);
    let mut asg = {
        let _span =
            rec.span("partition.initial").attr("nv", coarsest.nv()).attr("levels", hierarchy.len());
        greedy_bisection_with(coarsest, &targets_coarse, cfg, seed, &mut rws)
    };

    // Uncoarsen: project through each level (in place, ping-ponging with
    // the workspace's buffer) and refine.
    let mut fine_asg = Vec::with_capacity(g.nv());
    for lvl in (0..hierarchy.len()).rev() {
        let fine_graph = hierarchy.fine_graph(lvl, g);
        let _span = rec
            .span("partition.fm_refine")
            .attr("level", lvl)
            .attr("nv", fine_graph.nv())
            .attr("ne", fine_graph.ne());
        hierarchy.project_into(lvl, &asg, &mut fine_asg);
        let targets = BisectTargets::new(fine_graph, frac0, eps);
        rebalance_bisection_with(fine_graph, &mut fine_asg, &targets, &mut rws);
        fm_refine_with(
            fine_graph,
            &mut fine_asg,
            &targets,
            cfg.fm_passes,
            cfg.transient_violation,
            &mut rws,
        );
        std::mem::swap(&mut asg, &mut fine_asg);
    }
    if hierarchy.is_empty() {
        // No coarsening happened; `asg` is already on `g` but unrefined.
        let targets = BisectTargets::new(g, frac0, eps);
        rebalance_bisection_with(g, &mut asg, &targets, &mut rws);
        fm_refine_with(g, &mut asg, &targets, cfg.fm_passes, cfg.transient_violation, &mut rws);
    }
    asg
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::{edge_cut, GraphBuilder, Partition};

    fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, ncon);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                let w: Vec<i64> =
                    (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
                b.set_vwgt(id(i, j), &w);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn four_way_grid_partition() {
        let g = grid(16, 16, 1);
        let cfg = PartitionerConfig::with_seed(1);
        let asg = partition_kway(&g, 4, &cfg);
        let p = Partition::from_assignment(&g, 4, asg.clone());
        assert!(p.max_imbalance() <= 1.06, "imbalance {}", p.max_imbalance());
        // A perfect quadrant split cuts 2 * 16 = 32 edges.
        let cut = edge_cut(&g, &asg);
        assert!(cut <= 70, "cut {cut}");
        // All parts non-empty.
        for part in 0..4 {
            assert!(p.part_size(part) > 0);
        }
    }

    #[test]
    fn non_power_of_two_k() {
        let g = grid(15, 14, 1);
        let cfg = PartitionerConfig::with_seed(7);
        for k in [3usize, 5, 6, 7] {
            let asg = partition_kway(&g, k, &cfg);
            let p = Partition::from_assignment(&g, k, asg);
            assert!(p.max_imbalance() <= 1.10, "k={k} imbalance {}", p.max_imbalance());
            for part in 0..k as u32 {
                assert!(p.part_size(part) > 0, "k={k} part {part} empty");
            }
        }
    }

    #[test]
    fn two_constraint_partition_balances_both() {
        let g = grid(20, 20, 2);
        let cfg = PartitionerConfig::with_seed(3);
        let asg = partition_kway(&g, 4, &cfg);
        let p = Partition::from_assignment(&g, 4, asg);
        assert!(p.imbalance(0) <= 1.06, "FE imbalance {}", p.imbalance(0));
        assert!(p.imbalance(1) <= 1.25, "contact imbalance {}", p.imbalance(1));
    }

    #[test]
    fn k_one_is_trivial() {
        let g = grid(4, 4, 1);
        let asg = partition_kway(&g, 1, &PartitionerConfig::default());
        assert!(asg.iter().all(|&p| p == 0));
    }

    #[test]
    fn tiny_graph_many_parts() {
        let g = grid(2, 2, 1);
        let asg = partition_kway(&g, 4, &PartitionerConfig::default());
        let mut sorted = asg.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(12, 12, 1);
        let cfg = PartitionerConfig::with_seed(99);
        let a = partition_kway(&g, 6, &cfg);
        let b = partition_kway(&g, 6, &cfg);
        assert_eq!(a, b);
    }
}
