//! Multilevel multi-constraint graph partitioning.
//!
//! A from-scratch implementation of the METIS-family algorithms the paper
//! builds on (Karypis & Kumar, *Multilevel algorithms for multi-constraint
//! graph partitioning*, SC'98):
//!
//! * [`mod@coarsen`] — heavy-edge matching and graph contraction,
//! * [`bisect`] — multi-constraint greedy graph growing for the initial
//!   bisection of the coarsest graph, plus a balance-repair pass,
//! * [`fm`] — 2-way Fiduccia–Mattheyses refinement with multi-constraint
//!   feasibility and hill-climbing with rollback,
//! * [`rb`] — multilevel *recursive bisection* driver producing `k`-way
//!   partitions for arbitrary `k`,
//! * [`kway`] — greedy multi-constraint `k`-way refinement and balancing
//!   (also used standalone for the paper's DT-friendly correction step,
//!   where it moves whole axis-parallel regions of the contracted graph
//!   `G'` between parts),
//! * [`repart`] — scratch-remap repartitioning: partition from scratch,
//!   then relabel parts via maximum-weight matching so the new partition
//!   overlaps the old one as much as possible,
//! * [`diffusion`] — local-diffusion repartitioning (the Schloegel-style
//!   alternative the paper's §4.3 cites): migrate weight out of
//!   overloaded parts starting from the previous assignment — far less
//!   migration than scratch-remap when the imbalance is mild,
//! * [`hungarian`] — exact O(k³) maximum-weight assignment (used both for
//!   repartition remapping and by the ML+RCB baseline's mesh-to-mesh
//!   communication metric).
//!
//! The entry points are [`partition_kway`] (static partitioning),
//! [`refine_kway`]/[`balance_kway`] (refinement of an existing assignment)
//! and [`repartition`] (adaptive repartitioning).

pub mod bisect;
pub mod coarsen;
pub mod config;
pub mod diffusion;
pub mod fm;
pub mod hungarian;
pub mod kway;
pub mod kway_ml;
mod proptests;
pub mod rb;
pub mod repart;
pub mod workspace;

pub use coarsen::{
    coarsen, coarsen_recorded, coarsen_with, heavy_edge_matching, parallel_heavy_edge_matching,
    CoarsenParams, CoarsenWorkspace, Hierarchy,
};
pub use config::PartitionerConfig;
pub use diffusion::diffusion_repartition;
pub use fm::{fm_refine, fm_refine_with};
pub use hungarian::max_weight_assignment;
pub use kway::{balance_kway, balance_kway_with, refine_kway, refine_kway_with, RefineWorkspace};
pub use kway_ml::{partition_kway_multilevel, partition_kway_multilevel_with};
pub use rb::{partition_kway, partition_kway_with};
pub use repart::{
    compact_parts_after_loss, remap_to_maximize_overlap, repartition, repartition_survivors,
};
pub use workspace::PartitionWorkspace;
