//! Coarsening: heavy-edge matching and contraction.
//!
//! Each coarsening level matches vertices with their heaviest-edge
//! unmatched neighbor (HEM) and contracts matched pairs. For
//! multi-constraint graphs the tiebreak among equally heavy edges prefers
//! the neighbor whose weight vector best *complements* the vertex's own
//! (Karypis–Kumar "balanced matching"), which keeps coarse vertex-weight
//! vectors homogeneous and makes the coarsest-level balance problem
//! tractable.

use cip_graph::{contract, Graph};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One coarsening level: the coarse graph plus the fine-to-coarse map.
#[derive(Debug, Clone)]
pub struct Level {
    /// The coarse graph produced by this level.
    pub graph: Graph,
    /// `map[fine_vertex] = coarse_vertex` into `graph`.
    pub map: Vec<u32>,
}

/// A full coarsening hierarchy. `levels[0].graph` is one step coarser than
/// the input; `levels.last()` is the coarsest graph.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Successive coarsening levels (possibly empty if the input was
    /// already small).
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// The coarsest graph, or `None` if no coarsening step was taken.
    pub fn coarsest(&self) -> Option<&Graph> {
        self.levels.last().map(|l| &l.graph)
    }
}

/// Computes a heavy-edge matching of `g` and returns the fine-to-coarse map
/// together with the number of coarse vertices.
///
/// Visit order is randomized (seeded) so repeated runs explore different
/// matchings; unmatched vertices map to singleton coarse vertices.
pub fn heavy_edge_matching(g: &Graph, seed: u64) -> (Vec<u32>, usize) {
    let nv = g.nv();
    let mut order: Vec<u32> = (0..nv as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut mate = vec![u32::MAX; nv];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(i64, i64, u32)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] != u32::MAX {
                continue;
            }
            // Primary key: heaviest edge. Secondary key (maximized):
            // complementarity of the weight vectors — prefer merging a
            // contact-heavy vertex with a contact-light one so coarse
            // weight vectors stay homogeneous. We use the negative dot
            // product of the weight vectors as the score.
            let dot: i64 = g
                .vwgt(v)
                .iter()
                .zip(g.vwgt(u))
                .map(|(a, b)| a * b)
                .sum();
            let key = (w, -dot, u);
            match best {
                Some((bw, bdot, _)) if (bw, bdot) >= (w, -dot) => {}
                _ => best = Some(key),
            }
        }
        if let Some((_, _, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }

    // Assign coarse ids: each matched pair (or singleton) gets one id.
    let mut map = vec![u32::MAX; nv];
    let mut cnv = 0usize;
    for v in 0..nv {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = cnv as u32;
        let m = mate[v] as usize;
        if m != v {
            map[m] = cnv as u32;
        }
        cnv += 1;
    }
    (map, cnv)
}

/// Coarsens `g` until it has at most `coarsen_to` vertices or shrinkage
/// stalls (a level removing < 10% of vertices stops the process).
pub fn coarsen(g: &Graph, coarsen_to: usize, seed: u64) -> Hierarchy {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut level_seed = seed;
    while current.nv() > coarsen_to {
        let (map, cnv) = heavy_edge_matching(&current, level_seed);
        if cnv as f64 > current.nv() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        let coarse = contract(&current, &map, cnv);
        levels.push(Level { graph: coarse.clone(), map });
        current = coarse;
        level_seed = level_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    Hierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, 2);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                // Border nodes get a contact weight, like a mesh surface.
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                b.set_vwgt(id(i, j), &[1, i64::from(border)]);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matching_is_a_valid_pairing() {
        let g = grid(10, 10);
        let (map, cnv) = heavy_edge_matching(&g, 7);
        assert!(cnv >= g.nv() / 2);
        assert!(cnv < g.nv());
        // Each coarse id has 1 or 2 members.
        let mut counts = vec![0; cnv];
        for &c in &map {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1 || c == 2));
        // Matched pairs must be adjacent.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); cnv];
        for (v, &c) in map.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        for m in members.iter().filter(|m| m.len() == 2) {
            assert!(
                g.adj(m[0]).contains(&m[1]),
                "matched vertices {m:?} are not adjacent"
            );
        }
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let g = grid(16, 16);
        let h = coarsen(&g, 20, 3);
        assert!(!h.levels.is_empty());
        let coarsest = h.coarsest().unwrap();
        assert_eq!(coarsest.total_vwgt(), g.total_vwgt());
        assert!(coarsest.nv() <= g.nv() / 2);
    }

    #[test]
    fn coarsening_terminates_on_small_graph() {
        let g = grid(3, 3);
        let h = coarsen(&g, 100, 1);
        assert!(h.levels.is_empty());
        assert!(h.coarsest().is_none());
    }

    #[test]
    fn coarsening_is_deterministic_per_seed() {
        let g = grid(12, 12);
        let h1 = coarsen(&g, 30, 9);
        let h2 = coarsen(&g, 30, 9);
        assert_eq!(h1.levels.len(), h2.levels.len());
        for (a, b) in h1.levels.iter().zip(h2.levels.iter()) {
            assert_eq!(a.map, b.map);
        }
    }

    #[test]
    fn edgeless_graph_stalls_gracefully() {
        let g = Graph::edgeless(50, 1);
        let h = coarsen(&g, 10, 5);
        // No edges -> no matches -> stall detection stops immediately.
        assert!(h.levels.is_empty());
    }
}
