//! Coarsening: heavy-edge matching and contraction.
//!
//! Each coarsening level matches vertices with their heaviest-edge
//! unmatched neighbor (HEM) and contracts matched pairs. For
//! multi-constraint graphs the tiebreak among equally heavy edges prefers
//! the neighbor whose weight vector best *complements* the vertex's own
//! (Karypis–Kumar "balanced matching"), which keeps coarse vertex-weight
//! vectors homogeneous and makes the coarsest-level balance problem
//! tractable.
//!
//! Two matchers implement that policy:
//!
//! * [`heavy_edge_matching`] — the classic sequential sweep in seeded
//!   random order; cheapest for small graphs and recursion sub-problems.
//! * [`parallel_heavy_edge_matching`] — a propose-then-resolve scheme:
//!   every unmatched vertex computes its best unmatched neighbor in
//!   parallel (tiebroken by the seeded visit rank), mutual proposals are
//!   accepted, and the loop repeats on the remainder until no new pairs
//!   form. Every round is a pure function of the previous round's `mate`
//!   snapshot and each vertex writes only its own slot, so the result is
//!   **byte-identical for a fixed seed at any rayon thread count**.
//!
//! [`coarsen_with`] drives either matcher per level (chosen by the
//! caller's `parallel_threshold`), contracts through
//! [`cip_graph::contract_with`], moves each coarse graph into the
//! [`Hierarchy`] exactly once (no per-level clones), and reuses a
//! [`CoarsenWorkspace`] so the steady-state level loop performs no scratch
//! allocation.

use cip_graph::{contract_with, ContractWorkspace, Graph};
use cip_telemetry::Recorder;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Default for [`CoarsenParams::parallel_threshold`] (kept in sync with
/// `PartitionerConfig::default`).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

/// Default for [`CoarsenParams::matching_rounds`].
pub const DEFAULT_MATCHING_ROUNDS: usize = 8;

/// One coarsening level: the coarse graph plus the fine-to-coarse map.
#[derive(Debug, Clone)]
pub struct Level {
    /// The coarse graph produced by this level.
    pub graph: Graph,
    /// `map[fine_vertex] = coarse_vertex` into `graph`.
    pub map: Vec<u32>,
}

/// A full coarsening hierarchy. `levels[0].graph` is one step coarser than
/// the input; `levels.last()` is the coarsest graph. Each level's graph is
/// owned by the hierarchy alone — the construction never clones a graph.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Successive coarsening levels (possibly empty if the input was
    /// already small).
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// The coarsest graph, or `None` if no coarsening step was taken.
    pub fn coarsest(&self) -> Option<&Graph> {
        self.levels.last().map(|l| &l.graph)
    }

    /// Number of coarsening levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if no coarsening step was taken.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The *fine* graph of level `lvl` — the graph `levels[lvl].map`
    /// projects onto: `finest` for level 0, the previous level's coarse
    /// graph otherwise. This is the uncoarsening-loop accessor.
    pub fn fine_graph<'a>(&'a self, lvl: usize, finest: &'a Graph) -> &'a Graph {
        if lvl == 0 {
            finest
        } else {
            &self.levels[lvl - 1].graph
        }
    }

    /// Projects a part assignment of level `lvl`'s coarse graph onto its
    /// fine graph.
    pub fn project(&self, lvl: usize, coarse_asg: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.project_into(lvl, coarse_asg, &mut out);
        out
    }

    /// [`Self::project`] into a caller-owned buffer, so the uncoarsening
    /// loop can ping-pong two assignment buffers instead of allocating a
    /// fresh `Vec` per level.
    pub fn project_into(&self, lvl: usize, coarse_asg: &[u32], out: &mut Vec<u32>) {
        let map = &self.levels[lvl].map;
        out.clear();
        out.extend(map.iter().map(|&c| coarse_asg[c as usize]));
    }
}

/// Knobs for [`coarsen_with`], typically derived from a
/// `PartitionerConfig`.
#[derive(Debug, Clone, Copy)]
pub struct CoarsenParams {
    /// Stop once the graph has at most this many vertices.
    pub coarsen_to: usize,
    /// Seed for the per-level visit orders.
    pub seed: u64,
    /// Levels with at least this many vertices use the parallel matcher
    /// and parallel contraction (`usize::MAX` forces sequential, `0`
    /// forces parallel).
    pub parallel_threshold: usize,
    /// Rounds cap for the parallel matcher.
    pub matching_rounds: usize,
}

impl CoarsenParams {
    /// Params with the given target size and seed, defaults elsewhere.
    pub fn new(coarsen_to: usize, seed: u64) -> Self {
        Self {
            coarsen_to,
            seed,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            matching_rounds: DEFAULT_MATCHING_ROUNDS,
        }
    }
}

/// Reusable scratch for [`coarsen_with`]: matcher buffers plus the
/// contraction workspace. Allocated lazily on first use and reused across
/// levels (and across coarsening calls when the caller holds on to it).
#[derive(Debug, Default)]
pub struct CoarsenWorkspace {
    /// Seeded visit order (sequential matcher) / its inverse rank
    /// (parallel matcher priority).
    order: Vec<u32>,
    rank: Vec<u32>,
    /// `mate[v]`: matched partner, `v` itself for singletons, `u32::MAX`
    /// while unmatched.
    mate: Vec<u32>,
    /// Per-round proposals of the parallel matcher.
    proposal: Vec<u32>,
    /// Contraction scratch (group counts, members, per-worker slots).
    contract: ContractWorkspace,
}

impl CoarsenWorkspace {
    /// A workspace with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes a heavy-edge matching of `g` and returns the fine-to-coarse map
/// together with the number of coarse vertices.
///
/// Visit order is randomized (seeded) so repeated runs explore different
/// matchings; unmatched vertices map to singleton coarse vertices.
pub fn heavy_edge_matching(g: &Graph, seed: u64) -> (Vec<u32>, usize) {
    sequential_hem(g, seed, &mut CoarsenWorkspace::new())
}

fn sequential_hem(g: &Graph, seed: u64, ws: &mut CoarsenWorkspace) -> (Vec<u32>, usize) {
    let nv = g.nv();
    ws.order.clear();
    ws.order.extend(0..nv as u32);
    let mut rng = SmallRng::seed_from_u64(seed);
    ws.order.shuffle(&mut rng);

    ws.mate.clear();
    ws.mate.resize(nv, u32::MAX);
    let mate = &mut ws.mate;
    for &v in &ws.order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(i64, i64, u32)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] != u32::MAX {
                continue;
            }
            // Primary key: heaviest edge. Secondary key (maximized):
            // complementarity of the weight vectors — prefer merging a
            // contact-heavy vertex with a contact-light one so coarse
            // weight vectors stay homogeneous. We use the negative dot
            // product of the weight vectors as the score.
            let dot: i64 = g.vwgt(v).iter().zip(g.vwgt(u)).map(|(a, b)| a * b).sum();
            let key = (w, -dot, u);
            match best {
                Some((bw, bdot, _)) if (bw, bdot) >= (w, -dot) => {}
                _ => best = Some(key),
            }
        }
        if let Some((_, _, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }
    assign_coarse_ids(mate)
}

/// Deterministic parallel heavy-edge matching (propose-then-resolve).
///
/// Same matching policy as [`heavy_edge_matching`] — heaviest edge first,
/// then weight-vector complementarity — with conflicts resolved by the
/// seeded visit rank instead of sequential visit order. Proposals are
/// computed from an immutable `mate` snapshot and every vertex writes only
/// its own `mate` slot, so the result is identical at any thread count.
///
/// Returns the fine-to-coarse map and the number of coarse vertices.
pub fn parallel_heavy_edge_matching(g: &Graph, seed: u64, max_rounds: usize) -> (Vec<u32>, usize) {
    parallel_hem(g, seed, max_rounds, &mut CoarsenWorkspace::new())
}

fn parallel_hem(
    g: &Graph,
    seed: u64,
    max_rounds: usize,
    ws: &mut CoarsenWorkspace,
) -> (Vec<u32>, usize) {
    let nv = g.nv();
    ws.order.clear();
    ws.order.extend(0..nv as u32);
    let mut rng = SmallRng::seed_from_u64(seed);
    ws.order.shuffle(&mut rng);
    ws.rank.clear();
    ws.rank.resize(nv, 0);
    for (i, &v) in ws.order.iter().enumerate() {
        ws.rank[v as usize] = i as u32;
    }

    ws.mate.clear();
    ws.mate.resize(nv, u32::MAX);
    ws.proposal.clear();
    ws.proposal.resize(nv, u32::MAX);

    for _ in 0..max_rounds.max(1) {
        // Propose: each unmatched vertex picks its best unmatched neighbor
        // against the frozen `mate` snapshot. Ties on (weight,
        // complementarity) go to the neighbor with the smallest seeded
        // rank, which is also what makes the handshake likely to close.
        let (mate, rank) = (&ws.mate, &ws.rank);
        ws.proposal.par_iter_mut().enumerate().for_each(|(v, p)| {
            let v = v as u32;
            *p = if mate[v as usize] != u32::MAX {
                u32::MAX
            } else {
                best_candidate(g, v, mate, rank)
            };
        });

        // Resolve: accept exactly the mutual proposals. Each vertex
        // inspects the shared proposal table but writes only mate[v].
        let proposal = &ws.proposal;
        let newly: usize = ws
            .mate
            .par_iter_mut()
            .enumerate()
            .map(|(v, m)| {
                if *m == u32::MAX {
                    let u = proposal[v];
                    if u != u32::MAX && proposal[u as usize] == v as u32 {
                        *m = u;
                        return 1;
                    }
                }
                0
            })
            .sum();
        if newly == 0 {
            break; // match rate stalled — the rest become singletons
        }
    }

    // Unmatched remainder -> singletons.
    ws.mate.par_iter_mut().enumerate().for_each(|(v, m)| {
        if *m == u32::MAX {
            *m = v as u32;
        }
    });
    assign_coarse_ids(&ws.mate)
}

/// The best unmatched neighbor of `v` by (edge weight, complementarity,
/// seeded rank), or `u32::MAX` if all neighbors are matched.
#[inline]
fn best_candidate(g: &Graph, v: u32, mate: &[u32], rank: &[u32]) -> u32 {
    let mut best: Option<(i64, i64, u32, u32)> = None;
    for (u, w) in g.neighbors(v) {
        if mate[u as usize] != u32::MAX {
            continue;
        }
        let dot: i64 = g.vwgt(v).iter().zip(g.vwgt(u)).map(|(a, b)| a * b).sum();
        // Maximize (w, -dot), then minimize rank — u32::MAX - rank turns
        // that into a single maximized key.
        let key = (w, -dot, u32::MAX - rank[u as usize], u);
        if best.is_none_or(|b| key > b) {
            best = Some(key);
        }
    }
    best.map_or(u32::MAX, |(_, _, _, u)| u)
}

/// Assigns dense coarse ids to a complete `mate` array (every entry
/// resolved), pairing each matched couple under one id.
fn assign_coarse_ids(mate: &[u32]) -> (Vec<u32>, usize) {
    let nv = mate.len();
    let mut map = vec![u32::MAX; nv];
    let mut cnv = 0usize;
    for v in 0..nv {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = cnv as u32;
        let m = mate[v] as usize;
        if m != v {
            map[m] = cnv as u32;
        }
        cnv += 1;
    }
    (map, cnv)
}

/// Coarsens `g` until it has at most `coarsen_to` vertices or shrinkage
/// stalls (a level removing < 5% of vertices stops the process).
///
/// Convenience wrapper over [`coarsen_with`] with default parallelism
/// knobs and a throwaway workspace.
pub fn coarsen(g: &Graph, coarsen_to: usize, seed: u64) -> Hierarchy {
    coarsen_with(g, &CoarsenParams::new(coarsen_to, seed), &mut CoarsenWorkspace::new())
}

/// [`coarsen`] with explicit parallelism knobs and workspace reuse.
///
/// Levels at or above `params.parallel_threshold` vertices run the
/// parallel matcher and parallel contraction; the rest run sequentially.
/// Both paths are deterministic per seed, so the hierarchy is a pure
/// function of `(g, params)` regardless of the rayon pool size. Each coarse
/// graph is moved into the hierarchy exactly once and all scratch lives in
/// `ws`, so the steady-state level loop allocates only its outputs.
pub fn coarsen_with(g: &Graph, params: &CoarsenParams, ws: &mut CoarsenWorkspace) -> Hierarchy {
    coarsen_recorded(g, params, ws, &Recorder::disabled())
}

/// [`coarsen_with`] with telemetry: each level emits a `coarsen.level`
/// span (vertex/edge counts, chosen matcher) wrapping `coarsen.match` and
/// `coarsen.contract` child spans. The recorder does not influence the
/// result — the hierarchy stays a pure function of `(g, params)`.
pub fn coarsen_recorded(
    g: &Graph,
    params: &CoarsenParams,
    ws: &mut CoarsenWorkspace,
    rec: &Recorder,
) -> Hierarchy {
    let mut levels: Vec<Level> = Vec::new();
    let mut level_seed = params.seed;
    loop {
        let current = levels.last().map_or(g, |l| &l.graph);
        if current.nv() <= params.coarsen_to {
            break;
        }
        let parallel = current.nv() >= params.parallel_threshold;
        let mut level_span = rec
            .span("coarsen.level")
            .attr("level", levels.len())
            .attr("nv", current.nv())
            .attr("ne", current.ne())
            .attr("parallel", parallel);
        let (map, cnv) = {
            let _match_span =
                rec.span("coarsen.match").attr("nv", current.nv()).attr("ne", current.ne());
            if parallel {
                parallel_hem(current, level_seed, params.matching_rounds, ws)
            } else {
                sequential_hem(current, level_seed, ws)
            }
        };
        level_span.set_attr("coarse_nv", cnv);
        if cnv as f64 > current.nv() as f64 * 0.95 {
            break; // matching stalled (e.g. star graphs)
        }
        let coarse = {
            let _contract_span =
                rec.span("coarsen.contract").attr("nv", current.nv()).attr("coarse_nv", cnv);
            contract_with(current, &map, cnv, parallel, &mut ws.contract)
        };
        levels.push(Level { graph: coarse, map });
        level_seed = level_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    Hierarchy { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, 2);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                // Border nodes get a contact weight, like a mesh surface.
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                b.set_vwgt(id(i, j), &[1, i64::from(border)]);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    fn check_valid_matching(g: &Graph, map: &[u32], cnv: usize) {
        // Each coarse id has 1 or 2 members.
        let mut counts = vec![0; cnv];
        for &c in map {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1 || c == 2));
        // Matched pairs must be adjacent.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); cnv];
        for (v, &c) in map.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        for m in members.iter().filter(|m| m.len() == 2) {
            assert!(g.adj(m[0]).contains(&m[1]), "matched vertices {m:?} are not adjacent");
        }
    }

    #[test]
    fn matching_is_a_valid_pairing() {
        let g = grid(10, 10);
        let (map, cnv) = heavy_edge_matching(&g, 7);
        assert!(cnv >= g.nv() / 2);
        assert!(cnv < g.nv());
        check_valid_matching(&g, &map, cnv);
    }

    #[test]
    fn parallel_matching_is_a_valid_pairing() {
        let g = grid(10, 10);
        let (map, cnv) = parallel_heavy_edge_matching(&g, 7, DEFAULT_MATCHING_ROUNDS);
        assert!(cnv >= g.nv() / 2);
        assert!(cnv < g.nv(), "parallel matcher matched nothing");
        check_valid_matching(&g, &map, cnv);
    }

    #[test]
    fn parallel_matching_is_deterministic_and_effective() {
        let g = grid(24, 24);
        let (m1, c1) = parallel_heavy_edge_matching(&g, 3, DEFAULT_MATCHING_ROUNDS);
        let (m2, c2) = parallel_heavy_edge_matching(&g, 3, DEFAULT_MATCHING_ROUNDS);
        assert_eq!(m1, m2);
        assert_eq!(c1, c2);
        // The handshake loop should pair the vast majority of a grid.
        assert!((c1 as f64) < 0.62 * g.nv() as f64, "only {} coarse vertices from {}", c1, g.nv());
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let g = grid(16, 16);
        let h = coarsen(&g, 20, 3);
        assert!(!h.levels.is_empty());
        let coarsest = h.coarsest().unwrap();
        assert_eq!(coarsest.total_vwgt(), g.total_vwgt());
        assert!(coarsest.nv() <= g.nv() / 2);
    }

    #[test]
    fn coarsening_terminates_on_small_graph() {
        let g = grid(3, 3);
        let h = coarsen(&g, 100, 1);
        assert!(h.levels.is_empty());
        assert!(h.coarsest().is_none());
    }

    #[test]
    fn coarsening_is_deterministic_per_seed() {
        let g = grid(12, 12);
        let h1 = coarsen(&g, 30, 9);
        let h2 = coarsen(&g, 30, 9);
        assert_eq!(h1.levels.len(), h2.levels.len());
        for (a, b) in h1.levels.iter().zip(h2.levels.iter()) {
            assert_eq!(a.map, b.map);
        }
    }

    #[test]
    fn parallel_and_sequential_params_both_terminate_and_preserve_weight() {
        let g = grid(20, 20);
        let mut ws = CoarsenWorkspace::new();
        for threshold in [0usize, usize::MAX] {
            let params =
                CoarsenParams { parallel_threshold: threshold, ..CoarsenParams::new(25, 11) };
            let h = coarsen_with(&g, &params, &mut ws);
            assert!(!h.is_empty());
            assert_eq!(h.coarsest().unwrap().total_vwgt(), g.total_vwgt());
            // Projection chain must stay consistent level to level.
            for lvl in 0..h.len() {
                let fine = h.fine_graph(lvl, &g);
                assert_eq!(h.levels[lvl].map.len(), fine.nv());
            }
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_workspace() {
        let g = grid(18, 18);
        let params = CoarsenParams { parallel_threshold: 0, ..CoarsenParams::new(30, 5) };
        let mut ws = CoarsenWorkspace::new();
        // Dirty the workspace with a different run first.
        let _ = coarsen_with(&g, &CoarsenParams::new(40, 77), &mut ws);
        let reused = coarsen_with(&g, &params, &mut ws);
        let fresh = coarsen_with(&g, &params, &mut CoarsenWorkspace::new());
        assert_eq!(reused.len(), fresh.len());
        for (a, b) in reused.levels.iter().zip(fresh.levels.iter()) {
            assert_eq!(a.map, b.map);
            assert_eq!(a.graph.xadj(), b.graph.xadj());
            assert_eq!(a.graph.adjncy(), b.graph.adjncy());
            assert_eq!(a.graph.adjwgt(), b.graph.adjwgt());
            assert_eq!(a.graph.vwgt_raw(), b.graph.vwgt_raw());
        }
    }

    #[test]
    fn edgeless_graph_stalls_gracefully() {
        let g = Graph::edgeless(50, 1);
        let h = coarsen(&g, 10, 5);
        // No edges -> no matches -> stall detection stops immediately.
        assert!(h.levels.is_empty());
    }

    #[test]
    fn edgeless_graph_stalls_gracefully_in_parallel() {
        let g = Graph::edgeless(50, 1);
        let params = CoarsenParams { parallel_threshold: 0, ..CoarsenParams::new(10, 5) };
        let h = coarsen_with(&g, &params, &mut CoarsenWorkspace::new());
        assert!(h.levels.is_empty());
    }
}
