//! Partitioner configuration.

use cip_telemetry::Recorder;

/// Tuning knobs for the multilevel partitioner.
///
/// The defaults follow METIS conventions: 5% imbalance tolerance on the
/// primary constraint, a somewhat looser 15% on secondary constraints
/// (the contact constraint is sparse and lumpy — a handful of surface
/// nodes per element — so exact balance is neither achievable nor needed),
/// coarsening down to a few hundred vertices, a small portfolio of random
/// initial bisections, and a few FM passes per uncoarsening level.
#[derive(Debug, Clone)]
pub struct PartitionerConfig {
    /// Allowed imbalance per constraint: constraint `j` must satisfy
    /// `LoadImbalance(P, j) <= 1 + eps(j)`. If the vector is shorter than
    /// `ncon`, the last entry is broadcast.
    pub eps: Vec<f64>,
    /// RNG seed (the partitioner is fully deterministic given the seed).
    pub seed: u64,
    /// Stop coarsening once the graph has at most this many vertices.
    pub coarsen_to: usize,
    /// Number of random greedy-growing attempts for the initial bisection.
    pub init_tries: usize,
    /// Maximum FM passes per uncoarsening level.
    pub fm_passes: usize,
    /// Maximum greedy k-way refinement passes on the full graph.
    pub kway_passes: usize,
    /// Graphs with at least this many vertices coarsen with the parallel
    /// (propose-then-resolve) matcher and parallel contraction; smaller
    /// graphs and recursion sub-problems stay on the cheaper sequential
    /// path. Both paths are deterministic per seed at any thread count.
    pub parallel_threshold: usize,
    /// Rounds cap for the parallel matcher's propose-then-resolve loop
    /// (it also stops as soon as a round stops matching new vertices).
    pub matching_rounds: usize,
    /// Rounds cap per k-way refinement pass for the parallel
    /// (propose-then-resolve) sweep used on graphs at or above
    /// `parallel_threshold` vertices (the sweep also stops as soon as a
    /// round commits no move).
    pub refine_rounds: usize,
    /// Largest *transient* balance violation an FM hill-climb may cross
    /// mid-pass (the best-prefix rollback never commits to a state less
    /// feasible than the start, so this only widens the search).
    pub transient_violation: f64,
    /// Telemetry sink. Disabled by default; when enabled, the partitioner
    /// emits per-level coarsen/match/contract/initial/refine spans (see
    /// DESIGN.md §6). A disabled recorder costs one branch per event.
    pub recorder: Recorder,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        Self {
            eps: vec![0.05, 0.15],
            seed: 1,
            coarsen_to: 160,
            init_tries: 6,
            fm_passes: 4,
            kway_passes: 6,
            parallel_threshold: 4096,
            matching_rounds: 8,
            refine_rounds: 8,
            transient_violation: 0.02,
            recorder: Recorder::disabled(),
        }
    }
}

impl PartitionerConfig {
    /// A config with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The imbalance tolerance for constraint `j` (broadcasting the last
    /// entry when `eps` is shorter than the constraint count).
    pub fn eps_for(&self, j: usize) -> f64 {
        *self.eps.get(j).unwrap_or_else(|| self.eps.last().expect("eps must be non-empty"))
    }

    /// Derives a child seed for an independent sub-problem (recursive
    /// bisection sides, initial-partition retries) without correlating
    /// their random streams.
    pub fn child_seed(&self, salt: u64) -> u64 {
        child_seed(self.seed, salt)
    }
}

/// [`PartitionerConfig::child_seed`] as a free function, for call sites
/// that carry a per-recursion seed override instead of cloning the whole
/// config (see `rb_recurse`).
pub fn child_seed(seed: u64, salt: u64) -> u64 {
    // SplitMix64 step: well-distributed and cheap.
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_broadcasts_last_entry() {
        let cfg = PartitionerConfig { eps: vec![0.05, 0.2], ..Default::default() };
        assert_eq!(cfg.eps_for(0), 0.05);
        assert_eq!(cfg.eps_for(1), 0.2);
        assert_eq!(cfg.eps_for(5), 0.2);
    }

    #[test]
    fn child_seeds_differ() {
        let cfg = PartitionerConfig::with_seed(42);
        let a = cfg.child_seed(1);
        let b = cfg.child_seed(2);
        assert_ne!(a, b);
        assert_ne!(a, 42);
        // Deterministic.
        assert_eq!(a, cfg.child_seed(1));
    }
}
