//! Initial bisection of the coarsest graph.
//!
//! Multi-constraint greedy graph growing (GGG): grow side 0 from a random
//! seed vertex, always absorbing the frontier vertex with the highest FM
//! gain, until side 0 reaches its target share of the primary constraint.
//! A balance-repair pass then fixes the secondary constraints, and a short
//! FM run polishes the cut. Several seeded attempts are made and the best
//! feasible result (lowest cut) is kept.

use crate::config::{child_seed, PartitionerConfig};
use crate::fm::{fm_refine_with, rebalance_bisection_with, side_weights, BisectTargets};
use crate::RefineWorkspace;
use cip_graph::Graph;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::cmp::Reverse;

/// Computes an initial bisection of `g` with side-0 target fraction
/// `targets.frac0`, trying `cfg.init_tries` seeded growings (with random
/// streams rooted at `seed`, normally `cfg.seed` or a recursion-node
/// override) and returning the best assignment found.
pub fn greedy_bisection(
    g: &Graph,
    targets: &BisectTargets,
    cfg: &PartitionerConfig,
    seed: u64,
) -> Vec<u32> {
    greedy_bisection_with(g, targets, cfg, seed, &mut RefineWorkspace::new())
}

/// [`greedy_bisection`] with a reusable workspace: the growing frontier,
/// the balance repair and the FM polish of every attempt share the
/// workspace's scratch, so restarts stop re-allocating — the best
/// assignment is cloned out only when an attempt actually improves.
pub fn greedy_bisection_with(
    g: &Graph,
    targets: &BisectTargets,
    cfg: &PartitionerConfig,
    seed: u64,
    ws: &mut RefineWorkspace,
) -> Vec<u32> {
    assert!(g.nv() >= 2, "bisection needs at least two vertices");
    // Take the assignment buffer out so `ws` stays borrowable by the
    // rebalance/FM scratch below; restored before returning.
    let mut asg = std::mem::take(&mut ws.grow_asg);
    let mut best: Option<(f64, i64, Vec<u32>)> = None;
    for t in 0..cfg.init_tries.max(1) {
        let try_seed = child_seed(seed, 0xB15EC7 + t as u64);
        grow_once(g, targets, try_seed, ws, &mut asg);
        rebalance_bisection_with(g, &mut asg, targets, ws);
        let cut = fm_refine_with(g, &mut asg, targets, cfg.fm_passes, cfg.transient_violation, ws);
        let violation = targets.violation(&side_weights(g, &asg));
        let key = (violation, cut);
        if best.as_ref().is_none_or(|(bv, bc, _)| key < (*bv, *bc)) {
            match &mut best {
                Some((bv, bc, kept)) => {
                    *bv = violation;
                    *bc = cut;
                    kept.clone_from(&asg);
                }
                None => best = Some((violation, cut, asg.clone())),
            }
        }
    }
    ws.grow_asg = asg;
    best.expect("at least one bisection attempt").2
}

/// One greedy growing from a random seed vertex, written into `asg`. The
/// frontier heap, gain table and membership flags live in the workspace,
/// so repeated attempts perform no heap allocation.
fn grow_once(
    g: &Graph,
    targets: &BisectTargets,
    seed: u64,
    ws: &mut RefineWorkspace,
    asg: &mut Vec<u32>,
) {
    let nv = g.nv();
    let mut rng = SmallRng::seed_from_u64(seed);
    asg.clear();
    asg.resize(nv, 1);

    // Primary stopping constraint: the first constraint with nonzero total
    // (constraint 0 in practice — every mesh node does FE work).
    let primary = (0..targets.ncon()).find(|&j| targets.totals[j] > 0).unwrap_or(0);
    let target0 = targets.frac0 * targets.totals[primary] as f64;

    let mut grown = 0i64;
    let heap = &mut ws.grow_heap;
    heap.clear();
    let gains = &mut ws.grow_gains;
    gains.clear();
    gains.resize(nv, 0);
    let in_side0 = &mut ws.grow_in0;
    in_side0.clear();
    in_side0.resize(nv, false);

    let start = rng.gen_range(0..nv as u32);
    let mut pending: Option<u32> = Some(start);

    while (grown as f64) < target0 {
        let v = match pending.take() {
            Some(v) => v,
            None => {
                // Pop the best frontier vertex, skipping stale entries.
                let mut chosen = None;
                while let Some((gain, Reverse(v))) = heap.pop() {
                    if !in_side0[v as usize] && gains[v as usize] == gain {
                        chosen = Some(v);
                        break;
                    }
                }
                match chosen {
                    Some(v) => v,
                    None => {
                        // Disconnected graph: restart from a random
                        // unabsorbed vertex.
                        match (0..nv as u32).find(|&v| !in_side0[v as usize]) {
                            Some(v) => v,
                            None => break,
                        }
                    }
                }
            }
        };
        in_side0[v as usize] = true;
        asg[v as usize] = 0;
        grown += g.vwgt(v)[primary];
        for (u, w) in g.neighbors(v) {
            if !in_side0[u as usize] {
                gains[u as usize] += 2 * w; // u gains an edge into side 0
                heap.push((gains[u as usize], Reverse(u)));
            }
        }
    }
}

/// Splits a graph that is smaller than the requested part count: each
/// vertex gets its own part, the rest stay empty. Degenerate but total —
/// callers hit this only on pathological inputs (e.g. contracted region
/// graphs with fewer regions than parts).
pub fn assign_distinct_parts(nv: usize, k: usize) -> Vec<u32> {
    (0..nv).map(|v| (v % k) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::bisection_cut;
    use cip_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, ncon);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                let w: Vec<i64> =
                    (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
                b.set_vwgt(id(i, j), &w);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn bisection_of_grid_is_balanced_and_reasonable() {
        let g = grid(12, 12, 1);
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cfg = PartitionerConfig::with_seed(11);
        let asg = greedy_bisection(&g, &targets, &cfg, cfg.seed);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
        let cut = bisection_cut(&g, &asg);
        // Optimal straight cut = 12; allow slack but reject garbage
        // (a random split would cut ~132 edges).
        assert!(cut <= 30, "cut {cut} too high");
    }

    #[test]
    fn two_constraint_bisection_balances_both() {
        let g = grid(12, 12, 2);
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.2]);
        let cfg = PartitionerConfig::with_seed(5);
        let asg = greedy_bisection(&g, &targets, &cfg, cfg.seed);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
    }

    #[test]
    fn asymmetric_fraction_respected() {
        let g = grid(10, 10, 1);
        // One third / two thirds split (k1=1, k2=2 of a 3-way).
        let targets = BisectTargets::new(&g, 1.0 / 3.0, &[0.05]);
        let cfg = PartitionerConfig::with_seed(2);
        let asg = greedy_bisection(&g, &targets, &cfg, cfg.seed);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
        assert!((sw[0] as f64 - 100.0 / 3.0).abs() <= 5.0, "side 0 weight {}", sw[0]);
    }

    #[test]
    fn disconnected_graph_grows_across_components() {
        // Two disjoint 4-cliques-ish paths.
        let mut b = GraphBuilder::new(8, 1);
        for v in 0..8u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..3u32 {
            b.add_edge(v, v + 1, 1);
            b.add_edge(v + 4, v + 5, 1);
        }
        let g = b.build();
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cfg = PartitionerConfig::with_seed(3);
        let asg = greedy_bisection(&g, &targets, &cfg, cfg.seed);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw));
    }

    #[test]
    fn reused_workspace_bisection_matches_fresh() {
        let g = grid(12, 12, 2);
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.2]);
        let cfg = PartitionerConfig::with_seed(9);
        let mut ws = RefineWorkspace::new();
        // Dirty every grow/FM buffer on a different graph size first.
        let g2 = grid(6, 7, 1);
        let t2 = BisectTargets::new(&g2, 0.5, &[0.05]);
        let _ = greedy_bisection_with(&g2, &t2, &cfg, cfg.seed, &mut ws);

        let reused = greedy_bisection_with(&g, &targets, &cfg, cfg.seed, &mut ws);
        let fresh = greedy_bisection(&g, &targets, &cfg, cfg.seed);
        assert_eq!(reused, fresh, "scratch reuse must not change the result");
    }

    #[test]
    fn assign_distinct_parts_covers() {
        let asg = assign_distinct_parts(3, 5);
        assert_eq!(asg, vec![0, 1, 2]);
        let asg2 = assign_distinct_parts(7, 3);
        assert!(asg2.iter().all(|&p| p < 3));
    }
}
