//! Exact maximum-weight assignment (Hungarian algorithm).
//!
//! Used in two places:
//!
//! * **scratch-remap repartitioning** — relabel the parts of a freshly
//!   computed partition so they overlap the previous partition as much as
//!   possible, minimizing data migration;
//! * **the ML+RCB baseline's M2MComm metric** — the paper optimizes the
//!   mapping between the FE partition and the RCB partition with a maximal
//!   weight matching before counting the contact points that still live on
//!   different processors in the two decompositions.
//!
//! The implementation is the classical O(n³) potentials formulation on a
//! dense cost matrix; `k` is at most a few hundred parts, so this is
//! microseconds in practice.

/// Computes a perfect matching of rows to columns of the square weight
/// matrix `w` (row-major, `n x n`) that **maximizes** the total weight.
///
/// Returns `assignment` with `assignment[row] = col`.
///
/// ```
/// use cip_partition::max_weight_assignment;
///
/// // Overlap counts between an old and a new 3-way partition.
/// let overlap = vec![
///     1, 9, 2, // new part 0 overlaps old part 1 the most
///     8, 1, 1, // new part 1 overlaps old part 0 the most
///     0, 2, 7, // new part 2 keeps its label
/// ];
/// assert_eq!(max_weight_assignment(3, &overlap), vec![1, 0, 2]);
/// ```
///
/// # Panics
/// Panics if `w.len() != n * n`.
pub fn max_weight_assignment(n: usize, w: &[i64]) -> Vec<usize> {
    assert_eq!(w.len(), n * n, "weight matrix must be n x n");
    if n == 0 {
        return Vec::new();
    }
    // Convert to min-cost: cost = max_entry - w (all costs >= 0).
    let max_entry = *w.iter().max().unwrap();
    let cost = |r: usize, c: usize| max_entry - w[r * n + c];

    // Classical Hungarian with potentials; 1-based helper arrays.
    const INF: i64 = i64::MAX / 4;
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (1-based)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// The total weight achieved by an assignment on matrix `w`.
pub fn assignment_weight(n: usize, w: &[i64], assignment: &[usize]) -> i64 {
    assignment.iter().enumerate().map(|(r, &c)| w[r * n + c]).sum()
}

/// Brute-force optimum by permutation enumeration — test oracle only.
#[cfg(test)]
fn brute_force(n: usize, w: &[i64]) -> i64 {
    fn rec(n: usize, w: &[i64], row: usize, used: &mut Vec<bool>, acc: i64, best: &mut i64) {
        if row == n {
            *best = (*best).max(acc);
            return;
        }
        for c in 0..n {
            if !used[c] {
                used[c] = true;
                rec(n, w, row + 1, used, acc + w[row * n + c], best);
                used[c] = false;
            }
        }
    }
    let mut best = i64::MIN;
    rec(n, w, 0, &mut vec![false; n], 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_preferred_on_diagonal_matrix() {
        let n = 4;
        let mut w = vec![0i64; n * n];
        for i in 0..n {
            w[i * n + i] = 10;
        }
        let a = max_weight_assignment(n, &w);
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(assignment_weight(n, &w, &a), 40);
    }

    #[test]
    fn antidiagonal() {
        let n = 3;
        let mut w = vec![0i64; n * n];
        for i in 0..n {
            w[i * n + (n - 1 - i)] = 5;
        }
        let a = max_weight_assignment(n, &w);
        assert_eq!(a, vec![2, 1, 0]);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        // Deterministic pseudo-random matrices (no rand dependency needed).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as i64
        };
        for n in 1..=5usize {
            for _ in 0..20 {
                let w: Vec<i64> = (0..n * n).map(|_| next()).collect();
                let a = max_weight_assignment(n, &w);
                // Valid permutation.
                let mut seen = vec![false; n];
                for &c in &a {
                    assert!(!seen[c]);
                    seen[c] = true;
                }
                assert_eq!(assignment_weight(n, &w, &a), brute_force(n, &w), "n={n} w={w:?}");
            }
        }
    }

    #[test]
    fn handles_negative_weights() {
        let n = 2;
        let w = vec![-5, -1, -2, -10];
        let a = max_weight_assignment(n, &w);
        // Best: (0,1) + (1,0) = -1 + -2 = -3 vs diagonal -15.
        assert_eq!(assignment_weight(n, &w, &a), -3);
    }

    #[test]
    fn empty_matrix() {
        assert!(max_weight_assignment(0, &[]).is_empty());
    }
}
