//! Scratch-remap repartitioning.
//!
//! The multi-constraint *repartitioning* primitive of §4.3 (and of the
//! ML+RCB baseline's FE phase): compute a fresh partition, then relabel its
//! parts with a maximum-weight matching against the previous partition so
//! that as many vertices as possible keep their part — which is exactly the
//! "maximize overlap" secondary objective of the graph-repartitioning
//! problem (§2).

use crate::config::PartitionerConfig;
use crate::hungarian::max_weight_assignment;
use crate::rb::partition_kway;
use cip_graph::Graph;

/// Relabels `fresh`'s parts to maximize (weighted) overlap with `old`.
///
/// `old` entries equal to `u32::MAX` mark vertices with no previous
/// assignment (e.g. newly exposed nodes); they contribute nothing to the
/// overlap matrix. Overlap is weighted by constraint-0 vertex weight, the
/// same weight the migration cost is paid in.
pub fn remap_to_maximize_overlap(g: &Graph, old: &[u32], fresh: &[u32], k: usize) -> Vec<u32> {
    assert_eq!(old.len(), g.nv());
    assert_eq!(fresh.len(), g.nv());
    let mut overlap = vec![0i64; k * k];
    for v in 0..g.nv() {
        let o = old[v];
        if o == u32::MAX {
            continue;
        }
        debug_assert!((o as usize) < k, "old part id out of range");
        overlap[fresh[v] as usize * k + o as usize] += g.vwgt(v as u32)[0];
    }
    let sigma = max_weight_assignment(k, &overlap); // fresh part -> old label
    fresh.iter().map(|&p| sigma[p as usize] as u32).collect()
}

/// Repartitions `g` into `k` parts, maximizing overlap with `old`.
pub fn repartition(g: &Graph, k: usize, old: &[u32], cfg: &PartitionerConfig) -> Vec<u32> {
    let fresh = partition_kway(g, k, cfg);
    remap_to_maximize_overlap(g, old, &fresh, k)
}

/// The number of vertices whose part changed between two assignments
/// (ignoring `u32::MAX` entries in either) — the migration count.
pub fn migration_count(old: &[u32], new: &[u32]) -> usize {
    old.iter().zip(new.iter()).filter(|(&o, &n)| o != u32::MAX && n != u32::MAX && o != n).count()
}

/// Compacts a `k`-part assignment after losing the ranks in `dead`:
/// vertices of a dead part become unassigned (`u32::MAX`, for the
/// diffusion repartitioner to adopt), and the surviving labels are made
/// contiguous in `0..k - dead.len()` by moving the *highest* surviving
/// labels into the freed slots (swap-style, so at most `dead.len()` parts
/// are relabeled and no surviving vertex migrates because of the
/// renumbering itself). Returns the new part count.
///
/// The same swap discipline is used by
/// `cip_core::comm::RankTraffic::without_rank`, so traffic matrices and
/// assignments stay label-compatible through a loss.
pub fn compact_parts_after_loss(parts: &mut [u32], k: usize, dead: &[u32]) -> usize {
    assert!(dead.len() <= k, "cannot lose more ranks than exist");
    let mut is_dead = vec![false; k];
    for &d in dead {
        assert!((d as usize) < k, "dead rank {d} out of range for k={k}");
        is_dead[d as usize] = true;
    }
    // Orphan the dead parts' vertices first.
    for p in parts.iter_mut() {
        if *p != u32::MAX && is_dead[*p as usize] {
            *p = u32::MAX;
        }
    }
    // Fill freed low slots from the top: for each dead slot below the new
    // part count, relabel the highest surviving part into it.
    let new_k = k - dead.len();
    let mut relabel: Vec<u32> = (0..k as u32).collect();
    let mut top = k;
    for slot in 0..new_k {
        if !is_dead[slot] {
            continue;
        }
        // Find the highest surviving label above new_k.
        top -= 1;
        while is_dead[top] {
            top -= 1;
        }
        relabel[top] = slot as u32;
    }
    for p in parts.iter_mut() {
        if *p != u32::MAX {
            *p = relabel[*p as usize];
        }
    }
    new_k
}

/// Rank-loss recovery: compacts `old` over the survivors of `dead`, then
/// diffusion-repartitions the orphaned weight across the remaining
/// `k - dead.len()` parts (minimal migration for the survivors). Returns
/// the new assignment and the new part count.
///
/// Requires at least two survivors — with fewer there is nothing to
/// partition, and callers should fall back to a serial step (see
/// `cip::trace::run_traced`).
pub fn repartition_survivors(
    g: &Graph,
    k: usize,
    old: &[u32],
    dead: &[u32],
    cfg: &PartitionerConfig,
) -> (Vec<u32>, usize) {
    let mut parts = old.to_vec();
    let new_k = compact_parts_after_loss(&mut parts, k, dead);
    assert!(new_k >= 2, "repartition_survivors needs >= 2 survivors, got {new_k}");
    let fresh = crate::diffusion::diffusion_repartition(g, new_k, &parts, cfg);
    (fresh, new_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, 1);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn remap_recovers_label_permutation() {
        let g = grid(8, 8);
        let old: Vec<u32> = (0..64).map(|v| u32::from(v % 8 >= 4)).collect();
        // fresh = old with labels swapped.
        let fresh: Vec<u32> = old.iter().map(|&p| 1 - p).collect();
        let remapped = remap_to_maximize_overlap(&g, &old, &fresh, 2);
        assert_eq!(remapped, old);
        assert_eq!(migration_count(&old, &remapped), 0);
    }

    #[test]
    fn remap_ignores_unassigned_vertices() {
        let g = grid(4, 4);
        let mut old: Vec<u32> = (0..16).map(|v| u32::from(v >= 8)).collect();
        old[0] = u32::MAX;
        let fresh: Vec<u32> = (0..16).map(|v| u32::from(v < 8)).collect();
        let remapped = remap_to_maximize_overlap(&g, &old, &fresh, 2);
        // Labels flipped back to match old.
        assert_eq!(remapped[15], 1);
        assert_eq!(remapped[1], 0);
    }

    #[test]
    fn repartition_overlaps_previous_partition() {
        let g = grid(12, 12);
        let cfg = PartitionerConfig::with_seed(17);
        let old = partition_kway(&g, 4, &cfg);
        // Repartition with a different seed: raw labels would be arbitrary,
        // but remapping must recover most of the overlap.
        let cfg2 = PartitionerConfig::with_seed(18);
        let new = repartition(&g, 4, &old, &cfg2);
        let moved = migration_count(&old, &new);
        assert!(moved < g.nv() / 2, "scratch-remap moved {moved}/{} vertices", g.nv());
    }

    #[test]
    fn migration_count_basics() {
        assert_eq!(migration_count(&[0, 1, 2], &[0, 1, 2]), 0);
        assert_eq!(migration_count(&[0, 1, 2], &[2, 1, 0]), 2);
        assert_eq!(migration_count(&[u32::MAX, 1], &[0, 0]), 1);
    }

    #[test]
    fn compact_orphans_dead_part_and_keeps_labels_contiguous() {
        // Losing the top part: survivors keep their labels untouched.
        let mut parts = vec![0, 1, 2, 3, 2, 1, 0, 3];
        let new_k = compact_parts_after_loss(&mut parts, 4, &[3]);
        assert_eq!(new_k, 3);
        let m = u32::MAX;
        assert_eq!(parts, vec![0, 1, 2, m, 2, 1, 0, m]);

        // Losing a middle part: only the top label moves (into the hole).
        let mut parts = vec![0, 1, 2, 3, 2, 1, 0, 3];
        let new_k = compact_parts_after_loss(&mut parts, 4, &[1]);
        assert_eq!(new_k, 3);
        assert_eq!(parts, vec![0, m, 2, 1, 2, m, 0, 1]);

        // Multiple losses, already-unassigned entries pass through.
        let mut parts = vec![m, 0, 1, 2, 3, 0];
        let new_k = compact_parts_after_loss(&mut parts, 4, &[0, 3]);
        assert_eq!(new_k, 2);
        assert_eq!(parts, vec![m, m, 1, 0, m, m]);
        assert!(parts.iter().all(|&p| p == m || (p as usize) < new_k));
    }

    #[test]
    fn repartition_survivors_covers_everything_in_fewer_parts() {
        let g = grid(12, 12);
        let cfg = PartitionerConfig::with_seed(9);
        let old = partition_kway(&g, 4, &cfg);
        let (fresh, new_k) = repartition_survivors(&g, 4, &old, &[2], &cfg);
        assert_eq!(new_k, 3);
        assert_eq!(fresh.len(), g.nv());
        assert!(fresh.iter().all(|&p| (p as usize) < new_k), "orphans must all be adopted");
        for p in 0..new_k as u32 {
            assert!(fresh.contains(&p), "survivor part {p} lost all its vertices");
        }
        // Survivors of the dead part aside, diffusion keeps migration low:
        // vertices that stayed assigned mostly keep their (compacted) label.
        let mut compacted = old.clone();
        compact_parts_after_loss(&mut compacted, 4, &[2]);
        let moved = migration_count(&compacted, &fresh);
        assert!(moved < g.nv() / 2, "diffusion recovery moved {moved}/{} vertices", g.nv());
    }
}
