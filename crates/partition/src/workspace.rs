//! Bundled partitioner scratch for callers that partition repeatedly.
//!
//! A one-shot CLI run can afford to let [`partition_kway`] and
//! [`partition_kway_multilevel`] allocate their coarsening and
//! refinement workspaces internally. A long-lived service cannot: a job
//! server partitioning on every submission wants the same warmed
//! buffers back for every job, so steady-state execution stays off the
//! allocator. [`PartitionWorkspace`] bundles the two reusable scratch
//! structures behind one handle that the `_with` partitioner entry
//! points ([`crate::rb::partition_kway_with`],
//! [`crate::kway_ml::partition_kway_multilevel_with`]) accept.
//!
//! Reuse is behaviour-neutral: every workspace is reset by its consumer
//! before use, so a warmed workspace produces bit-identical partitions
//! to a fresh one (regression-tested here and in `bisect`).
//!
//! [`partition_kway`]: crate::rb::partition_kway
//! [`partition_kway_multilevel`]: crate::kway_ml::partition_kway_multilevel

use crate::coarsen::CoarsenWorkspace;
use crate::kway::RefineWorkspace;

/// Reusable scratch for repeated partitioning calls: the coarsening
/// workspace (matching/contraction buffers) and the refinement
/// workspace (degrees, boundary list, balance scratch).
#[derive(Default)]
pub struct PartitionWorkspace {
    /// Matching + contraction scratch for multilevel coarsening.
    pub coarsen: CoarsenWorkspace,
    /// Refinement/balance scratch, reserved at the finest graph size.
    pub refine: RefineWorkspace,
}

impl PartitionWorkspace {
    /// A fresh (cold) workspace; it warms up over the first call.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionerConfig;
    use crate::kway_ml::{partition_kway_multilevel, partition_kway_multilevel_with};
    use crate::rb::{partition_kway, partition_kway_with};
    use cip_graph::GraphBuilder;

    fn grid(nx: usize, ny: usize) -> cip_graph::Graph {
        let mut b = GraphBuilder::new(nx * ny, 1);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn warmed_workspace_partitions_are_bit_identical_to_fresh() {
        let g = grid(20, 20);
        let cfg = PartitionerConfig::with_seed(11);
        let mut ws = PartitionWorkspace::new();
        for k in [2usize, 4, 6] {
            let fresh_rb = partition_kway(&g, k, &cfg);
            let fresh_ml = partition_kway_multilevel(&g, k, &cfg);
            // Two pooled calls per k: the second runs fully warmed.
            for _ in 0..2 {
                assert_eq!(partition_kway_with(&g, k, &cfg, &mut ws.refine), fresh_rb, "k={k}");
                assert_eq!(partition_kway_multilevel_with(&g, k, &cfg, &mut ws), fresh_ml, "k={k}");
            }
        }
    }
}
