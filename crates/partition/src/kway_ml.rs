//! Multilevel *k-way* partitioning.
//!
//! The recursive-bisection driver ([`crate::rb`]) coarsens the graph once
//! per bisection — `O(log k)` coarsening sweeps. The multilevel k-way
//! scheme of Karypis & Kumar (*Multilevel k-way partitioning scheme for
//! irregular graphs*, cited by the paper as \[17\]) coarsens **once**,
//! computes a k-way partition of the coarsest graph (here: recursive
//! bisection, which is cheap at that size), and then refines the k-way
//! partition directly at every uncoarsening level. This is both faster
//! for large `k` and usually better in cut, because refinement sees all
//! `k` parts at once instead of being confined inside bisection
//! boundaries.

use crate::coarsen::{coarsen_recorded, CoarsenParams};
use crate::config::PartitionerConfig;
use crate::kway::{balance_kway_with, refine_kway_with};
use crate::rb;
use cip_graph::Graph;

/// Computes a `k`-way multi-constraint partition of `g` with the
/// multilevel k-way scheme.
///
/// Deterministic for a fixed `cfg.seed`. The coarsest graph is sized
/// `max(cfg.coarsen_to, 8k)` so the initial k-way partition has room to
/// balance.
pub fn partition_kway_multilevel(g: &Graph, k: usize, cfg: &PartitionerConfig) -> Vec<u32> {
    partition_kway_multilevel_with(g, k, cfg, &mut crate::workspace::PartitionWorkspace::new())
}

/// [`partition_kway_multilevel`] with caller-supplied scratch: the
/// coarsening and refinement workspaces come from `ws` instead of being
/// allocated per call, so a repeat caller (the job server's per-worker
/// workspace pool) keeps its buffers warm across partitions.
/// Bit-identical to [`partition_kway_multilevel`] for any workspace
/// state.
pub fn partition_kway_multilevel_with(
    g: &Graph,
    k: usize,
    cfg: &PartitionerConfig,
    ws: &mut crate::workspace::PartitionWorkspace,
) -> Vec<u32> {
    assert!(k >= 1, "k must be positive");
    if k == 1 || g.nv() == 0 {
        return vec![0; g.nv()];
    }
    if g.nv() <= k {
        return crate::bisect::assign_distinct_parts(g.nv(), k);
    }

    let rec = &cfg.recorder;
    let _top = rec.span("partition.kway_ml").attr("nv", g.nv()).attr("ne", g.ne()).attr("k", k);
    let params = CoarsenParams {
        coarsen_to: cfg.coarsen_to.max(8 * k),
        seed: cfg.child_seed(0x57A9E),
        parallel_threshold: cfg.parallel_threshold,
        matching_rounds: cfg.matching_rounds,
    };
    let hierarchy = {
        let _span = rec.span("partition.coarsen").attr("nv", g.nv()).attr("ne", g.ne());
        coarsen_recorded(g, &params, &mut ws.coarsen, rec)
    };

    // Initial k-way partition of the coarsest graph via recursive
    // bisection (the coarsest graph is small, so this is cheap). It
    // borrows the refinement workspace for its polish passes.
    let coarsest = hierarchy.coarsest().unwrap_or(g);
    let mut asg = {
        let _span =
            rec.span("partition.initial").attr("nv", coarsest.nv()).attr("levels", hierarchy.len());
        rb::partition_kway_with(coarsest, k, cfg, &mut ws.refine)
    };

    // Uncoarsen with direct k-way refinement at every level. One
    // workspace serves every level (reserved at the finest size up
    // front), and projection ping-pongs between `asg` and the workspace's
    // projection buffer, so the whole loop runs without steady-state
    // allocation on the sequential paths.
    let ws = &mut ws.refine;
    ws.reserve(g.nv());
    let mut fine_asg = Vec::with_capacity(g.nv());
    for lvl in (0..hierarchy.len()).rev() {
        let fine_graph = hierarchy.fine_graph(lvl, g);
        let _span = rec
            .span("partition.kway_refine")
            .attr("level", lvl)
            .attr("nv", fine_graph.nv())
            .attr("ne", fine_graph.ne());
        hierarchy.project_into(lvl, &asg, &mut fine_asg);
        refine_kway_with(fine_graph, k, &mut fine_asg, cfg, ws);
        balance_kway_with(fine_graph, k, &mut fine_asg, cfg, ws);
        std::mem::swap(&mut asg, &mut fine_asg);
    }
    refine_kway_with(g, k, &mut asg, cfg, ws);
    asg
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::{edge_cut, GraphBuilder, Partition};

    fn grid(nx: usize, ny: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(nx * ny, ncon);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
                let w: Vec<i64> =
                    (0..ncon).map(|c| if c == 0 { 1 } else { i64::from(border) }).collect();
                b.set_vwgt(id(i, j), &w);
                if i + 1 < nx {
                    b.add_edge(id(i, j), id(i + 1, j), 1);
                }
                if j + 1 < ny {
                    b.add_edge(id(i, j), id(i, j + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn kway_ml_produces_valid_balanced_partitions() {
        let g = grid(24, 24, 1);
        let cfg = PartitionerConfig::with_seed(5);
        for k in [4usize, 7, 16] {
            let asg = partition_kway_multilevel(&g, k, &cfg);
            let p = Partition::from_assignment(&g, k, asg);
            assert!(p.imbalance(0) <= 1.08, "k={k} imbalance {}", p.imbalance(0));
            for part in 0..k as u32 {
                assert!(p.part_size(part) > 0, "k={k} part {part} empty");
            }
        }
    }

    #[test]
    fn kway_ml_cut_is_competitive_with_rb() {
        let g = grid(32, 32, 1);
        let cfg = PartitionerConfig::with_seed(9);
        let k = 8;
        let ml = partition_kway_multilevel(&g, k, &cfg);
        let rb = crate::rb::partition_kway(&g, k, &cfg);
        let cut_ml = edge_cut(&g, &ml);
        let cut_rb = edge_cut(&g, &rb);
        // Not strictly better on every instance, but never catastrophically
        // worse.
        assert!((cut_ml as f64) <= 1.5 * cut_rb as f64, "ml cut {cut_ml} vs rb cut {cut_rb}");
    }

    #[test]
    fn kway_ml_handles_two_constraints() {
        let g = grid(20, 20, 2);
        let cfg = PartitionerConfig::with_seed(2);
        let asg = partition_kway_multilevel(&g, 5, &cfg);
        let p = Partition::from_assignment(&g, 5, asg);
        assert!(p.imbalance(0) <= 1.08, "c0 {}", p.imbalance(0));
        assert!(p.imbalance(1) <= 1.30, "c1 {}", p.imbalance(1));
    }

    #[test]
    fn trivial_cases() {
        let g = grid(3, 3, 1);
        assert!(partition_kway_multilevel(&g, 1, &PartitionerConfig::default())
            .iter()
            .all(|&p| p == 0));
        let tiny = grid(2, 2, 1);
        let asg = partition_kway_multilevel(&tiny, 4, &PartitionerConfig::default());
        let mut sorted = asg.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(16, 16, 1);
        let cfg = PartitionerConfig::with_seed(31);
        assert_eq!(partition_kway_multilevel(&g, 6, &cfg), partition_kway_multilevel(&g, 6, &cfg));
    }
}
