//! Property-based tests for the partitioner internals (compiled only with
//! `cfg(test)`).

#![cfg(test)]

use crate::coarsen::{coarsen, heavy_edge_matching, parallel_heavy_edge_matching};
use crate::config::PartitionerConfig;
use crate::fm::{bisection_cut, fm_refine, side_weights, BisectTargets};
use crate::hungarian::max_weight_assignment;
use crate::kway::{balance_kway, refine_kway};
use cip_graph::{contract, edge_cut, Graph, GraphBuilder};
use proptest::prelude::*;

/// Random connected-ish graph: a path backbone plus random chords.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n)
        .prop_flat_map(|n| {
            let chords =
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1i64..4), 0..2 * n);
            (Just(n), chords)
        })
        .prop_map(|(n, chords)| {
            let mut b = GraphBuilder::new(n, 1);
            for v in 0..n as u32 {
                b.set_vwgt(v, &[1]);
            }
            for v in 0..n as u32 - 1 {
                b.add_edge(v, v + 1, 1);
            }
            for (u, v, w) in chords {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Like [`arb_graph`] but with 1–3 constraints: constraint 0 is unit FE
/// weight, higher constraints are random sparse weights (the paper's lumpy
/// contact-node pattern).
fn arb_graph_mc(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..max_n, 1usize..4)
        .prop_flat_map(|(n, ncon)| {
            let chords =
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1i64..4), 0..2 * n);
            let extra = proptest::collection::vec(0i64..3, n * ncon.saturating_sub(1));
            (Just(n), Just(ncon), chords, extra)
        })
        .prop_map(|(n, ncon, chords, extra)| {
            let mut b = GraphBuilder::new(n, ncon);
            for v in 0..n as u32 {
                let mut w = vec![1i64; ncon];
                for j in 1..ncon {
                    w[j] = extra[(j - 1) * n + v as usize];
                }
                b.set_vwgt(v, &w);
            }
            for v in 0..n as u32 - 1 {
                b.add_edge(v, v + 1, 1);
            }
            for (u, v, w) in chords {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Per-part weights (`k * ncon`, part-major) of an assignment.
fn part_weights(g: &Graph, k: usize, asg: &[u32]) -> Vec<i64> {
    let ncon = g.ncon();
    let mut w = vec![0i64; k * ncon];
    for (v, &p) in asg.iter().enumerate() {
        for (j, x) in g.vwgt(v as u32).iter().enumerate() {
            w[p as usize * ncon + j] += x;
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FM refinement never worsens the (violation, cut) pair it starts
    /// from.
    #[test]
    fn fm_never_worsens(g in arb_graph(40), seed in 0u64..500) {
        // Random-ish starting bisection.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut asg: Vec<u32> = (0..g.nv()).map(|_| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state & 1) as u32
        }).collect();
        let targets = BisectTargets::new(&g, 0.5, &[0.1]);
        let cut_before = bisection_cut(&g, &asg);
        let viol_before = targets.violation(&side_weights(&g, &asg));
        let cut_after = fm_refine(&g, &mut asg, &targets, 4);
        let viol_after = targets.violation(&side_weights(&g, &asg));
        prop_assert!(
            (viol_after, cut_after) <= (viol_before, cut_before),
            "({viol_before}, {cut_before}) -> ({viol_after}, {cut_after})"
        );
        // Still a valid bisection.
        prop_assert!(asg.iter().all(|&s| s <= 1));
    }

    /// Heavy-edge matching yields a valid pairing of adjacent vertices and
    /// contraction preserves the total weight — for both the sequential
    /// matcher and the deterministic parallel (propose-then-resolve)
    /// matcher used above `parallel_threshold`.
    #[test]
    fn matching_and_contraction_invariants(g in arb_graph(50), seed in 0u64..100) {
        let seq = heavy_edge_matching(&g, seed);
        let par = parallel_heavy_edge_matching(&g, seed, 8);
        for (map, cnv) in [&seq, &par] {
            let (map, cnv) = (map, *cnv);
            prop_assert!(cnv <= g.nv());
            // Coarse ids are dense: every id in 0..cnv is used.
            prop_assert!(map.iter().all(|&c| (c as usize) < cnv));
            let mut used = vec![false; cnv];
            for &c in map {
                used[c as usize] = true;
            }
            prop_assert!(used.iter().all(|&u| u), "coarse ids not dense");
            // Total vertex weight is preserved per constraint.
            let cg = contract(&g, map, cnv);
            prop_assert_eq!(cg.total_vwgt(), g.total_vwgt());
            // No vertex matched twice (groups of 1 or 2) and matched
            // pairs must be adjacent in g (mate symmetry at map level).
            let mut members: Vec<Vec<u32>> = vec![Vec::new(); cnv];
            for (v, &c) in map.iter().enumerate() {
                members[c as usize].push(v as u32);
            }
            prop_assert!(members.iter().all(|m| !m.is_empty() && m.len() <= 2));
            for m in members.iter().filter(|m| m.len() == 2) {
                prop_assert!(g.adj(m[0]).contains(&m[1]));
            }
        }
        // The parallel matcher is a pure function of (graph, seed).
        let par2 = parallel_heavy_edge_matching(&g, seed, 8);
        prop_assert_eq!(par, par2);
    }

    /// Coarsening hierarchies project any coarsest-level cut faithfully:
    /// the cut of a projected assignment equals the coarse cut at every
    /// level.
    #[test]
    fn hierarchy_projection_preserves_cut(g in arb_graph(60), seed in 0u64..100) {
        let h = coarsen(&g, 8, seed);
        if let Some(coarsest) = h.coarsest() {
            let coarse_asg: Vec<u32> = (0..coarsest.nv() as u32).map(|v| v & 1).collect();
            // Project down through every level.
            let mut asg = coarse_asg.clone();
            let mut cut = edge_cut(coarsest, &asg);
            for lvl in (0..h.levels.len()).rev() {
                let fine = if lvl == 0 { &g } else { &h.levels[lvl - 1].graph };
                let map = &h.levels[lvl].map;
                let fine_asg: Vec<u32> = map.iter().map(|&c| asg[c as usize]).collect();
                let fine_cut = edge_cut(fine, &fine_asg);
                prop_assert_eq!(fine_cut, cut, "cut changed during projection");
                asg = fine_asg;
                cut = fine_cut;
            }
        }
    }

    /// Hungarian output is invariant under adding a constant to a full
    /// row (assignment structure unchanged).
    #[test]
    fn hungarian_row_shift_invariance(
        w in proptest::collection::vec(0i64..50, 16),
        row in 0usize..4,
        shift in 1i64..100
    ) {
        let n = 4;
        let a1 = max_weight_assignment(n, &w);
        let mut w2 = w.clone();
        for c in 0..n {
            w2[row * n + c] += shift;
        }
        let a2 = max_weight_assignment(n, &w2);
        let weight = |w: &[i64], a: &[usize]| -> i64 {
            a.iter().enumerate().map(|(r, &c)| w[r * n + c]).sum()
        };
        // Optimal values differ exactly by the shift.
        prop_assert_eq!(weight(&w2, &a2), weight(&w, &a1) + shift);
    }

    /// K-way refinement — both the sequential boundary sweep and the
    /// parallel propose-then-resolve sweep — never increases the cut and
    /// never breaks multi-constraint feasibility: a part within its cap
    /// for some constraint before refinement stays within that cap.
    #[test]
    fn kway_refinement_preserves_feasibility(
        g in arb_graph_mc(40),
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let ncon = g.ncon();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let start: Vec<u32> = (0..g.nv()).map(|_| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % k as u64) as u32
        }).collect();

        for threshold in [usize::MAX, 0] {
            let cfg = PartitionerConfig {
                parallel_threshold: threshold,
                ..PartitionerConfig::with_seed(seed)
            };
            let caps: Vec<i64> = (0..k).flat_map(|_| {
                g.total_vwgt().iter().enumerate().map(|(j, &t)| {
                    ((1.0 + cfg.eps_for(j)) * t as f64 / k as f64).ceil() as i64
                }).collect::<Vec<_>>()
            }).collect();

            let mut asg = start.clone();
            let cut_before = edge_cut(&g, &asg);
            let pw_before = part_weights(&g, k, &asg);
            refine_kway(&g, k, &mut asg, &cfg);
            let cut_after = edge_cut(&g, &asg);
            let pw_after = part_weights(&g, k, &asg);

            prop_assert!(cut_after <= cut_before,
                "threshold {threshold}: cut {cut_before} -> {cut_after}");
            prop_assert!(asg.iter().all(|&p| (p as usize) < k));
            for i in 0..k * ncon {
                // Refinement only moves weight into parts with headroom, so
                // no cap violation can appear (existing violations may
                // persist — that is balance_kway's job).
                prop_assert!(
                    pw_after[i] <= pw_before[i].max(caps[i]),
                    "threshold {threshold}: part-constraint {i} grew over cap: \
                     {} -> {} (cap {})", pw_before[i], pw_after[i], caps[i]
                );
            }

            // balance_kway obeys the same no-new-violation contract.
            let mut bal = start.clone();
            balance_kway(&g, k, &mut bal, &cfg);
            let pw_bal = part_weights(&g, k, &bal);
            for i in 0..k * ncon {
                prop_assert!(
                    pw_bal[i] <= pw_before[i].max(caps[i]),
                    "balance: part-constraint {i} grew over cap: \
                     {} -> {} (cap {})", pw_before[i], pw_bal[i], caps[i]
                );
            }
        }
    }

    /// Config child seeds never collide across a small salt range.
    #[test]
    fn child_seeds_unique(seed in 0u64..10_000) {
        let cfg = PartitionerConfig::with_seed(seed);
        let seeds: Vec<u64> = (0..64).map(|s| cfg.child_seed(s)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len());
    }
}
