//! 2-way Fiduccia–Mattheyses refinement with multi-constraint feasibility.
//!
//! The FM pass tentatively moves the best-gain vertex (allowing negative
//! gains — hill climbing), tracks the best feasible prefix of the move
//! sequence, and rolls back the rest. Feasibility is the multi-constraint
//! condition: each side's weight must stay within its per-constraint cap.
//! When a bisection *starts* infeasible (e.g. after projecting a coarse
//! partition, or after the paper's majority-relabel step), moves that
//! reduce the total violation are admitted even if the destination is over
//! cap, so refinement doubles as balance repair.

use cip_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Balance targets for a bisection.
///
/// Side 0 should receive fraction `frac0` of the total weight of every
/// constraint (recursive bisection splits `k` into `k1 + k2`, so
/// `frac0 = k1 / k` rather than always one half).
#[derive(Debug, Clone)]
pub struct BisectTargets {
    /// Total vertex weight per constraint.
    pub totals: Vec<i64>,
    /// Target fraction of every constraint's weight for side 0.
    pub frac0: f64,
    /// Per-constraint imbalance tolerance (cap multiplier is `1 + eps`).
    pub eps: Vec<f64>,
}

impl BisectTargets {
    /// Builds targets for bisecting `g` with side-0 fraction `frac0`.
    pub fn new(g: &Graph, frac0: f64, eps: &[f64]) -> Self {
        let ncon = g.ncon();
        let eps_vec: Vec<f64> =
            (0..ncon).map(|j| *eps.get(j).unwrap_or_else(|| eps.last().unwrap())).collect();
        Self { totals: g.total_vwgt(), frac0, eps: eps_vec }
    }

    /// Number of constraints.
    pub fn ncon(&self) -> usize {
        self.totals.len()
    }

    /// The weight cap of `side` for constraint `j`.
    pub fn cap(&self, side: usize, j: usize) -> i64 {
        let frac = if side == 0 { self.frac0 } else { 1.0 - self.frac0 };
        ((1.0 + self.eps[j]) * frac * self.totals[j] as f64).ceil() as i64
    }

    /// Total violation of a side-weight vector (`2 * ncon` entries,
    /// side-major), normalized per constraint so different scales compose.
    pub fn violation(&self, side_weights: &[i64]) -> f64 {
        let ncon = self.ncon();
        let mut v = 0.0;
        for side in 0..2 {
            for j in 0..ncon {
                if self.totals[j] == 0 {
                    continue;
                }
                let over = side_weights[side * ncon + j] - self.cap(side, j);
                if over > 0 {
                    v += over as f64 / self.totals[j] as f64;
                }
            }
        }
        v
    }

    /// Whether a side-weight vector satisfies every cap.
    pub fn feasible(&self, side_weights: &[i64]) -> bool {
        self.violation(side_weights) == 0.0
    }
}

/// Side weights (`2 * ncon`, side-major) of a bisection assignment.
pub fn side_weights(g: &Graph, asg: &[u32]) -> Vec<i64> {
    let ncon = g.ncon();
    let mut w = vec![0i64; 2 * ncon];
    for (v, &s) in asg.iter().enumerate() {
        let base = s as usize * ncon;
        for (j, x) in g.vwgt(v as u32).iter().enumerate() {
            w[base + j] += x;
        }
    }
    w
}

/// Edge-cut of a bisection.
pub fn bisection_cut(g: &Graph, asg: &[u32]) -> i64 {
    cip_graph::edge_cut(g, asg)
}

/// FM gain of moving `v` to the other side: external minus internal degree.
fn gain_of(g: &Graph, asg: &[u32], v: u32) -> i64 {
    let side = asg[v as usize];
    let mut gain = 0i64;
    for (u, w) in g.neighbors(v) {
        if asg[u as usize] == side {
            gain -= w;
        } else {
            gain += w;
        }
    }
    gain
}

/// Runs up to `passes` FM passes on the bisection `asg`, returning the
/// final cut. `asg` must contain only sides 0 and 1.
pub fn fm_refine(g: &Graph, asg: &mut [u32], targets: &BisectTargets, passes: usize) -> i64 {
    let mut cut = bisection_cut(g, asg);
    let mut sw = side_weights(g, asg);
    for _ in 0..passes {
        let improved = fm_pass(g, asg, targets, &mut sw, &mut cut);
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cut, bisection_cut(g, asg));
    cut
}

/// One FM pass. Returns whether the pass strictly improved
/// (cut, violation) lexicographically with violation first.
fn fm_pass(
    g: &Graph,
    asg: &mut [u32],
    targets: &BisectTargets,
    sw: &mut [i64],
    cut: &mut i64,
) -> bool {
    let nv = g.nv();
    let ncon = g.ncon();
    let mut gains: Vec<i64> = (0..nv as u32).map(|v| gain_of(g, asg, v)).collect();
    let mut moved = vec![false; nv];

    // Seed the queue with boundary vertices; interior vertices enter when a
    // neighbor's move puts them on the boundary (or when balance repair
    // needs them — they enter with their negative gain and are simply less
    // attractive).
    let mut heap: BinaryHeap<(i64, Reverse<u32>)> = BinaryHeap::new();
    for v in 0..nv as u32 {
        let on_boundary = g.adj(v).iter().any(|&u| asg[u as usize] != asg[v as usize]);
        if on_boundary {
            heap.push((gains[v as usize], Reverse(v)));
        }
    }

    let start_violation = targets.violation(sw);
    let start_cut = *cut;
    // Best state seen: (violation, cut) lexicographic, preferring lower
    // violation, then lower cut. Index = number of applied moves.
    let mut best_key = (start_violation, start_cut);
    let mut best_len = 0usize;
    let mut log: Vec<u32> = Vec::new();
    let limit = (nv / 50).clamp(32, 2048);

    while let Some((gain, Reverse(v))) = heap.pop() {
        if moved[v as usize] || gains[v as usize] != gain {
            continue; // stale entry
        }
        let from = asg[v as usize] as usize;
        let to = 1 - from;

        // Tentative side weights after the move.
        for j in 0..ncon {
            let w = g.vwgt(v)[j];
            sw[from * ncon + j] -= w;
            sw[to * ncon + j] += w;
        }
        let violation_after = targets.violation(sw);
        // Roll the weights back; we only commit below.
        for j in 0..ncon {
            let w = g.vwgt(v)[j];
            sw[from * ncon + j] += w;
            sw[to * ncon + j] -= w;
        }
        let violation_now = targets.violation(sw);
        // Admissible moves either keep the violation from growing (within-
        // cap moves always qualify, and over-cap starts can still be
        // repaired) or incur only a small *transient* violation — the pass
        // may cross the balance line while hill-climbing, because the
        // best-prefix rollback below never commits to a state less
        // feasible than the start.
        const TRANSIENT_VIOLATION: f64 = 0.02;
        if violation_after > violation_now + 1e-12 && violation_after > TRANSIENT_VIOLATION {
            continue;
        }

        // Commit the move.
        for j in 0..ncon {
            let w = g.vwgt(v)[j];
            sw[from * ncon + j] -= w;
            sw[to * ncon + j] += w;
        }
        asg[v as usize] = to as u32;
        *cut -= gain;
        moved[v as usize] = true;
        log.push(v);

        for (u, w) in g.neighbors(v) {
            if moved[u as usize] {
                continue;
            }
            // v left `from`: edges to same-side (from) neighbors become
            // external (+2w to their gain); edges to `to`-side neighbors
            // become internal (-2w).
            if asg[u as usize] as usize == from {
                gains[u as usize] += 2 * w;
            } else {
                gains[u as usize] -= 2 * w;
            }
            heap.push((gains[u as usize], Reverse(u)));
        }

        let key = (violation_after, *cut);
        if key < best_key {
            best_key = key;
            best_len = log.len();
        }
        if log.len() - best_len > limit {
            break; // hill climb exhausted
        }
    }

    // Roll back every move after the best prefix.
    for &v in log[best_len..].iter().rev() {
        let from = asg[v as usize] as usize;
        let to = 1 - from;
        for j in 0..ncon {
            let w = g.vwgt(v)[j];
            sw[from * ncon + j] -= w;
            sw[to * ncon + j] += w;
        }
        asg[v as usize] = to as u32;
    }
    // Recompute the cut exactly after rollback (cheap relative to the pass).
    *cut = bisection_cut(g, asg);

    (targets.violation(sw), *cut) < (start_violation, start_cut)
}

/// Balance repair: greedily moves vertices off over-cap sides, choosing the
/// highest-gain vertex that strictly reduces total violation. Used when the
/// initial bisection or a projected partition is infeasible.
pub fn rebalance_bisection(g: &Graph, asg: &mut [u32], targets: &BisectTargets) {
    let ncon = g.ncon();
    let mut sw = side_weights(g, asg);
    let mut budget = 2 * g.nv();
    while budget > 0 {
        budget -= 1;
        let violation = targets.violation(&sw);
        if violation == 0.0 {
            return;
        }
        // Find the most violated (side, constraint).
        let mut worst: Option<(f64, usize, usize)> = None;
        for side in 0..2 {
            for j in 0..ncon {
                if targets.totals[j] == 0 {
                    continue;
                }
                let over = sw[side * ncon + j] - targets.cap(side, j);
                if over > 0 {
                    let score = over as f64 / targets.totals[j] as f64;
                    if worst.is_none_or(|(s, _, _)| score > s) {
                        worst = Some((score, side, j));
                    }
                }
            }
        }
        let Some((_, side, j)) = worst else { return };

        // Candidate: vertex on `side` with positive weight in `j` whose move
        // reduces total violation the most; break ties by FM gain.
        let mut best: Option<(f64, i64, u32)> = None;
        for v in 0..g.nv() as u32 {
            if asg[v as usize] as usize != side || g.vwgt(v)[j] <= 0 {
                continue;
            }
            let mut trial = sw.clone();
            for (jj, w) in g.vwgt(v).iter().enumerate() {
                trial[side * ncon + jj] -= w;
                trial[(1 - side) * ncon + jj] += w;
            }
            let v_after = targets.violation(&trial);
            if v_after >= violation {
                continue;
            }
            let gain = gain_of(g, asg, v);
            let key = (violation - v_after, gain, v);
            if best.is_none_or(|(d, bg, _)| (key.0, key.1) > (d, bg)) {
                best = Some(key);
            }
        }
        let Some((_, _, v)) = best else { return };
        for (jj, w) in g.vwgt(v).iter().enumerate() {
            sw[side * ncon + jj] -= w;
            sw[(1 - side) * ncon + jj] += w;
        }
        asg[v as usize] = 1 - side as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::GraphBuilder;

    /// Path of 8 vertices, unit weights.
    fn path8() -> Graph {
        let mut b = GraphBuilder::new(8, 1);
        for v in 0..8u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..7u32 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn fm_fixes_interleaved_partition() {
        let g = path8();
        // Alternating sides: cut = 7. Optimal balanced cut = 1.
        let mut asg: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cut = fm_refine(&g, &mut asg, &targets, 8);
        assert_eq!(cut, 1, "assignment: {asg:?}");
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw));
    }

    #[test]
    fn fm_does_not_worsen_an_optimal_partition() {
        let g = path8();
        let mut asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cut = fm_refine(&g, &mut asg, &targets, 4);
        assert_eq!(cut, 1);
    }

    #[test]
    fn rebalance_repairs_lopsided_bisection() {
        let g = path8();
        let mut asg = vec![0, 0, 0, 0, 0, 0, 0, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        rebalance_bisection(&g, &mut asg, &targets);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
    }

    #[test]
    fn rebalance_handles_two_constraints() {
        // 8 vertices, second constraint only on vertices 0..4 (like contact
        // nodes clustered on one side of a mesh).
        let mut b = GraphBuilder::new(8, 2);
        for v in 0..8u32 {
            b.set_vwgt(v, &[1, i64::from(v < 4)]);
        }
        for v in 0..7u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        // All contact vertices on side 0 -> constraint 1 fully unbalanced.
        let mut asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.05]);
        let sw0 = side_weights(&g, &asg);
        assert!(!targets.feasible(&sw0));
        rebalance_bisection(&g, &mut asg, &targets);
        fm_refine(&g, &mut asg, &targets, 4);
        let sw = side_weights(&g, &asg);
        // Constraint 1 must now be split 2/2 (cap = ceil(1.05 * 2) = 3).
        assert!(sw[1] <= 3 && sw[3] <= 3, "contact weights {sw:?}");
    }

    #[test]
    fn asymmetric_target_fraction() {
        let g = path8();
        let targets = BisectTargets::new(&g, 0.25, &[0.2]);
        // frac0 = 0.25 of 8 = 2 vertices (cap ~ ceil(1.2*2) = 3).
        let mut asg = vec![0; 8];
        rebalance_bisection(&g, &mut asg, &targets);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
        assert!(sw[0] <= 3);
    }

    #[test]
    fn side_weights_and_cut_agree_with_bruteforce() {
        let g = path8();
        let asg = vec![0, 1, 1, 0, 0, 1, 0, 1];
        assert_eq!(side_weights(&g, &asg), vec![4, 4]);
        assert_eq!(bisection_cut(&g, &asg), 5);
    }
}
