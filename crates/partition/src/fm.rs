//! 2-way Fiduccia–Mattheyses refinement with multi-constraint feasibility.
//!
//! The FM pass tentatively moves the best-gain vertex (allowing negative
//! gains — hill climbing), tracks the best feasible prefix of the move
//! sequence, and rolls back the rest. Feasibility is the multi-constraint
//! condition: each side's weight must stay within its per-constraint cap.
//! When a bisection *starts* infeasible (e.g. after projecting a coarse
//! partition, or after the paper's majority-relabel step), moves that
//! reduce the total violation are admitted even if the destination is over
//! cap, so refinement doubles as balance repair.
//!
//! Gains are never recomputed from scratch: the `FmScratch` inside
//! [`crate::RefineWorkspace`] keeps the internal degree `id[v]` (edge
//! weight from `v` into its own side) incrementally updated on every move
//! and rollback. With the graph-constant weighted degree `tdeg[v]`, the
//! external degree is `ed[v] = tdeg[v] - id[v]` and the FM gain is
//! `ed - id = tdeg - 2·id` — the METIS id/ed invariant. The boundary set
//! (`ed > 0`) is maintained the same way, so each pass seeds its queue
//! from the boundary list instead of scanning every vertex, and the
//! post-rollback cut is updated move-by-move instead of recomputed in
//! `O(|E|)`.

use cip_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default largest transient violation an FM hill-climb may cross (see
/// [`crate::PartitionerConfig::transient_violation`]).
pub(crate) const DEFAULT_TRANSIENT_VIOLATION: f64 = 0.02;

/// Balance targets for a bisection.
///
/// Side 0 should receive fraction `frac0` of the total weight of every
/// constraint (recursive bisection splits `k` into `k1 + k2`, so
/// `frac0 = k1 / k` rather than always one half).
#[derive(Debug, Clone)]
pub struct BisectTargets {
    /// Total vertex weight per constraint.
    pub totals: Vec<i64>,
    /// Target fraction of every constraint's weight for side 0.
    pub frac0: f64,
    /// Per-constraint imbalance tolerance (cap multiplier is `1 + eps`).
    pub eps: Vec<f64>,
}

impl BisectTargets {
    /// Builds targets for bisecting `g` with side-0 fraction `frac0`.
    pub fn new(g: &Graph, frac0: f64, eps: &[f64]) -> Self {
        let ncon = g.ncon();
        let eps_vec: Vec<f64> =
            (0..ncon).map(|j| *eps.get(j).unwrap_or_else(|| eps.last().unwrap())).collect();
        Self { totals: g.total_vwgt(), frac0, eps: eps_vec }
    }

    /// Number of constraints.
    pub fn ncon(&self) -> usize {
        self.totals.len()
    }

    /// The weight cap of `side` for constraint `j`.
    pub fn cap(&self, side: usize, j: usize) -> i64 {
        let frac = if side == 0 { self.frac0 } else { 1.0 - self.frac0 };
        ((1.0 + self.eps[j]) * frac * self.totals[j] as f64).ceil() as i64
    }

    /// Total violation of a side-weight vector (`2 * ncon` entries,
    /// side-major), normalized per constraint so different scales compose.
    pub fn violation(&self, side_weights: &[i64]) -> f64 {
        let ncon = self.ncon();
        let mut v = 0.0;
        for side in 0..2 {
            for j in 0..ncon {
                if self.totals[j] == 0 {
                    continue;
                }
                let over = side_weights[side * ncon + j] - self.cap(side, j);
                if over > 0 {
                    v += over as f64 / self.totals[j] as f64;
                }
            }
        }
        v
    }

    /// Whether a side-weight vector satisfies every cap.
    pub fn feasible(&self, side_weights: &[i64]) -> bool {
        self.violation(side_weights) == 0.0
    }
}

/// Side weights (`2 * ncon`, side-major) of a bisection assignment.
pub fn side_weights(g: &Graph, asg: &[u32]) -> Vec<i64> {
    let ncon = g.ncon();
    let mut w = vec![0i64; 2 * ncon];
    for (v, &s) in asg.iter().enumerate() {
        let base = s as usize * ncon;
        for (j, x) in g.vwgt(v as u32).iter().enumerate() {
            w[base + j] += x;
        }
    }
    w
}

/// Edge-cut of a bisection.
pub fn bisection_cut(g: &Graph, asg: &[u32]) -> i64 {
    cip_graph::edge_cut(g, asg)
}

/// Reusable 2-way FM scratch: id/ed degrees, boundary set, move queue and
/// move log. Lives inside [`crate::RefineWorkspace`]; all buffers are
/// resized (never shrunk) per call, so repeated refinement at a given
/// graph size performs no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct FmScratch {
    /// Weighted degree per vertex (graph-constant within one call).
    tdeg: Vec<i64>,
    /// Edge weight from `v` into its own side (`ed = tdeg - id`).
    id: Vec<i64>,
    /// Moved-this-pass flags.
    moved: Vec<bool>,
    /// Lazy max-queue of `(gain, Reverse(vertex))`; stale entries are
    /// skipped on pop by re-deriving the gain from `id`.
    heap: BinaryHeap<(i64, Reverse<u32>)>,
    /// Boundary vertices (every `v` with `ed[v] > 0`), unordered.
    bnd: Vec<u32>,
    /// Position of `v` in `bnd`, or `u32::MAX` when interior.
    bnd_pos: Vec<u32>,
    /// Committed moves of the current pass, in order.
    log: Vec<u32>,
    /// Side weights (`2 * ncon`, side-major).
    sw: Vec<i64>,
}

impl FmScratch {
    /// (Re)derives every structure from `asg`: degrees, boundary set, side
    /// weights. Returns the current cut (from `Σ ed = 2·cut`).
    fn init(&mut self, g: &Graph, asg: &[u32]) -> i64 {
        let nv = g.nv();
        let ncon = g.ncon();
        self.tdeg.clear();
        self.tdeg.resize(nv, 0);
        self.id.clear();
        self.id.resize(nv, 0);
        self.moved.clear();
        self.moved.resize(nv, false);
        self.bnd.clear();
        self.bnd_pos.clear();
        self.bnd_pos.resize(nv, u32::MAX);
        self.heap.clear();
        self.log.clear();
        self.sw.clear();
        self.sw.resize(2 * ncon, 0);

        let mut ed_sum = 0i64;
        for v in 0..nv as u32 {
            let side = asg[v as usize];
            let mut td = 0i64;
            let mut idv = 0i64;
            for (u, w) in g.neighbors(v) {
                td += w;
                if asg[u as usize] == side {
                    idv += w;
                }
            }
            self.tdeg[v as usize] = td;
            self.id[v as usize] = idv;
            ed_sum += td - idv;
            if td > idv {
                self.bnd_pos[v as usize] = self.bnd.len() as u32;
                self.bnd.push(v);
            }
            let base = side as usize * ncon;
            for (j, x) in g.vwgt(v).iter().enumerate() {
                self.sw[base + j] += x;
            }
        }
        ed_sum / 2
    }

    /// Current FM gain of `v` (`ed - id`).
    #[inline]
    fn gain(&self, v: u32) -> i64 {
        self.tdeg[v as usize] - 2 * self.id[v as usize]
    }

    /// Re-syncs `v`'s boundary membership with its current `ed`.
    #[inline]
    fn sync_bnd(&mut self, v: u32) {
        let on = self.tdeg[v as usize] > self.id[v as usize];
        let pos = self.bnd_pos[v as usize];
        if on && pos == u32::MAX {
            self.bnd_pos[v as usize] = self.bnd.len() as u32;
            self.bnd.push(v);
        } else if !on && pos != u32::MAX {
            let last = *self.bnd.last().unwrap();
            self.bnd.swap_remove(pos as usize);
            if last != v {
                self.bnd_pos[last as usize] = pos;
            }
            self.bnd_pos[v as usize] = u32::MAX;
        }
    }

    /// Flips `v` to the other side, updating `asg`, side weights, id
    /// degrees and boundary membership of `v` and its neighbors. Returns
    /// the gain the flip realized (callers subtract it from the cut).
    fn flip(&mut self, g: &Graph, asg: &mut [u32], v: u32, ncon: usize) -> i64 {
        let gain = self.gain(v);
        let from = asg[v as usize] as usize;
        let to = 1 - from;
        for (j, w) in g.vwgt(v).iter().enumerate() {
            self.sw[from * ncon + j] -= w;
            self.sw[to * ncon + j] += w;
        }
        asg[v as usize] = to as u32;
        // 2-way: the weight to the new side is everything that was not on
        // the old side.
        self.id[v as usize] = self.tdeg[v as usize] - self.id[v as usize];
        self.sync_bnd(v);
        for (u, w) in g.neighbors(v) {
            if asg[u as usize] as usize == from {
                self.id[u as usize] -= w;
            } else {
                self.id[u as usize] += w;
            }
            self.sync_bnd(u);
        }
        gain
    }
}

/// Runs up to `passes` FM passes on the bisection `asg`, returning the
/// final cut. `asg` must contain only sides 0 and 1.
pub fn fm_refine(g: &Graph, asg: &mut [u32], targets: &BisectTargets, passes: usize) -> i64 {
    fm_refine_with(
        g,
        asg,
        targets,
        passes,
        DEFAULT_TRANSIENT_VIOLATION,
        &mut crate::RefineWorkspace::new(),
    )
}

/// [`fm_refine`] with an explicit transient-violation bound and a reusable
/// workspace: repeated calls (across passes, uncoarsening levels, or
/// `init_tries` restarts) perform no heap allocation once the workspace
/// has grown to the finest graph's size.
pub fn fm_refine_with(
    g: &Graph,
    asg: &mut [u32],
    targets: &BisectTargets,
    passes: usize,
    transient_violation: f64,
    ws: &mut crate::RefineWorkspace,
) -> i64 {
    let scratch = &mut ws.fm;
    let mut cut = scratch.init(g, asg);
    for _ in 0..passes {
        let improved = fm_pass(g, asg, targets, transient_violation, scratch, &mut cut);
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cut, bisection_cut(g, asg));
    cut
}

/// One FM pass over `scratch`'s boundary set. Returns whether the pass
/// strictly improved (cut, violation) lexicographically with violation
/// first. `scratch` must be in sync with `asg` on entry and is left in
/// sync on exit (including after rollback).
#[allow(clippy::needless_range_loop)] // indexing lets us push to the heap mid-loop
fn fm_pass(
    g: &Graph,
    asg: &mut [u32],
    targets: &BisectTargets,
    transient_violation: f64,
    scratch: &mut FmScratch,
    cut: &mut i64,
) -> bool {
    let nv = g.nv();
    let ncon = g.ncon();
    scratch.moved.fill(false);
    scratch.log.clear();
    scratch.heap.clear();
    for i in 0..scratch.bnd.len() {
        let v = scratch.bnd[i];
        scratch.heap.push((scratch.gain(v), Reverse(v)));
    }

    let start_violation = targets.violation(&scratch.sw);
    let start_cut = *cut;
    // Best state seen: (violation, cut) lexicographic, preferring lower
    // violation, then lower cut. Index = number of applied moves.
    let mut best_key = (start_violation, start_cut);
    let mut best_len = 0usize;
    let limit = (nv / 50).clamp(32, 2048);

    while let Some((gain, Reverse(v))) = scratch.heap.pop() {
        if scratch.moved[v as usize] || scratch.gain(v) != gain {
            continue; // stale entry
        }
        let from = asg[v as usize] as usize;
        let to = 1 - from;

        // Tentative side weights after the move.
        for (j, w) in g.vwgt(v).iter().enumerate() {
            scratch.sw[from * ncon + j] -= w;
            scratch.sw[to * ncon + j] += w;
        }
        let violation_after = targets.violation(&scratch.sw);
        // Roll the weights back; we only commit below.
        for (j, w) in g.vwgt(v).iter().enumerate() {
            scratch.sw[from * ncon + j] += w;
            scratch.sw[to * ncon + j] -= w;
        }
        let violation_now = targets.violation(&scratch.sw);
        // Admissible moves either keep the violation from growing (within-
        // cap moves always qualify, and over-cap starts can still be
        // repaired) or incur only a small *transient* violation — the pass
        // may cross the balance line while hill-climbing, because the
        // best-prefix rollback below never commits to a state less
        // feasible than the start.
        if violation_after > violation_now + 1e-12 && violation_after > transient_violation {
            continue;
        }

        // Commit the move; `flip` updates sw, id/ed and the boundary set.
        *cut -= scratch.flip(g, asg, v, ncon);
        scratch.moved[v as usize] = true;
        scratch.log.push(v);

        for (u, _) in g.neighbors(v) {
            if !scratch.moved[u as usize] {
                scratch.heap.push((scratch.gain(u), Reverse(u)));
            }
        }

        let key = (violation_after, *cut);
        if key < best_key {
            best_key = key;
            best_len = scratch.log.len();
        }
        if scratch.log.len() - best_len > limit {
            break; // hill climb exhausted
        }
    }

    // Roll back every move after the best prefix, updating the cut
    // incrementally (the flip's gain is exact under the maintained id/ed).
    for i in (best_len..scratch.log.len()).rev() {
        let v = scratch.log[i];
        *cut -= scratch.flip(g, asg, v, ncon);
    }
    debug_assert_eq!(*cut, bisection_cut(g, asg));

    (targets.violation(&scratch.sw), *cut) < (start_violation, start_cut)
}

/// Total violation after hypothetically moving a vertex with weights
/// `vwgt` off `side`, evaluated in `O(ncon)` from the per-(side,
/// constraint) terms the move touches — the violation is a sum of
/// independent terms, so nothing else changes.
fn violation_after_move(
    targets: &BisectTargets,
    sw: &[i64],
    vwgt: &[i64],
    side: usize,
    violation_now: f64,
) -> f64 {
    let ncon = targets.ncon();
    let other = 1 - side;
    let mut v = violation_now;
    for (j, &w) in vwgt.iter().enumerate() {
        if targets.totals[j] == 0 || w == 0 {
            continue;
        }
        let tj = targets.totals[j] as f64;
        let cap_s = targets.cap(side, j);
        let cap_o = targets.cap(other, j);
        let old_s = (sw[side * ncon + j] - cap_s).max(0);
        let new_s = (sw[side * ncon + j] - w - cap_s).max(0);
        let old_o = (sw[other * ncon + j] - cap_o).max(0);
        let new_o = (sw[other * ncon + j] + w - cap_o).max(0);
        v += (new_s - old_s + new_o - old_o) as f64 / tj;
    }
    v
}

/// Balance repair: greedily moves vertices off over-cap sides, choosing the
/// highest-gain vertex that strictly reduces total violation. Used when the
/// initial bisection or a projected partition is infeasible.
pub fn rebalance_bisection(g: &Graph, asg: &mut [u32], targets: &BisectTargets) {
    rebalance_bisection_with(g, asg, targets, &mut crate::RefineWorkspace::new());
}

/// [`rebalance_bisection`] with a reusable workspace — the same
/// boundary-list + incremental-weights discipline as `balance_kway`.
/// Candidates come from the maintained boundary list (moving a boundary
/// vertex repairs balance *and* tends to help the cut), falling back to a
/// full vertex scan only when no boundary vertex can reduce the violation
/// (e.g. a fully one-sided start has an empty boundary). Each candidate's
/// violation change is evaluated in `O(ncon)` from the incrementally
/// maintained side weights — no per-candidate clone — and its FM gain
/// comes from the maintained id/ed degrees in `O(1)`.
pub fn rebalance_bisection_with(
    g: &Graph,
    asg: &mut [u32],
    targets: &BisectTargets,
    ws: &mut crate::RefineWorkspace,
) {
    let ncon = g.ncon();
    let scratch = &mut ws.fm;
    scratch.init(g, asg);
    let mut budget = 2 * g.nv();
    while budget > 0 {
        budget -= 1;
        let violation = targets.violation(&scratch.sw);
        if violation == 0.0 {
            return;
        }
        // Find the most violated (side, constraint).
        let mut worst: Option<(f64, usize, usize)> = None;
        for side in 0..2 {
            for j in 0..ncon {
                if targets.totals[j] == 0 {
                    continue;
                }
                let over = scratch.sw[side * ncon + j] - targets.cap(side, j);
                if over > 0 {
                    let score = over as f64 / targets.totals[j] as f64;
                    if worst.is_none_or(|(s, _, _)| score > s) {
                        worst = Some((score, side, j));
                    }
                }
            }
        }
        let Some((_, side, j)) = worst else { return };

        // Candidate: vertex on `side` with positive weight in `j` whose
        // move reduces total violation the most; break ties by FM gain,
        // then by lowest vertex id (deterministic regardless of boundary
        // list order).
        let mut best: Option<(f64, i64, u32)> = None;
        for pass in 0..2 {
            let scan_all = pass == 1;
            let count = if scan_all { g.nv() } else { scratch.bnd.len() };
            for i in 0..count {
                let v = if scan_all { i as u32 } else { scratch.bnd[i] };
                if asg[v as usize] as usize != side || g.vwgt(v)[j] <= 0 {
                    continue;
                }
                let v_after =
                    violation_after_move(targets, &scratch.sw, g.vwgt(v), side, violation);
                if v_after >= violation {
                    continue;
                }
                let key = (violation - v_after, scratch.gain(v), v);
                let better = match best {
                    None => true,
                    Some((d, bg, bv)) => {
                        (key.0, key.1) > (d, bg) || ((key.0, key.1) == (d, bg) && v < bv)
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            if best.is_some() {
                break;
            }
        }
        let Some((_, _, v)) = best else { return };
        // `flip` keeps asg, side weights, id/ed and the boundary list in
        // sync, so the next iteration's candidates are exact.
        scratch.flip(g, asg, v, ncon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RefineWorkspace;
    use cip_graph::GraphBuilder;

    /// Path of 8 vertices, unit weights.
    fn path8() -> Graph {
        let mut b = GraphBuilder::new(8, 1);
        for v in 0..8u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..7u32 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn fm_fixes_interleaved_partition() {
        let g = path8();
        // Alternating sides: cut = 7. Optimal balanced cut = 1.
        let mut asg: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cut = fm_refine(&g, &mut asg, &targets, 8);
        assert_eq!(cut, 1, "assignment: {asg:?}");
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw));
    }

    #[test]
    fn fm_does_not_worsen_an_optimal_partition() {
        let g = path8();
        let mut asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let cut = fm_refine(&g, &mut asg, &targets, 4);
        assert_eq!(cut, 1);
    }

    #[test]
    fn reused_workspace_matches_fresh_workspace() {
        let g = path8();
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let mut ws = RefineWorkspace::new();
        // Dirty the workspace with an unrelated refinement first.
        let mut dirty: Vec<u32> = (0..8).map(|v| u32::from(v >= 3)).collect();
        let _ = fm_refine_with(&g, &mut dirty, &targets, 2, 0.02, &mut ws);

        let start: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let mut a = start.clone();
        let mut b = start.clone();
        let cut_reused = fm_refine_with(&g, &mut a, &targets, 8, 0.02, &mut ws);
        let cut_fresh = fm_refine_with(&g, &mut b, &targets, 8, 0.02, &mut RefineWorkspace::new());
        assert_eq!(a, b);
        assert_eq!(cut_reused, cut_fresh);
    }

    #[test]
    fn rebalance_repairs_lopsided_bisection() {
        let g = path8();
        let mut asg = vec![0, 0, 0, 0, 0, 0, 0, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        rebalance_bisection(&g, &mut asg, &targets);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
    }

    #[test]
    fn rebalance_handles_two_constraints() {
        // 8 vertices, second constraint only on vertices 0..4 (like contact
        // nodes clustered on one side of a mesh).
        let mut b = GraphBuilder::new(8, 2);
        for v in 0..8u32 {
            b.set_vwgt(v, &[1, i64::from(v < 4)]);
        }
        for v in 0..7u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        // All contact vertices on side 0 -> constraint 1 fully unbalanced.
        let mut asg = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let targets = BisectTargets::new(&g, 0.5, &[0.05, 0.05]);
        let sw0 = side_weights(&g, &asg);
        assert!(!targets.feasible(&sw0));
        rebalance_bisection(&g, &mut asg, &targets);
        fm_refine(&g, &mut asg, &targets, 4);
        let sw = side_weights(&g, &asg);
        // Constraint 1 must now be split 2/2 (cap = ceil(1.05 * 2) = 3).
        assert!(sw[1] <= 3 && sw[3] <= 3, "contact weights {sw:?}");
    }

    #[test]
    fn rebalance_with_reused_workspace_matches_fresh() {
        let g = path8();
        let targets = BisectTargets::new(&g, 0.5, &[0.05]);
        let mut ws = RefineWorkspace::new();
        // Dirty the workspace with an unrelated refinement first.
        let mut dirty: Vec<u32> = (0..8).map(|v| u32::from(v >= 3)).collect();
        let _ = fm_refine_with(&g, &mut dirty, &targets, 2, 0.02, &mut ws);

        let start = vec![0u32, 0, 0, 0, 0, 0, 0, 1];
        let mut a = start.clone();
        let mut b = start.clone();
        rebalance_bisection_with(&g, &mut a, &targets, &mut ws);
        rebalance_bisection_with(&g, &mut b, &targets, &mut RefineWorkspace::new());
        assert_eq!(a, b);
        assert!(targets.feasible(&side_weights(&g, &a)));
    }

    #[test]
    fn asymmetric_target_fraction() {
        let g = path8();
        let targets = BisectTargets::new(&g, 0.25, &[0.2]);
        // frac0 = 0.25 of 8 = 2 vertices (cap ~ ceil(1.2*2) = 3).
        let mut asg = vec![0; 8];
        rebalance_bisection(&g, &mut asg, &targets);
        let sw = side_weights(&g, &asg);
        assert!(targets.feasible(&sw), "side weights {sw:?}");
        assert!(sw[0] <= 3);
    }

    #[test]
    fn side_weights_and_cut_agree_with_bruteforce() {
        let g = path8();
        let asg = vec![0, 1, 1, 0, 0, 1, 0, 1];
        assert_eq!(side_weights(&g, &asg), vec![4, 4]);
        assert_eq!(bisection_cut(&g, &asg), 5);
    }
}
