//! Snapshot sequence representation.

use cip_geom::Point;
use cip_mesh::{Mesh, Surface};
use serde::{Deserialize, Serialize};

/// One emitted snapshot of the simulation state.
///
/// The element list is invariant over the whole simulation (erosion only
/// flips the live mask), so snapshots store just what changes: node
/// positions, the live mask, and the extracted contact surface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Time step this snapshot was taken at.
    pub step: usize,
    /// Node positions at this step (same node ids as the base mesh).
    pub points: Vec<Point<3>>,
    /// Element live mask at this step.
    pub alive: Vec<bool>,
    /// The *contact surface*: boundary faces of live elements inside the
    /// interaction region, plus their nodes — exactly the "surface
    /// elements" / "contact nodes" the paper's algorithms operate on.
    pub contact: Surface,
}

/// A complete simulation run: the base mesh plus the snapshot sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// The mesh at rest (element connectivity and body ids never change).
    pub base: Mesh<3>,
    /// Emitted snapshots, in time order.
    pub snapshots: Vec<Snapshot>,
}

impl SimResult {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the run produced no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Materializes the full mesh state of snapshot `i` (shares element
    /// connectivity with the base mesh via clone; positions and live mask
    /// come from the snapshot).
    pub fn mesh_at(&self, i: usize) -> Mesh<3> {
        let snap = &self.snapshots[i];
        Mesh {
            points: snap.points.clone(),
            elements: self.base.elements.clone(),
            body: self.base.body.clone(),
            alive: snap.alive.clone(),
        }
    }
}
