//! Kinematic penetration dynamics.
//!
//! Per time step:
//!
//! 1. the projectile translates rigidly by `speed` in -z;
//! 2. plate elements whose centroid lies inside the projectile's footprint
//!    and above the current tip are **eroded** (the projectile bores a
//!    square channel, first through the top plate, then the bottom one);
//! 3. plate nodes near the channel are displaced by a smooth analytic
//!    field (radial push-out plus downward dishing) evaluated from the
//!    rest configuration, so positions never accumulate drift;
//! 4. at snapshot steps, the boundary surface of the live mesh is
//!    extracted and clipped to the interaction region, yielding the
//!    contact surface.
//!
//! The physics is deliberately kinematic: the paper's metrics are
//! decomposition properties (communication counts), which depend on the
//! *geometry and evolution* of the contact set, not on stresses.

use crate::geometry::{SimConfig, BODY_PROJECTILE};
use crate::snapshot::{SimResult, Snapshot};
use cip_geom::{Aabb, Point};
use cip_mesh::surface::extract_surface;
use cip_mesh::{Mesh, Surface};

/// Runs the simulation defined by `cfg`, producing `cfg.snapshots`
/// snapshots.
pub fn run(cfg: &SimConfig) -> SimResult {
    let base = cfg.build_mesh();
    let rest_points = base.points.clone();
    let n_elems = base.num_elements();

    // Precompute per-element rest centroids and the projectile node set.
    let mut centroids = Vec::with_capacity(n_elems);
    for e in 0..n_elems as u32 {
        centroids.push(base.element_centroid(e));
    }
    let mut is_proj_node = vec![false; base.num_nodes()];
    for (e, el) in base.elements.iter().enumerate() {
        if base.body[e] == BODY_PROJECTILE {
            for &n in el.nodes() {
                is_proj_node[n as usize] = true;
            }
        }
    }

    let hw = cfg.proj_half_width();
    let erosion_hw = hw + 0.25 * cfg.cell; // slight over-bore, as in erosion codes
    let mut alive = base.alive.clone();

    let snapshot_steps: Vec<usize> =
        (0..cfg.snapshots).map(|s| ((s + 1) * cfg.steps) / cfg.snapshots).collect();

    let mut snapshots = Vec::with_capacity(cfg.snapshots);
    let mut next_snap = 0usize;

    for step in 1..=cfg.steps {
        let drop = cfg.speed * step as f64;
        let tip_z = cfg.standoff - drop;

        // Erode plate elements the tip has reached.
        for e in 0..n_elems {
            if !alive[e] || base.body[e] == BODY_PROJECTILE {
                continue;
            }
            let c = &centroids[e];
            if (c[0] - cfg.impact_offset[0]).abs() <= erosion_hw
                && (c[1] - cfg.impact_offset[1]).abs() <= erosion_hw
                && c[2] >= tip_z
            {
                alive[e] = false;
            }
        }

        while next_snap < snapshot_steps.len() && snapshot_steps[next_snap] == step {
            let points = deformed_points(cfg, &rest_points, &is_proj_node, drop, tip_z, hw);
            let mesh = Mesh {
                points: points.clone(),
                elements: base.elements.clone(),
                body: base.body.clone(),
                alive: alive.clone(),
            };
            let contact = contact_surface(cfg, &mesh, hw);
            snapshots.push(Snapshot { step, points, alive: alive.clone(), contact });
            next_snap += 1;
        }
    }

    SimResult { base, snapshots }
}

/// Evaluates the deformed node positions at a given projectile drop.
fn deformed_points(
    cfg: &SimConfig,
    rest: &[Point<3>],
    is_proj_node: &[bool],
    drop: f64,
    tip_z: f64,
    hw: f64,
) -> Vec<Point<3>> {
    let range = 3.0 * cfg.cell; // deformation halo width
    let amp = cfg.deform_amp * cfg.cell;
    rest.iter()
        .enumerate()
        .map(|(n, p)| {
            if is_proj_node[n] {
                // Rigid projectile translation.
                let mut q = *p;
                q[2] -= drop;
                return q;
            }
            // Chebyshev distance from the channel wall in the xy plane.
            let r = (p[0] - cfg.impact_offset[0]).abs().max((p[1] - cfg.impact_offset[1]).abs());
            let wall_dist = r - hw;
            if wall_dist < 0.0 || wall_dist > range {
                return *p;
            }
            // Depth factor: material near or above the tip is pushed; far
            // below the tip the plate is still undisturbed.
            let depth = ((p[2] - tip_z) / (2.0 * cfg.cell) + 1.0).clamp(0.0, 1.0);
            let falloff = 1.0 - wall_dist / range;
            let push = amp * falloff * depth;
            let mut q = *p;
            // Radial push-out from the impact axis.
            let scale = if r > 1e-12 { push / r } else { 0.0 };
            q[0] += (p[0] - cfg.impact_offset[0]) * scale;
            q[1] += (p[1] - cfg.impact_offset[1]) * scale;
            // Downward dishing.
            q[2] -= 0.5 * push;
            q
        })
        .collect()
}

/// Extracts the contact surface: boundary faces whose centroid lies inside
/// the interaction region (a vertical prism around the projectile channel,
/// `interaction_factor` times the projectile half-width, covering every
/// z), plus the projectile's own surface.
fn contact_surface(cfg: &SimConfig, mesh: &Mesh<3>, hw: f64) -> Surface {
    let full = extract_surface(mesh);
    // The interaction prism never extends onto the plates' outer lateral
    // rims (those faces cannot contact anything), mirroring how contact
    // codes mark slide surfaces.
    let plate_half = 0.5 * cfg.plate_cells[0] as f64 * cfg.cell;
    let margin = (cfg.interaction_factor * hw).min(plate_half - 0.5 * cfg.cell);
    let [ox, oy] = cfg.impact_offset;
    // Clamp the (offset) region inside the plates so the rims stay out.
    let lo_x = (ox - margin).max(-plate_half + 0.5 * cfg.cell);
    let hi_x = (ox + margin).min(plate_half - 0.5 * cfg.cell);
    let lo_y = (oy - margin).max(-plate_half + 0.5 * cfg.cell);
    let hi_y = (oy + margin).min(plate_half - 0.5 * cfg.cell);
    let region = Aabb::new(
        Point::new([lo_x, lo_y, f64::NEG_INFINITY]),
        Point::new([hi_x, hi_y, f64::INFINITY]),
    );
    let faces: Vec<_> = full
        .faces
        .into_iter()
        .filter(|sf| {
            let nodes = sf.face.nodes();
            let mut c = Point::origin();
            for &n in nodes {
                c = c.add(&mesh.points[n as usize]);
            }
            let c = c.scale(1.0 / nodes.len() as f64);
            region.contains_point(&c)
        })
        .collect();
    let mut contact_nodes: Vec<u32> =
        faces.iter().flat_map(|sf| sf.face.nodes().iter().copied()).collect();
    contact_nodes.sort_unstable();
    contact_nodes.dedup();
    Surface { faces, contact_nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BODY_PLATE_BOTTOM, BODY_PLATE_TOP};

    #[test]
    fn run_produces_requested_snapshots() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        assert_eq!(result.len(), cfg.snapshots);
        // Steps strictly increase.
        for w in result.snapshots.windows(2) {
            assert!(w[0].step < w[1].step);
        }
    }

    #[test]
    fn projectile_descends_monotonically() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        let proj_node = result
            .base
            .elements
            .iter()
            .zip(result.base.body.iter())
            .find(|(_, &b)| b == BODY_PROJECTILE)
            .map(|(el, _)| el.nodes()[0])
            .unwrap();
        let mut last = f64::INFINITY;
        for s in &result.snapshots {
            let z = s.points[proj_node as usize][2];
            assert!(z < last);
            last = z;
        }
    }

    #[test]
    fn erosion_progresses_through_both_plates() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        let first = &result.snapshots[0];
        let last = result.snapshots.last().unwrap();
        let dead = |snap: &Snapshot, body: u16| {
            result
                .base
                .body
                .iter()
                .enumerate()
                .filter(|&(e, &b)| b == body && !snap.alive[e])
                .count()
        };
        // By the end, both plates must have lost elements.
        assert!(dead(last, BODY_PLATE_TOP) > 0, "top plate never penetrated");
        assert!(dead(last, BODY_PLATE_BOTTOM) > 0, "bottom plate never penetrated");
        // Erosion is monotone: the last snapshot has at least as many dead
        // elements as the first.
        assert!(dead(last, BODY_PLATE_TOP) >= dead(first, BODY_PLATE_TOP));
        // The projectile is never eroded.
        for (e, &b) in result.base.body.iter().enumerate() {
            if b == BODY_PROJECTILE {
                assert!(last.alive[e]);
            }
        }
    }

    #[test]
    fn contact_surface_grows_as_craters_open() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        let early = result.snapshots.first().unwrap().contact.num_faces();
        let peak = result.snapshots.iter().map(|s| s.contact.num_faces()).max().unwrap();
        assert!(peak > early, "crater walls must add contact faces (early {early}, peak {peak})");
        // Every snapshot has a non-empty contact set.
        for s in &result.snapshots {
            assert!(s.contact.num_faces() > 0);
            assert!(s.contact.num_contact_nodes() > 0);
        }
    }

    #[test]
    fn deformation_is_bounded_and_leaves_far_field_at_rest() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        let rest = result.base.points.clone();
        let hw = cfg.proj_half_width();
        let bound = cfg.deform_amp * cfg.cell + 1e-9;
        for s in &result.snapshots {
            for (n, p) in s.points.iter().enumerate() {
                if result.base.points[n][2] > 0.5 {
                    continue; // projectile node (starts above plates)
                }
                let disp = p.sub(&rest[n]);
                assert!(disp.norm2().sqrt() <= 1.5 * bound, "node {n} moved too far");
                let r = rest[n][0].abs().max(rest[n][1].abs());
                if r > hw + 3.0 * cfg.cell + 1e-9 {
                    assert_eq!(disp.norm2(), 0.0, "far-field node {n} moved");
                }
            }
        }
    }

    #[test]
    fn offset_impact_erodes_off_center() {
        let mut cfg = SimConfig::tiny();
        cfg.impact_offset = [2.0, 1.0];
        let result = run(&cfg);
        let last = result.snapshots.last().unwrap();
        // Dead plate elements must cluster around the offset axis.
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut count = 0.0;
        for (e, &alive) in last.alive.iter().enumerate() {
            if !alive {
                let c = result.base.element_centroid(e as u32);
                cx += c[0];
                cy += c[1];
                count += 1.0;
            }
        }
        assert!(count > 0.0, "offset impact must still erode");
        assert!((cx / count - 2.0).abs() < 1.0, "crater x center {}", cx / count);
        assert!((cy / count - 1.0).abs() < 1.0, "crater y center {}", cy / count);
        // The whole pipeline still works on the asymmetric sequence.
        for s in &result.snapshots {
            assert!(s.contact.num_faces() > 0);
        }
    }

    #[test]
    fn meshes_at_snapshots_validate() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        for i in [0, result.len() / 2, result.len() - 1] {
            result.mesh_at(i).validate().unwrap();
        }
    }

    #[test]
    fn deformation_never_inverts_elements() {
        let cfg = SimConfig::tiny();
        let result = run(&cfg);
        for i in [0, result.len() / 2, result.len() - 1] {
            let mesh = result.mesh_at(i);
            let report = cip_mesh::quality_report(&mesh);
            assert_eq!(report.inverted, 0, "snapshot {i} has inverted elements");
            assert!(report.min_measure > 0.0);
            assert!(report.max_aspect < 5.0, "snapshot {i} aspect {}", report.max_aspect);
        }
    }
}
