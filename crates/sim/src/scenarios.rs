//! Named workload scenarios and the enumerable scenario registry.
//!
//! The paper evaluates on a single EPIC run; a reusable library needs a
//! family of related workloads to check that conclusions are not an
//! artifact of one geometry. All scenarios are parameter presets of the
//! same projectile/two-plate simulation.
//!
//! The registry ([`list`] / [`get`]) is the single source of truth for
//! scenario names: the `cip-trace --list-scenarios` flag, the job
//! server's workload catalog, and every name-to-config resolution go
//! through it, so an unknown name is always a reportable error naming
//! the valid alternatives rather than a silent `None`.

use crate::geometry::SimConfig;

/// One registered workload: a stable name, a one-line summary for
/// catalogs, and the config preset it resolves to.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioDescriptor {
    /// Stable registry name (what `--scenario` accepts).
    pub name: &'static str,
    /// One-line human summary, shown by catalogs and `--list-scenarios`.
    pub summary: &'static str,
    /// Preset constructor.
    pub config: fn() -> SimConfig,
}

impl ScenarioDescriptor {
    /// Builds the scenario's simulation config.
    pub fn config(&self) -> SimConfig {
        (self.config)()
    }
}

/// The scenario registry, in presentation order.
static REGISTRY: &[ScenarioDescriptor] = &[
    ScenarioDescriptor {
        name: "head_on",
        summary: "default head-on projectile strike",
        config: head_on,
    },
    ScenarioDescriptor {
        name: "offset_strike",
        summary: "off-center strike, every symmetry broken",
        config: offset_strike,
    },
    ScenarioDescriptor {
        name: "thick_plates",
        summary: "thick plates, slow penetration, gradual contact growth",
        config: thick_plates,
    },
    ScenarioDescriptor {
        name: "blunt_impactor",
        summary: "blunt wide projectile, crater-dominated surface growth",
        config: blunt_impactor,
    },
    ScenarioDescriptor {
        name: "tiny",
        summary: "unit-test-sized strike (seconds, not minutes)",
        config: SimConfig::tiny,
    },
];

/// Every registered scenario, in presentation order.
pub fn list() -> &'static [ScenarioDescriptor] {
    REGISTRY
}

/// Looks up a scenario by name.
pub fn get(name: &str) -> Option<&'static ScenarioDescriptor> {
    REGISTRY.iter().find(|d| d.name == name)
}

/// The registered names, comma-separated — for error messages.
pub fn known_names() -> String {
    let names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
    names.join(", ")
}

/// The default head-on strike (alias of [`SimConfig::small`]).
pub fn head_on() -> SimConfig {
    SimConfig::small()
}

/// An off-center strike: the projectile axis is offset towards one plate
/// corner, breaking every symmetry of the problem. Stresses the
/// incremental RCB update and the tree re-induction on drifting,
/// asymmetric contact sets.
pub fn offset_strike() -> SimConfig {
    let mut cfg = SimConfig::small();
    // Offset by a third of the plate half-width, diagonally.
    let half = 0.5 * cfg.plate_cells[0] as f64 * cfg.cell;
    cfg.impact_offset = [half / 3.0, half / 4.0];
    cfg
}

/// Thick plates, slow penetration: the contact set grows gradually over
/// many snapshots and the interior/surface node ratio is higher (closer
/// to the EPIC mesh's proportions).
pub fn thick_plates() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.plate_cells = [28, 28, 6];
    cfg.proj_cells = [4, 4, 20];
    cfg.speed = 0.0; // re-derive for the new travel distance
    cfg.normalized()
}

/// A blunt, wide projectile: large contact patch, craters dominate the
/// surface growth.
pub fn blunt_impactor() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.proj_cells = [12, 12, 8];
    cfg.speed = 0.0;
    cfg.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn registry_is_enumerable_and_errors_on_unknown_names() {
        assert!(list().len() >= 5);
        for d in list() {
            assert!(!d.summary.is_empty(), "{} has no summary", d.name);
            let found = get(d.name).expect("every listed scenario resolves");
            assert_eq!(found.name, d.name);
        }
        assert_eq!(get("tiny").map(|d| d.name), Some("tiny"));
        assert!(get("bogus").is_none());
        assert!(known_names().contains("head_on"));
        assert!(known_names().contains("tiny"));
    }

    #[test]
    fn all_scenarios_simulate_and_produce_contact() {
        for (name, mut cfg) in [
            ("head_on", head_on()),
            ("offset_strike", offset_strike()),
            ("thick_plates", thick_plates()),
            ("blunt_impactor", blunt_impactor()),
        ] {
            cfg.snapshots = 5;
            cfg.steps = cfg.steps.min(100);
            let sim = run(&cfg);
            assert_eq!(sim.len(), 5, "{name}");
            assert!(
                sim.snapshots.iter().all(|s| s.contact.num_faces() > 0),
                "{name}: empty contact set"
            );
            // Penetration must actually happen by the end.
            let last = sim.snapshots.last().unwrap();
            let eroded = last.alive.iter().filter(|&&a| !a).count();
            assert!(eroded > 0, "{name}: nothing eroded");
        }
    }

    #[test]
    fn offset_strike_is_asymmetric() {
        let cfg = offset_strike();
        assert!(cfg.impact_offset[0] > 0.0 && cfg.impact_offset[1] > 0.0);
        assert_ne!(cfg.impact_offset[0], cfg.impact_offset[1]);
    }

    #[test]
    fn thick_plates_have_lower_surface_ratio() {
        let thin = run(&{
            let mut c = head_on();
            c.snapshots = 1;
            c
        });
        let thick = run(&{
            let mut c = thick_plates();
            c.snapshots = 1;
            c
        });
        let ratio = |s: &crate::SimResult| {
            s.snapshots[0].contact.num_contact_nodes() as f64 / s.base.num_nodes() as f64
        };
        assert!(
            ratio(&thick) < ratio(&thin),
            "thick {:.3} vs thin {:.3}",
            ratio(&thick),
            ratio(&thin)
        );
    }
}
