//! Named workload scenarios.
//!
//! The paper evaluates on a single EPIC run; a reusable library needs a
//! family of related workloads to check that conclusions are not an
//! artifact of one geometry. All scenarios are parameter presets of the
//! same projectile/two-plate simulation.

use crate::geometry::SimConfig;

/// The default head-on strike (alias of [`SimConfig::small`]).
pub fn head_on() -> SimConfig {
    SimConfig::small()
}

/// An off-center strike: the projectile axis is offset towards one plate
/// corner, breaking every symmetry of the problem. Stresses the
/// incremental RCB update and the tree re-induction on drifting,
/// asymmetric contact sets.
pub fn offset_strike() -> SimConfig {
    let mut cfg = SimConfig::small();
    // Offset by a third of the plate half-width, diagonally.
    let half = 0.5 * cfg.plate_cells[0] as f64 * cfg.cell;
    cfg.impact_offset = [half / 3.0, half / 4.0];
    cfg
}

/// Thick plates, slow penetration: the contact set grows gradually over
/// many snapshots and the interior/surface node ratio is higher (closer
/// to the EPIC mesh's proportions).
pub fn thick_plates() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.plate_cells = [28, 28, 6];
    cfg.proj_cells = [4, 4, 20];
    cfg.speed = 0.0; // re-derive for the new travel distance
    cfg.normalized()
}

/// A blunt, wide projectile: large contact patch, craters dominate the
/// surface growth.
pub fn blunt_impactor() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.proj_cells = [12, 12, 8];
    cfg.speed = 0.0;
    cfg.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn all_scenarios_simulate_and_produce_contact() {
        for (name, mut cfg) in [
            ("head_on", head_on()),
            ("offset_strike", offset_strike()),
            ("thick_plates", thick_plates()),
            ("blunt_impactor", blunt_impactor()),
        ] {
            cfg.snapshots = 5;
            cfg.steps = cfg.steps.min(100);
            let sim = run(&cfg);
            assert_eq!(sim.len(), 5, "{name}");
            assert!(
                sim.snapshots.iter().all(|s| s.contact.num_faces() > 0),
                "{name}: empty contact set"
            );
            // Penetration must actually happen by the end.
            let last = sim.snapshots.last().unwrap();
            let eroded = last.alive.iter().filter(|&&a| !a).count();
            assert!(eroded > 0, "{name}: nothing eroded");
        }
    }

    #[test]
    fn offset_strike_is_asymmetric() {
        let cfg = offset_strike();
        assert!(cfg.impact_offset[0] > 0.0 && cfg.impact_offset[1] > 0.0);
        assert_ne!(cfg.impact_offset[0], cfg.impact_offset[1]);
    }

    #[test]
    fn thick_plates_have_lower_surface_ratio() {
        let thin = run(&{
            let mut c = head_on();
            c.snapshots = 1;
            c
        });
        let thick = run(&{
            let mut c = thick_plates();
            c.snapshots = 1;
            c
        });
        let ratio = |s: &crate::SimResult| {
            s.snapshots[0].contact.num_contact_nodes() as f64 / s.base.num_nodes() as f64
        };
        assert!(
            ratio(&thick) < ratio(&thin),
            "thick {:.3} vs thin {:.3}",
            ratio(&thick),
            ratio(&thin)
        );
    }
}
