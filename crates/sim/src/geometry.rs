//! Problem geometry and configuration.

use cip_geom::Point;
use cip_mesh::{generators, Mesh};
use serde::{Deserialize, Serialize};

/// Body ids used by the simulation.
pub const BODY_PLATE_TOP: u16 = 0;
/// The lower plate.
pub const BODY_PLATE_BOTTOM: u16 = 1;
/// The projectile.
pub const BODY_PROJECTILE: u16 = 2;

/// Configuration of the projectile/two-plate problem.
///
/// All lengths are in cell units of the plate mesh. The coordinate system
/// is: plates horizontal (normal to z), centered on the z axis; the
/// projectile starts above the top plate and travels in -z.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Plate discretization: cells in x, y, z (thickness).
    pub plate_cells: [usize; 3],
    /// Edge length of a plate cell.
    pub cell: f64,
    /// Clear gap between the two plates.
    pub plate_gap: f64,
    /// Projectile discretization (square cross-section rod): cells in
    /// x, y, z.
    pub proj_cells: [usize; 3],
    /// Initial clearance between projectile tip and the top plate.
    pub standoff: f64,
    /// Projectile advance per time step.
    pub speed: f64,
    /// Number of time steps to simulate.
    pub steps: usize,
    /// Number of snapshots to emit (evenly spaced over the steps).
    pub snapshots: usize,
    /// Half-width of the interaction region, as a multiple of the
    /// projectile half-width (clamped to the plate interior — the outer
    /// lateral rims are never contact surface); boundary faces inside it
    /// are the *contact surface* handed to the partitioner. Large values
    /// mark the entire plate surfaces as slide surfaces, as EPIC-style
    /// penetration setups do.
    pub interaction_factor: f64,
    /// Amplitude of the crater deformation field (fraction of a cell).
    pub deform_amp: f64,
    /// Horizontal (x, y) offset of the projectile axis from the plate
    /// center — an off-center impact breaks the problem's symmetry, which
    /// stresses the incremental-RCB and tree-update paths harder.
    pub impact_offset: [f64; 2],
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::small()
    }
}

impl SimConfig {
    /// Test-sized problem (~20k nodes): runs the full 100-snapshot
    /// pipeline in seconds.
    pub fn small() -> Self {
        Self {
            plate_cells: [36, 36, 3],
            cell: 1.0,
            plate_gap: 4.0,
            proj_cells: [6, 6, 16],
            standoff: 1.0,
            speed: 0.0, // derived in `normalized`
            steps: 360,
            snapshots: 100,
            interaction_factor: 5.0,
            deform_amp: 0.35,
            impact_offset: [0.0, 0.0],
        }
        .normalized()
    }

    /// Tiny problem for unit tests (a few hundred nodes, 10 snapshots).
    pub fn tiny() -> Self {
        Self {
            plate_cells: [10, 10, 2],
            cell: 1.0,
            plate_gap: 3.0,
            proj_cells: [2, 2, 6],
            standoff: 1.0,
            speed: 0.0,
            steps: 60,
            snapshots: 10,
            interaction_factor: 3.0,
            deform_amp: 0.35,
            impact_offset: [0.0, 0.0],
        }
        .normalized()
    }

    /// Benchmark-sized problem (~80k nodes) — big enough for the Table-1
    /// comparison shapes to be stable, small enough to run in minutes.
    pub fn medium() -> Self {
        Self {
            plate_cells: [64, 64, 4],
            cell: 1.0,
            plate_gap: 5.0,
            proj_cells: [8, 8, 24],
            standoff: 1.0,
            speed: 0.0,
            steps: 500,
            snapshots: 100,
            interaction_factor: 6.0,
            deform_amp: 0.35,
            impact_offset: [0.0, 0.0],
        }
        .normalized()
    }

    /// Paper-scale problem (~150k nodes in the hex discretization; the
    /// paper's tetrahedral mesh has more elements per node, so element
    /// counts are not directly comparable).
    pub fn paper_scale() -> Self {
        Self { plate_cells: [96, 96, 5], proj_cells: [10, 10, 30], ..Self::medium() }.normalized()
    }

    /// If `speed` was left at 0, derive it so the projectile traverses both
    /// plates (plus gap and standoff) over the configured steps.
    pub fn normalized(mut self) -> Self {
        if self.speed <= 0.0 {
            let travel = self.standoff
                + 2.0 * self.plate_cells[2] as f64 * self.cell
                + self.plate_gap
                + 2.0 * self.cell;
            self.speed = travel / self.steps as f64;
        }
        self
    }

    /// Projectile half-width (x/y), in length units.
    pub fn proj_half_width(&self) -> f64 {
        0.5 * self.proj_cells[0] as f64 * self.cell
    }

    /// Builds the initial three-body mesh. The returned mesh is the rest
    /// configuration at step 0.
    pub fn build_mesh(&self) -> Mesh<3> {
        let [px, py, pz] = self.plate_cells;
        let c = self.cell;
        let plate_w = px as f64 * c;
        let plate_d = py as f64 * c;
        let thickness = pz as f64 * c;

        // Top plate occupies z in [-thickness, 0], centered in x/y.
        let mut mesh = generators::hex_box(
            [px, py, pz],
            Point::new([-plate_w / 2.0, -plate_d / 2.0, -thickness]),
            [c, c, c],
            BODY_PLATE_TOP,
        );
        // Bottom plate below the gap.
        let bottom = generators::hex_box(
            [px, py, pz],
            Point::new([-plate_w / 2.0, -plate_d / 2.0, -2.0 * thickness - self.plate_gap]),
            [c, c, c],
            BODY_PLATE_BOTTOM,
        );
        mesh.append(&bottom);
        // Projectile: square rod, tip at z = standoff, axis at the
        // (possibly offset) impact point.
        let [qx, qy, qz] = self.proj_cells;
        let proj = generators::hex_box(
            [qx, qy, qz],
            Point::new([
                self.impact_offset[0] - (qx as f64) * c / 2.0,
                self.impact_offset[1] - (qy as f64) * c / 2.0,
                self.standoff,
            ]),
            [c, c, c],
            BODY_PROJECTILE,
        );
        mesh.append(&proj);
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mesh_has_three_bodies() {
        let cfg = SimConfig::small();
        let mesh = cfg.build_mesh();
        mesh.validate().unwrap();
        let bodies: std::collections::HashSet<u16> = mesh.body.iter().copied().collect();
        assert_eq!(bodies.len(), 3);
    }

    #[test]
    fn projectile_starts_above_top_plate() {
        let cfg = SimConfig::tiny();
        let mesh = cfg.build_mesh();
        let proj_min_z = mesh
            .elements
            .iter()
            .zip(mesh.body.iter())
            .filter(|(_, &b)| b == BODY_PROJECTILE)
            .flat_map(|(el, _)| el.nodes().iter())
            .map(|&n| mesh.points[n as usize][2])
            .fold(f64::INFINITY, f64::min);
        assert!(proj_min_z >= cfg.standoff - 1e-9);
        // Plates are entirely at z <= 0.
        let plate_max_z = mesh
            .elements
            .iter()
            .zip(mesh.body.iter())
            .filter(|(_, &b)| b != BODY_PROJECTILE)
            .flat_map(|(el, _)| el.nodes().iter())
            .map(|&n| mesh.points[n as usize][2])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(plate_max_z <= 1e-9);
    }

    #[test]
    fn normalized_speed_covers_travel() {
        let cfg = SimConfig::tiny();
        let travel = cfg.speed * cfg.steps as f64;
        // Must at least traverse both plates and the gap.
        let needed = cfg.standoff + 2.0 * cfg.plate_cells[2] as f64 * cfg.cell + cfg.plate_gap;
        assert!(travel >= needed);
    }

    #[test]
    fn paper_scale_is_larger_than_medium() {
        let m = SimConfig::medium().build_mesh();
        let p = SimConfig::paper_scale().build_mesh();
        assert!(p.num_nodes() > m.num_nodes());
        assert!(p.num_nodes() > 100_000, "paper scale has {} nodes", p.num_nodes());
    }
}
