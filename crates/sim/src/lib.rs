//! Synthetic contact/impact simulation: a projectile penetrating two
//! plates.
//!
//! The paper evaluates on a proprietary EPIC dataset — a projectile
//! penetrating two plates, 156,601 nodes / 701,952 elements, instrumented
//! to emit ~100 mesh snapshots over 3,768 time steps. That dataset is not
//! available, so this crate generates the closest synthetic equivalent
//! that exercises the same code paths (see DESIGN.md §4):
//!
//! * a **multi-body hex mesh**: two plates plus a square-cross-section rod
//!   projectile ([`geometry`]),
//! * **kinematic penetration**: the projectile advances every step; plate
//!   elements it reaches are *eroded* (deleted), opening craters whose
//!   walls become new contact surface — the contact-point set both moves
//!   and grows over time, exactly the behaviour the update strategies of
//!   §4.3 must cope with ([`dynamics`]),
//! * a smooth, bounded **deformation field** pushes plate material away
//!   from the crater so contact-node positions drift between snapshots,
//! * a [`Snapshot`] sequence (default 100, matching the paper) with the
//!   per-snapshot contact surface extracted exactly as a contact code
//!   would: boundary faces of live elements inside the interaction region.

pub mod dynamics;
pub mod geometry;
pub mod scenarios;
pub mod snapshot;

pub use dynamics::run;
pub use geometry::SimConfig;
pub use scenarios::{blunt_impactor, head_on, offset_strike, thick_plates, ScenarioDescriptor};
pub use snapshot::{SimResult, Snapshot};
