//! Shared-memory parallel execution of contact/impact time steps.
//!
//! The paper's algorithms target a distributed-memory machine; its
//! evaluation counts the *communication volumes* a real run would incur.
//! This crate closes the loop: it actually **executes** a contact/impact
//! time step across `k` logical ranks — one thread per rank, explicit
//! messages over crossbeam channels, no shared mutable state — and
//! *measures* the traffic, so the tests can assert that
//!
//! * ghost node positions are bit-identical to their owners' after the
//!   halo exchange,
//! * the measured halo traffic equals `cip_core::halo_traffic`'s
//!   prediction (the FEComm metric), message for message,
//! * the measured element shipments equal the NRemote prediction,
//! * the distributed contact detection finds exactly the serial pairs.
//!
//! In other words: the numbers in Table 1 are not just plausible
//! analytics — they are the exact message counts of an executable
//! parallel step.
//!
//! * [`plan`] — builds the per-rank decomposition plan (owned nodes,
//!   ghosts, halo send lists, element & surface ownership) from a node
//!   partition,
//! * [`exec`] — the threaded step executor and its traffic log,
//! * [`pipeline`] — the dependency-driven pipelined batch executor:
//!   persistent rank threads overlap halo sends, shipments, and contact
//!   searches across ranks *and* adjacent steps (bounded lookahead),
//!   bit-identical to the barrier schedule it keeps as its oracle behind
//!   [`exec::Schedule`],
//! * [`fault`] — deterministic, seeded fault injection (message drop /
//!   duplication / delay / reorder, mid-step rank kills) behind a
//!   zero-cost-when-disabled hook,
//! * [`migrate`] — migration plans between successive decompositions
//!   (the executable counterpart of the UpdComm metric),
//! * [`replan`] — the background repartition planner that hides
//!   migration planning behind a running batch
//!   ([`exec::RepartitionMode::Overlapped`], DESIGN.md §6f).
//!
//! Failures surface as typed [`RuntimeError`]s instead of panics, so a
//! driver can recover — repartition over the surviving ranks, migrate,
//! and re-execute (see `cip::trace::run_traced` and DESIGN.md §6c).

use std::fmt;

pub mod exec;
pub mod fault;
pub mod migrate;
pub mod pipeline;
pub mod plan;
pub mod remote;
pub mod replan;
pub mod wire;

pub use exec::{
    execute_step, execute_step_transport, execute_step_with, ExecOptions, ExecOptionsBuilder, Msg,
    PhaseTraffic, RankResult, RepartitionMode, Schedule, StepInput, StepOutput, TrafficLog,
};
pub use fault::{Fate, FaultInjector, FaultPlan, KillSpec};
pub use migrate::{build_migration, build_migration_recorded, MigrationPlan};
pub use pipeline::{
    collect_batch, execute_rank_steps, execute_steps, execute_steps_overlapped,
    execute_steps_transport, execute_steps_with, BatchError, RankBatchOutcome,
};
pub use plan::{build_decomposition, Decomposition, RankPlan};
pub use remote::SteppedMailbox;
pub use replan::Replanner;

/// A failed step execution — every former panic site on the executor hot
/// path, made recoverable.
#[derive(Debug)]
pub enum RuntimeError {
    /// A rank thread panicked (`rank` is the lowest-numbered offender).
    RankPanicked {
        /// The panicking rank.
        rank: u32,
    },
    /// One or more ranks died mid-step. The survivors drained what they
    /// could; `partial` holds their aggregated output so the driver can
    /// inspect it before repartitioning over the `k - dead.len()`
    /// survivors and re-executing the step.
    RankLost {
        /// The dead ranks, ascending.
        dead: Vec<u32>,
        /// Aggregated output of the surviving ranks.
        partial: Box<StepOutput>,
    },
    /// The transport layer failed before or during the step: mesh
    /// construction, socket I/O, or a fatal wire-format violation.
    /// Frame-local corruption never surfaces here — readers drop the
    /// frame and the NACK protocol repairs it.
    Transport(cip_transport::TransportError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RankPanicked { rank } => write!(f, "rank {rank} panicked during the step"),
            Self::RankLost { dead, partial } => write!(
                f,
                "{} rank(s) lost mid-step ({:?}); {} survivor pairs salvaged",
                dead.len(),
                dead,
                partial.contact_pairs.len()
            ),
            Self::Transport(e) => write!(f, "transport failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cip_transport::TransportError> for RuntimeError {
    fn from(e: cip_transport::TransportError) -> Self {
        Self::Transport(e)
    }
}

/// A rejected configuration value — what a validating builder
/// ([`ExecOptions::builder`], `TraceOptions::builder` in the `cip`
/// facade) returns instead of clamping silently or panicking later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The option that was rejected (builder-method name).
    pub field: &'static str,
    /// Why the value is invalid.
    pub reason: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// A shared cancellation flag with checkpoint semantics: the holder of a
/// running [`crate`] step loop (a `cip::trace::Session`, a job-server
/// worker) polls it at batch boundaries and winds down cleanly when it
/// trips. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag; every clone observes it at its next checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_error_display_names_the_culprits() {
        let e = RuntimeError::RankPanicked { rank: 3 };
        assert!(e.to_string().contains("rank 3"));
        let e = RuntimeError::RankLost {
            dead: vec![1, 2],
            partial: Box::new(StepOutput {
                contact_pairs: Vec::new(),
                traffic: TrafficLog {
                    k: 4,
                    halo: vec![0; 16],
                    shipments: vec![0; 16],
                    phases: PhaseTraffic::default(),
                },
                ghost_mismatches: 0,
            }),
        };
        let s = e.to_string();
        assert!(s.contains("[1, 2]"), "{s}");
        let _dyn: &dyn std::error::Error = &e;
    }
}
