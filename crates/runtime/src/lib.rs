//! Shared-memory parallel execution of contact/impact time steps.
//!
//! The paper's algorithms target a distributed-memory machine; its
//! evaluation counts the *communication volumes* a real run would incur.
//! This crate closes the loop: it actually **executes** a contact/impact
//! time step across `k` logical ranks — one thread per rank, explicit
//! messages over crossbeam channels, no shared mutable state — and
//! *measures* the traffic, so the tests can assert that
//!
//! * ghost node positions are bit-identical to their owners' after the
//!   halo exchange,
//! * the measured halo traffic equals [`cip_core::halo_traffic`]'s
//!   prediction (the FEComm metric), message for message,
//! * the measured element shipments equal the NRemote prediction,
//! * the distributed contact detection finds exactly the serial pairs.
//!
//! In other words: the numbers in Table 1 are not just plausible
//! analytics — they are the exact message counts of an executable
//! parallel step.
//!
//! * [`plan`] — builds the per-rank decomposition plan (owned nodes,
//!   ghosts, halo send lists, element & surface ownership) from a node
//!   partition,
//! * [`exec`] — the threaded step executor and its traffic log,
//! * [`migrate`] — migration plans between successive decompositions
//!   (the executable counterpart of the UpdComm metric).

pub mod exec;
pub mod migrate;
pub mod plan;

pub use exec::{execute_step, PhaseTraffic, StepInput, StepOutput, TrafficLog};
pub use migrate::{build_migration, build_migration_recorded, MigrationPlan};
pub use plan::{build_decomposition, Decomposition, RankPlan};
