//! Deterministic fault injection for the step executor.
//!
//! A [`FaultPlan`] decides, purely from its seed and a message's identity
//! `(from, to, seq)`, whether that message is delivered, dropped,
//! duplicated, delayed past the sender's `Done` marker, or reordered with
//! the next message to the same destination — and whether a rank is
//! killed mid-step. The plan is carried into [`crate::exec::execute_step_with`]
//! behind a [`FaultInjector`] handle that follows the same
//! `Option<Arc<_>>` pattern as [`cip_telemetry::Recorder`]: the default
//! [`FaultInjector::none`] costs one `None` branch per send and allocates
//! nothing, so production builds pay nothing for the chaos machinery.
//!
//! Two rules keep chaos runs provably convergent:
//!
//! * fates apply to **first transmissions only** — the executor's
//!   retry/resend path replays messages verbatim from its history buffer,
//!   bypassing injection, so one retry round always repairs pure
//!   message-level faults;
//! * only payload messages (`Halo`, `Element`) are injectable — `Done`
//!   trailers and the recovery-control messages model a reliable control
//!   plane, so the only way a `Done` goes missing is a killed rank, which
//!   the timeout path detects.

use std::sync::Arc;

/// SplitMix64 step — the same deterministic mixer the partitioner uses
/// for child seeds (`cip_partition::config::child_seed`), duplicated here
/// so the runtime crate stays free of a partitioner dependency. Public
/// because every seeded fault source in the tree (fault plans, the chaos
/// proxy, client retry jitter) draws from this one mixer, keeping the
/// seeding discipline uniform.
#[inline]
pub fn splitmix64(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

use splitmix64 as splitmix;

/// The fate of one first-transmission payload message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Send normally.
    Deliver,
    /// Never send (the receiver must detect the gap and ask again).
    Drop,
    /// Send twice (the receiver must deduplicate by sequence number).
    Duplicate,
    /// Hold until after the sender's `Done` marker (arrives "late").
    Delay,
    /// Swap with the next message to the same destination.
    Reorder,
}

/// Kills one rank mid-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The rank to kill.
    pub rank: u32,
    /// The rank dies just before its `after_sends + 1`-th payload send
    /// (0 = before any send; a value past the rank's send count kills it
    /// right before its `Done` markers).
    pub after_sends: u64,
}

/// A deterministic, seeded chaos schedule for one executed step.
///
/// Rates are in permille (0..=1000) and are evaluated in the order
/// drop → duplicate → delay → reorder on a single per-message hash, so
/// the fates of distinct messages are independent and the whole plan is
/// a pure function of `(seed, from, to, seq)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-message fate hash.
    pub seed: u64,
    /// Permille of payload messages dropped.
    pub drop_permille: u16,
    /// Permille of payload messages duplicated.
    pub dup_permille: u16,
    /// Permille of payload messages delayed past `Done`.
    pub delay_permille: u16,
    /// Permille of payload messages swapped with their successor.
    pub reorder_permille: u16,
    /// Optional mid-step rank kill.
    pub kill: Option<KillSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline: arming the
    /// executor's chaos path without any fault must not change output).
    pub fn quiet(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// A modest default chaos mix: 2% drops, 1% duplicates, 1% delays,
    /// 1% reorders, no kill.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            drop_permille: 20,
            dup_permille: 10,
            delay_permille: 10,
            reorder_permille: 10,
            kill: None,
        }
    }

    /// Derives the per-step plan of a multi-step run: an independent fate
    /// stream per step, same rates, same kill spec.
    pub fn for_step(&self, step: u64) -> Self {
        Self { seed: splitmix(self.seed, 0xFA_0175 ^ step), ..self.clone() }
    }

    /// The fate of first transmission `(from, to, seq)`.
    pub fn fate(&self, from: u32, to: u32, seq: u64) -> Fate {
        let total =
            self.drop_permille + self.dup_permille + self.delay_permille + self.reorder_permille;
        if total == 0 {
            return Fate::Deliver;
        }
        let ident = (u64::from(from) << 40) ^ (u64::from(to) << 20) ^ seq;
        let x = (splitmix(self.seed, ident) % 1000) as u16;
        if x < self.drop_permille {
            Fate::Drop
        } else if x < self.drop_permille + self.dup_permille {
            Fate::Duplicate
        } else if x < self.drop_permille + self.dup_permille + self.delay_permille {
            Fate::Delay
        } else if x < total {
            Fate::Reorder
        } else {
            Fate::Deliver
        }
    }
}

/// The zero-cost-when-disabled handle the executor carries.
///
/// `FaultInjector::none()` holds no allocation; every hook reduces to an
/// `Option` discriminant test, mirroring the disabled
/// [`cip_telemetry::Recorder`].
#[derive(Debug, Clone, Default)]
pub struct FaultInjector(Option<Arc<FaultPlan>>);

impl FaultInjector {
    /// The disabled injector (the executor's default).
    pub fn none() -> Self {
        Self(None)
    }

    /// An injector executing `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self(Some(Arc::new(plan)))
    }

    /// Whether any plan is armed. Arming a [`FaultPlan::quiet`] plan
    /// still routes the executor through the chaos drain protocol
    /// (count trailers, completion round) without changing its output.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.0.as_deref()
    }

    /// The fate of first transmission `(from, to, seq)`; always
    /// [`Fate::Deliver`] when disabled.
    #[inline]
    pub fn fate(&self, from: u32, to: u32, seq: u64) -> Fate {
        match &self.0 {
            None => Fate::Deliver,
            Some(p) => p.fate(from, to, seq),
        }
    }

    /// Whether `rank` dies once it has made `sends_so_far` payload sends.
    #[inline]
    pub fn should_kill(&self, rank: u32, sends_so_far: u64) -> bool {
        match &self.0 {
            None => false,
            Some(p) => p.kill.is_some_and(|k| k.rank == rank && sends_so_far >= k.after_sends),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_delivers_everything() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        for seq in 0..100 {
            assert_eq!(inj.fate(0, 1, seq), Fate::Deliver);
        }
        assert!(!inj.should_kill(0, 0));
    }

    #[test]
    fn quiet_plan_is_armed_but_injects_nothing() {
        let inj = FaultInjector::with_plan(FaultPlan::quiet(99));
        assert!(inj.is_active());
        for from in 0..4 {
            for to in 0..4 {
                for seq in 0..50 {
                    assert_eq!(inj.fate(from, to, seq), Fate::Deliver);
                }
            }
        }
    }

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::chaos(7);
        let b = FaultPlan::chaos(7);
        let c = FaultPlan::chaos(8);
        let fates_a: Vec<Fate> = (0..500).map(|s| a.fate(1, 2, s)).collect();
        let fates_b: Vec<Fate> = (0..500).map(|s| b.fate(1, 2, s)).collect();
        let fates_c: Vec<Fate> = (0..500).map(|s| c.fate(1, 2, s)).collect();
        assert_eq!(fates_a, fates_b, "same seed, same fates");
        assert_ne!(fates_a, fates_c, "different seed, different stream");
        // The rates are low, so most messages must be delivered.
        let delivered = fates_a.iter().filter(|&&f| f == Fate::Deliver).count();
        assert!(delivered > 400, "delivered {delivered}/500");
        // But with 500 draws at 5% total rate, *some* fault must fire.
        assert!(delivered < 500, "chaos plan never injected anything");
    }

    #[test]
    fn per_step_plans_have_independent_streams() {
        let base = FaultPlan::chaos(3);
        let s0 = base.for_step(0);
        let s1 = base.for_step(1);
        assert_ne!(s0.seed, s1.seed);
        assert_eq!(s0.drop_permille, base.drop_permille);
        assert_eq!(s0.for_step(0).seed, base.for_step(0).for_step(0).seed, "derivation is pure");
    }

    #[test]
    fn kill_threshold_semantics() {
        let inj = FaultInjector::with_plan(FaultPlan {
            kill: Some(KillSpec { rank: 2, after_sends: 3 }),
            ..FaultPlan::quiet(1)
        });
        assert!(!inj.should_kill(2, 0));
        assert!(!inj.should_kill(2, 2));
        assert!(inj.should_kill(2, 3));
        assert!(inj.should_kill(2, 10));
        assert!(!inj.should_kill(1, 10), "only the named rank dies");
    }
}
