//! The dependency-driven pipelined batch executor (DESIGN.md §6d).
//!
//! [`execute_steps_with`] runs a whole batch of steps (one migration-free
//! stretch of a trace) across `k` persistent rank threads. Where the
//! barrier executor spawns and joins threads once per step — so every
//! rank idles on the slowest straggler at every phase boundary — the
//! pipelined schedule keys each per-rank phase by `(step, rank, phase)`
//! and lets data dependencies, not barriers, order the work:
//!
//! * a rank starts its step-`s` contact search as soon as *its own*
//!   inbound halos and shipments for `s` have drained (locally decidable
//!   from the per-peer `Done{from, step, sent}` trailers — no new wire
//!   messages over the fault-tolerant protocol of DESIGN.md §6c);
//! * a rank's step `s + 1` halo/shipment sends may begin while stragglers
//!   are still finishing step `s`, bounded by
//!   [`Schedule::Pipelined`]'s `lookahead`;
//! * repartition boundaries still end the batch, but under
//!   [`crate::exec::RepartitionMode::Overlapped`] the migration of an
//!   accepted plan rides the next batch as a [`Msg::Migrate`] prologue
//!   ([`execute_steps_overlapped`], DESIGN.md §6f) instead of a
//!   stop-the-world stage of its own.
//!
//! The scheduler is a pair of cursors (`next_send`, `completed`) over
//! per-step state tables allocated once at batch start: the ready set is
//! implicit ("send while inside the lookahead window; search while the
//! lowest incomplete step is drained"), so the steady-state loop
//! allocates nothing beyond the message payloads themselves. One inbox
//! per rank is partitioned by the `step` tag every message carries.
//!
//! Fault injection and recovery work unchanged: fates are evaluated per
//! `(from, to, step, seq)` exactly as the barrier executor evaluates its
//! per-step streams, kills turn the rank into a *zombie* that still
//! drains and searches the steps before its death (so every step the
//! batch commits aggregates all `k` ranks, bit-identical to the barrier
//! schedule) and serves resend requests for those steps, and the chaos
//! completion round runs once per batch instead of once per step.
//! Idle time — a rank actually blocking on an empty inbox — is charged
//! to `exec.idle` spans, and `exec.overlap.steps_in_flight` records the
//! send/completion cursor spread after every step sent.

use crate::exec::{
    aggregate, chaos_send, execute_step_transport, mark_new, missing_seqs, recv_or_idle,
    search_rank, ChaosState, ExecOptions, Msg, RankResult, Schedule, StepInput, StepOutput,
};
use crate::fault::FaultInjector;
use crate::migrate::MigrationPlan;
use crate::RuntimeError;
use cip_contact::{GlobalFilter, SearchCache};
use cip_geom::Aabb;
use cip_telemetry::Recorder;
use cip_transport::{InProcess, Mailbox, RecvTimeoutError, Transport};
use std::fmt;

/// A failed batch execution: the steps committed before the failure, the
/// index of the step that failed, and the per-step error (the same typed
/// [`RuntimeError`] the single-step executor reports, so driver recovery
/// code handles both identically).
#[derive(Debug)]
pub struct BatchError {
    /// Outputs of the steps that fully committed before the failure
    /// (every rank drained and searched them).
    pub completed: Vec<StepOutput>,
    /// Batch-local index of the step that failed
    /// (`== completed.len()`).
    pub failed_step: usize,
    /// Why that step failed.
    pub error: RuntimeError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch failed at step {} after {} committed step(s): {}",
            self.failed_step,
            self.completed.len(),
            self.error
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Per-step receive-side state of one rank (all peers).
struct StepRecv {
    /// Chaos path: announced first-transmission count per peer.
    exp: Vec<Option<u64>>,
    /// Chaos path: distinct payloads received per peer.
    got: Vec<u64>,
    /// Chaos path: per-peer dedup bitmap.
    seen: Vec<Vec<bool>>,
    /// Fast path: which peers' `Done` trailers arrived.
    done_from: Vec<bool>,
    /// Fast path: number of `true`s in `done_from` (self included).
    done_count: usize,
    /// Elements shipped to this rank for this step.
    received: Vec<(u32, Aabb<3>, u16)>,
    /// Halo values that disagreed with the oracle position.
    ghost_mismatches: usize,
}

impl StepRecv {
    fn new(k: usize, r: usize) -> Self {
        let mut exp = vec![None; k];
        let mut done_from = vec![false; k];
        exp[r] = Some(0);
        done_from[r] = true;
        Self {
            exp,
            got: vec![0; k],
            seen: vec![Vec::new(); k],
            done_from,
            done_count: 1,
            received: Vec::new(),
            ghost_mismatches: 0,
        }
    }

    /// Whether every peer's data for this step has fully arrived.
    fn data_complete(&self, chaos_armed: bool, k: usize) -> bool {
        if chaos_armed {
            (0..k).all(|p| matches!(self.exp[p], Some(e) if self.got[p] >= e))
        } else {
            self.done_count == k
        }
    }

    /// Peers whose data for this step is still unaccounted for.
    fn unaccounted(&self, chaos_armed: bool, k: usize) -> Vec<u32> {
        (0..k)
            .filter(|&p| {
                if chaos_armed {
                    !matches!(self.exp[p], Some(e) if self.got[p] >= e)
                } else {
                    !self.done_from[p]
                }
            })
            .map(|p| p as u32)
            .collect()
    }
}

/// Per-step send-side bookkeeping of one rank.
struct StepSend {
    sent_to: Vec<u64>,
    halo_sent: Vec<u64>,
    shipments_sent: Vec<u64>,
    halo_msgs: u64,
    done_msgs: u64,
}

impl StepSend {
    fn new(k: usize) -> Self {
        Self {
            sent_to: vec![0; k],
            halo_sent: vec![0; k],
            shipments_sent: vec![0; k],
            halo_msgs: 0,
            done_msgs: 0,
        }
    }
}

/// Receive-side state of the batch-prologue migrate stage (DESIGN.md
/// §6f): which peers still owe this rank a [`Msg::Migrate`], and the
/// node list each must carry under the accepted plan. Receivers know
/// both statically from the plan, so the stage needs no `Done` trailer
/// and no sequence space — one message per non-empty plan row.
struct MigrateRecv {
    /// Expected node list per peer; `None` once received (or never owed).
    expect: Vec<Option<Vec<u32>>>,
    /// Peers whose stage has not arrived yet.
    pending: usize,
    /// Received stages that disagreed with the plan row (must be 0;
    /// folded into step 0's `ghost_mismatches` so the driver's commit
    /// assertion catches any splice bug loudly).
    mismatches: usize,
    /// Node ids received across all stages.
    nodes_received: u64,
}

impl MigrateRecv {
    /// No migrate stage in this batch: nothing expected, strays ignored.
    fn idle() -> Self {
        Self { expect: Vec::new(), pending: 0, mismatches: 0, nodes_received: 0 }
    }

    /// Arms rank `r`'s expectations: one stage per peer whose plan row
    /// toward `r` is non-empty.
    fn arm(plan: &MigrationPlan, r: usize, k: usize) -> Self {
        let mut expect: Vec<Option<Vec<u32>>> = vec![None; k];
        let mut pending = 0usize;
        for (src, slot) in expect.iter_mut().enumerate() {
            if src == r {
                continue;
            }
            let row = &plan.moves[src * k + r];
            if !row.is_empty() {
                *slot = Some(row.clone());
                pending += 1;
            }
        }
        Self { expect, pending, mismatches: 0, nodes_received: 0 }
    }

    /// Folds one received stage in. Duplicates and unexpected senders
    /// are dropped — the plan is authoritative about who owes what.
    fn accept(&mut self, from: usize, nodes: &[u32]) {
        let Some(want) = self.expect.get_mut(from).and_then(Option::take) else { return };
        self.pending -= 1;
        self.nodes_received += nodes.len() as u64;
        if want.as_slice() != nodes {
            self.mismatches += 1;
        }
    }

    /// Peers whose stage never arrived.
    fn unaccounted(&self) -> Vec<u32> {
        self.expect.iter().enumerate().filter(|(_, e)| e.is_some()).map(|(p, _)| p as u32).collect()
    }
}

/// How one rank ended a batch. Public so a remote worker process can
/// report its rank's outcome back to the driver, which folds all `k` of
/// them with [`collect_batch`] — exactly what the in-process executor
/// does with its joined threads.
#[derive(Debug, Clone, PartialEq)]
pub enum RankBatchOutcome {
    /// Every step drained, searched, and (if any step was chaos-armed)
    /// the batch completion round closed.
    Completed(Vec<RankResult>),
    /// Killed by the fault plan while sending step `done.len()`; the
    /// zombie still finished the steps before its death.
    Dead {
        /// Full results for the steps completed before the kill.
        done: Vec<RankResult>,
    },
    /// Gave up on `dead` peers after exhausting the repair budget at
    /// step `done.len()`; `partial` holds what that step received.
    Lost {
        /// Full results for the steps completed before the stall.
        done: Vec<RankResult>,
        /// Best-effort result for the failed step.
        partial: Option<RankResult>,
        /// The peers declared dead.
        dead: Vec<u32>,
    },
}

/// Streams one step's halo values, element shipments, and `Done`
/// trailers — the exact send sequence of the barrier executor's
/// `run_rank`, with every message tagged `step: s` and sequence numbers
/// restarting per step so injected fates match the barrier schedule
/// message for message. Returns `false` if the fault plan killed the
/// rank mid-step (trailers are all-or-nothing: a dead rank announces
/// nothing).
#[allow(clippy::too_many_arguments)]
fn send_step<F: GlobalFilter<3> + Sync, MB: Mailbox<Msg>>(
    me: u32,
    r: usize,
    s: usize,
    input: &StepInput<'_, F>,
    fault: &FaultInjector,
    mut st: Option<&mut ChaosState>,
    mb: &mut MB,
    stats: &mut StepSend,
) -> bool {
    let rec = &input.recorder;
    let plan = &input.decomposition.ranks[r];
    let mut payload_sends = 0u64;

    {
        let _span = rec.span("exec.halo").attr("rank", me).attr("step", s);
        for (dest, nodes) in &plan.send_halo {
            if fault.should_kill(me, payload_sends) {
                rec.add("fault.killed_ranks", 1);
                return false;
            }
            let dest = *dest as usize;
            let values: Vec<_> = nodes.iter().map(|&n| (n, input.positions[n as usize])).collect();
            stats.halo_sent[dest] += values.len() as u64;
            stats.halo_msgs += 1;
            rec.record("exec.halo_msg_nodes", values.len() as u64);
            let msg = Msg::Halo { from: me, step: s as u32, seq: stats.sent_to[dest], values };
            stats.sent_to[dest] += 1;
            payload_sends += 1;
            match st.as_deref_mut() {
                None => mb.send(dest, msg),
                Some(cs) => chaos_send(cs, mb, fault, rec, me, dest, msg),
            }
        }
    }

    {
        let mut span = rec
            .span("exec.ship")
            .attr("rank", me)
            .attr("step", s)
            .attr("owned", plan.owned_surface.len());
        let mut candidates = Vec::new();
        for &e in &plan.owned_surface {
            let el = &input.elements[e as usize];
            debug_assert_eq!(el.owner, me);
            input.filter.candidate_parts(&el.bbox.inflate(input.tolerance), &mut candidates);
            for &dest in candidates.iter() {
                if dest == me {
                    continue;
                }
                if fault.should_kill(me, payload_sends) {
                    rec.add("fault.killed_ranks", 1);
                    return false;
                }
                let dest = dest as usize;
                stats.shipments_sent[dest] += 1;
                let msg = Msg::Element {
                    from: me,
                    step: s as u32,
                    seq: stats.sent_to[dest],
                    id: e,
                    bbox: el.bbox,
                    body: input.bodies[e as usize],
                };
                stats.sent_to[dest] += 1;
                payload_sends += 1;
                match st.as_deref_mut() {
                    None => mb.send(dest, msg),
                    Some(cs) => chaos_send(cs, mb, fault, rec, me, dest, msg),
                }
            }
        }
        if fault.should_kill(me, payload_sends) {
            rec.add("fault.killed_ranks", 1);
            return false;
        }
        let k = input.decomposition.k;
        if let Some(cs) = st.as_deref_mut() {
            for dest in 0..k {
                if let Some(m) = cs.held[dest].take() {
                    mb.send(dest, m);
                }
            }
        }
        for dest in 0..k {
            if dest != r {
                mb.send(dest, Msg::Done { from: me, step: s as u32, sent: stats.sent_to[dest] });
                stats.done_msgs += 1;
            }
        }
        if let Some(cs) = st {
            for dest in 0..k {
                for m in cs.delayed[dest].drain(..) {
                    mb.send(dest, m);
                }
            }
        }
        span.set_attr("shipped", stats.shipments_sent.iter().sum::<u64>());
    }
    true
}

/// Routes one inbound message into the per-step state tables. Resend
/// requests are only served for steps below `serve_below` (a zombie must
/// not replay the step it died in — the barrier oracle's dead ranks send
/// nothing either).
#[allow(clippy::too_many_arguments)]
fn dispatch<F: GlobalFilter<3> + Sync, MB: Mailbox<Msg>>(
    msg: Msg,
    me: u32,
    steps: &[StepInput<'_, F>],
    chaos: &mut [Option<ChaosState>],
    recv: &mut [StepRecv],
    completed_peers: &mut [bool],
    mig: &mut MigrateRecv,
    mb: &mut MB,
    serve_below: usize,
) {
    let n = steps.len();
    match msg {
        Msg::Halo { from, step, seq, values } => {
            let s = step as usize;
            if s >= n {
                return;
            }
            let rec = &steps[s].recorder;
            let rs = &mut recv[s];
            let fresh = match chaos[s] {
                Some(_) => {
                    if mark_new(&mut rs.seen[from as usize], seq) {
                        rs.got[from as usize] += 1;
                        true
                    } else {
                        rec.add("recovery.dup_dropped", 1);
                        false
                    }
                }
                None => true,
            };
            if fresh {
                for (node, pos) in values {
                    if steps[s].positions[node as usize] != pos {
                        rs.ghost_mismatches += 1;
                    }
                }
            }
        }
        Msg::Element { from, step, seq, id, bbox, body } => {
            let s = step as usize;
            if s >= n {
                return;
            }
            let rec = &steps[s].recorder;
            let rs = &mut recv[s];
            let fresh = match chaos[s] {
                Some(_) => {
                    if mark_new(&mut rs.seen[from as usize], seq) {
                        rs.got[from as usize] += 1;
                        true
                    } else {
                        rec.add("recovery.dup_dropped", 1);
                        false
                    }
                }
                None => true,
            };
            if fresh {
                rs.received.push((id, bbox, body));
            }
        }
        Msg::Done { from, step, sent } => {
            let s = step as usize;
            if s >= n {
                return;
            }
            let f = from as usize;
            let rs = &mut recv[s];
            if chaos[s].is_some() {
                rs.exp[f] = Some(sent);
                if rs.got[f] < sent {
                    steps[s].recorder.add("recovery.resend_requests", 1);
                    let seqs = missing_seqs(&rs.seen[f], sent);
                    mb.send(f, Msg::Resend { from: me, step, seqs });
                }
            } else if !rs.done_from[f] {
                rs.done_from[f] = true;
                rs.done_count += 1;
            }
        }
        Msg::Resend { from, step, seqs } => {
            let s = step as usize;
            if s >= serve_below {
                return;
            }
            if let Some(cs) = chaos.get(s).and_then(|c| c.as_ref()) {
                let f = from as usize;
                for q in seqs {
                    if let Some(m) = cs.history[f].get(q as usize).cloned() {
                        steps[s].recorder.add("recovery.resent", 1);
                        mb.send(f, m);
                    }
                }
            }
        }
        Msg::Complete { from } => {
            completed_peers[from as usize] = true;
        }
        Msg::Migrate { from, nodes, .. } => {
            mig.accept(from as usize, &nodes);
        }
    }
}

/// One rank's whole batch: the event loop over the two cursors.
#[allow(clippy::too_many_arguments)]
fn run_rank_pipelined<F: GlobalFilter<3> + Sync, MB: Mailbox<Msg>>(
    r: usize,
    k: usize,
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
    lookahead: usize,
    migrate: Option<&MigrationPlan>,
    mb: &mut MB,
) -> RankBatchOutcome {
    let me = r as u32;
    let n = steps.len();
    let rec0 = steps[0].recorder.clone();
    rec0.set_lane(me);
    let mut chaos: Vec<Option<ChaosState>> = faults
        .iter()
        .map(|f| if f.is_active() { Some(ChaosState::new(k)) } else { None })
        .collect();
    let mut recv: Vec<StepRecv> = (0..n).map(|_| StepRecv::new(k, r)).collect();
    let mut send: Vec<StepSend> = (0..n).map(|_| StepSend::new(k)).collect();
    let mut results: Vec<RankResult> = Vec::with_capacity(n);
    let mut cache = SearchCache::new();
    let mut completed_peers = vec![false; k];
    completed_peers[r] = true;
    let mut completed = 0usize;
    let mut next_send = 0usize;
    let mut killed: Option<usize> = None;
    let mut retries_left = opts.retries;

    // ---- Migrate prologue (DESIGN.md §6f). ----------------------------
    // An accepted repartition plan is spliced in front of the batch: the
    // rank streams the node ids it surrenders under the already-flipped
    // decomposition, then drains until every stage *it* is owed has
    // arrived — and goes straight into its step-0 sends while stragglers
    // are still migrating; there is no global join. The stage is
    // control-plane: it bypasses fault injection and the payload
    // sequence space, so the chaos fate stream stays bit-identical to
    // the barrier oracle's.
    let mut mig = match migrate {
        Some(plan) if plan.k == k && !steps.is_empty() => {
            let mut span = rec0.span("exec.migrate").attr("rank", me);
            let mut sent = 0u64;
            for dest in 0..k {
                let row = &plan.moves[r * k + dest];
                if dest == r || row.is_empty() {
                    continue;
                }
                sent += row.len() as u64;
                mb.send(dest, Msg::Migrate { from: me, step: 0, nodes: row.clone() });
            }
            rec0.add("exec.migrate.nodes_sent", sent);
            let mut mig = MigrateRecv::arm(plan, r, k);
            let mut patience = opts.retries;
            while mig.pending > 0 {
                match recv_or_idle(&rec0, mb, opts.timeout) {
                    Ok(msg) => dispatch(
                        msg,
                        me,
                        steps,
                        &mut chaos,
                        &mut recv,
                        &mut completed_peers,
                        &mut mig,
                        mb,
                        n,
                    ),
                    Err(RecvTimeoutError::Timeout) if patience > 0 => {
                        patience -= 1;
                        rec0.add("recovery.retries", 1);
                    }
                    Err(_) => {
                        let dead = mig.unaccounted();
                        span.set_attr("stalled_peers", dead.len());
                        return RankBatchOutcome::Lost { done: results, partial: None, dead };
                    }
                }
            }
            rec0.add("exec.migrate.nodes_received", mig.nodes_received);
            span.set_attr("mismatches", mig.mismatches);
            mig
        }
        _ => MigrateRecv::idle(),
    };
    // A stage that disagreed with the plan poisons step 0 the same way a
    // wrong ghost value would — the driver's commit assertion fires.
    if let Some(first) = recv.first_mut() {
        first.ghost_mismatches += mig.mismatches;
    }

    loop {
        // ---- Send while inside the lookahead window. ------------------
        while killed.is_none() && next_send < n && next_send < completed + lookahead {
            let s = next_send;
            let ok =
                send_step(me, r, s, &steps[s], &faults[s], chaos[s].as_mut(), mb, &mut send[s]);
            if !ok {
                killed = Some(s);
                break;
            }
            next_send += 1;
            steps[s]
                .recorder
                .record("exec.overlap.steps_in_flight", (next_send - completed) as u64);
        }

        // ---- Search every step whose inputs have fully arrived. -------
        // A step also needs this rank's *own* sends out before it can
        // complete (`completed < next_send`): peers running ahead — or
        // k = 1, where no inbound is ever pending — must not let the
        // completion cursor overtake the send cursor, or the step would
        // be recorded with its outbound traffic still unsent.
        let cap = killed.unwrap_or(n);
        let mut progressed = false;
        while completed < cap
            && completed < next_send
            && recv[completed].data_complete(chaos[completed].is_some(), k)
        {
            let s = completed;
            let input = &steps[s];
            let rs = &recv[s];
            input.recorder.record("exec.recv_elements", rs.received.len() as u64);
            let plan = &input.decomposition.ranks[r];
            let pairs = {
                let _span = input
                    .recorder
                    .span("exec.search")
                    .attr("rank", me)
                    .attr("step", s)
                    .attr("owned", plan.owned_surface.len())
                    .attr("received", rs.received.len());
                search_rank(plan, input, &rs.received, Some(&mut cache))
            };
            let sd = &send[s];
            results.push(RankResult {
                pairs,
                halo_sent: sd.halo_sent.clone(),
                shipments_sent: sd.shipments_sent.clone(),
                halo_msgs: sd.halo_msgs,
                done_msgs: sd.done_msgs,
                ghost_mismatches: rs.ghost_mismatches,
            });
            completed += 1;
            progressed = true;
            retries_left = opts.retries;
            input.recorder.record("exec.overlap.steps_in_flight", (next_send - completed) as u64);
        }
        if progressed {
            // Completing a step widens the send window; re-check it
            // before blocking on the inbox.
            continue;
        }

        // ---- Batch finished: run the chaos completion round. ----------
        if killed.is_none() && completed == n {
            if chaos.iter().any(|c| c.is_some()) {
                for dest in 0..k {
                    if dest != r {
                        mb.send(dest, Msg::Complete { from: me });
                    }
                }
                while !completed_peers.iter().all(|&c| c) {
                    match recv_or_idle(&rec0, mb, opts.timeout) {
                        Ok(msg) => dispatch(
                            msg,
                            me,
                            steps,
                            &mut chaos,
                            &mut recv,
                            &mut completed_peers,
                            &mut mig,
                            mb,
                            n,
                        ),
                        Err(RecvTimeoutError::Timeout) if retries_left > 0 => {
                            retries_left -= 1;
                            rec0.add("recovery.retries", 1);
                        }
                        Err(_) => {
                            // Data-satisfied but the completion round
                            // stalled: the uncompleted peers are the ones
                            // in trouble, and the last step cannot commit.
                            let dead: Vec<u32> =
                                (0..k).filter(|&p| !completed_peers[p]).map(|p| p as u32).collect();
                            let partial = results.pop();
                            return RankBatchOutcome::Lost { done: results, partial, dead };
                        }
                    }
                }
            }
            return RankBatchOutcome::Completed(results);
        }

        // ---- Zombie: killed and every earlier step is finished. -------
        if killed == Some(completed) {
            // Survivors may still need this rank's history to repair the
            // steps that will commit; serve them until they finish (or
            // declare us dead and hang up).
            let mut patience = opts.retries + 1;
            loop {
                match recv_or_idle(&rec0, mb, opts.timeout) {
                    Ok(msg) => dispatch(
                        msg,
                        me,
                        steps,
                        &mut chaos,
                        &mut recv,
                        &mut completed_peers,
                        &mut mig,
                        mb,
                        completed,
                    ),
                    Err(RecvTimeoutError::Timeout) if patience > 0 => patience -= 1,
                    Err(_) => return RankBatchOutcome::Dead { done: results },
                }
            }
        }

        // ---- Block on the inbox. --------------------------------------
        let serve_below = killed.unwrap_or(n);
        match recv_or_idle(&rec0, mb, opts.timeout) {
            Ok(msg) => dispatch(
                msg,
                me,
                steps,
                &mut chaos,
                &mut recv,
                &mut completed_peers,
                &mut mig,
                mb,
                serve_below,
            ),
            Err(RecvTimeoutError::Closed) => {
                if killed.is_some() {
                    return RankBatchOutcome::Dead { done: results };
                }
                return lose_step(
                    r,
                    k,
                    steps,
                    &chaos,
                    &recv,
                    &send,
                    &completed_peers,
                    completed,
                    results,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                if retries_left == 0 {
                    if killed.is_some() {
                        return RankBatchOutcome::Dead { done: results };
                    }
                    return lose_step(
                        r,
                        k,
                        steps,
                        &chaos,
                        &recv,
                        &send,
                        &completed_peers,
                        completed,
                        results,
                    );
                }
                retries_left -= 1;
                rec0.add("recovery.retries", 1);
                // Repair round: re-request every known gap of every step
                // still in flight.
                for s in completed..next_send {
                    if chaos[s].is_none() {
                        continue;
                    }
                    for p in 0..k {
                        if p == r {
                            continue;
                        }
                        if let Some(e) = recv[s].exp[p] {
                            if recv[s].got[p] < e {
                                steps[s].recorder.add("recovery.resend_requests", 1);
                                let seqs = missing_seqs(&recv[s].seen[p], e);
                                mb.send(p, Msg::Resend { from: me, step: s as u32, seqs });
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Builds the `Lost` outcome for a rank stalled at `completed`: names
/// the unaccounted peers and salvages a best-effort result for the
/// failed step from whatever did arrive (the barrier executor's `Lost`
/// partial, per step).
#[allow(clippy::too_many_arguments)]
fn lose_step<F: GlobalFilter<3> + Sync>(
    r: usize,
    k: usize,
    steps: &[StepInput<'_, F>],
    chaos: &[Option<ChaosState>],
    recv: &[StepRecv],
    send: &[StepSend],
    completed_peers: &[bool],
    completed: usize,
    results: Vec<RankResult>,
) -> RankBatchOutcome {
    let s = completed;
    if s >= steps.len() {
        // Cannot happen (the completion round handles `completed == n`),
        // but stay total: blame the peers that never completed.
        let dead = (0..k).filter(|&p| !completed_peers[p]).map(|p| p as u32).collect();
        return RankBatchOutcome::Lost { done: results, partial: None, dead };
    }
    let mut dead = recv[s].unaccounted(chaos[s].is_some(), k);
    if dead.is_empty() {
        dead = (0..k).filter(|&p| !completed_peers[p]).map(|p| p as u32).collect();
    }
    let input = &steps[s];
    let pairs = search_rank(&input.decomposition.ranks[r], input, &recv[s].received, None);
    let sd = &send[s];
    let partial = RankResult {
        pairs,
        halo_sent: sd.halo_sent.clone(),
        shipments_sent: sd.shipments_sent.clone(),
        halo_msgs: sd.halo_msgs,
        done_msgs: sd.done_msgs,
        ghost_mismatches: recv[s].ghost_mismatches,
    };
    RankBatchOutcome::Lost { done: results, partial: Some(partial), dead }
}

/// One rank's whole batch over any [`Mailbox`] — the entry point a
/// remote worker process uses to run its rank of a batch, with the
/// driver folding the reported [`RankBatchOutcome`]s via
/// [`collect_batch`]. Normalizes an empty `faults` slice to
/// no-injection and derives the lookahead from `opts.schedule`
/// (a barrier schedule degrades to lookahead 1, which still orders by
/// dependency — remote ranks have no global barrier to share).
/// `migrate` is the overlapped-repartition stage spliced in front of
/// the batch, if the driver accepted one (DESIGN.md §6f).
pub fn execute_rank_steps<F: GlobalFilter<3> + Sync, MB: Mailbox<Msg>>(
    r: usize,
    k: usize,
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
    migrate: Option<&MigrationPlan>,
    mb: &mut MB,
) -> RankBatchOutcome {
    let n = steps.len();
    if n == 0 {
        return RankBatchOutcome::Completed(Vec::new());
    }
    let filler: Vec<FaultInjector>;
    let faults: &[FaultInjector] = if faults.len() == n {
        faults
    } else {
        filler = vec![FaultInjector::none(); n];
        &filler
    };
    let lookahead = match opts.schedule {
        Schedule::Pipelined { lookahead } => lookahead.max(1),
        Schedule::Barrier => 1,
    };
    run_rank_pipelined(r, k, steps, faults, opts, lookahead, migrate, mb)
}

/// Executes a batch of steps with default options (pipelined schedule,
/// no fault injection).
pub fn execute_steps<F: GlobalFilter<3> + Sync>(
    steps: &[StepInput<'_, F>],
) -> Result<Vec<StepOutput>, BatchError> {
    execute_steps_with(steps, &[], &ExecOptions::default())
}

/// Executes a batch of steps under `opts`, with an optional per-step
/// fault injector (`faults` must be empty — no injection — or one
/// injector per step).
///
/// With [`Schedule::Pipelined`] the whole batch runs on `k` persistent
/// rank threads with bounded-lookahead overlap (see the module docs);
/// with [`Schedule::Barrier`] — or when the steps disagree on `k`, which
/// a driver batch never does — it degrades to a sequential
/// [`crate::exec::execute_step_with`] loop, the oracle the pipelined
/// schedule is tested bit-identical against.
///
/// Errors carry the committed prefix: [`BatchError::completed`] holds
/// the outputs of every step all ranks finished before the failure, and
/// [`BatchError::error`] is the same [`RuntimeError`] the single-step
/// executor reports for the failed step, so recovery (repartition over
/// survivors, re-execute) is unchanged.
pub fn execute_steps_with<F: GlobalFilter<3> + Sync>(
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
) -> Result<Vec<StepOutput>, BatchError> {
    execute_steps_transport(steps, faults, opts, &InProcess)
}

/// [`execute_steps_with`] over an explicit [`Transport`] — the TCP
/// backend runs the identical rank loops over sockets and must produce
/// bit-identical outputs.
pub fn execute_steps_transport<F: GlobalFilter<3> + Sync, T: Transport>(
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
    transport: &T,
) -> Result<Vec<StepOutput>, BatchError> {
    execute_steps_overlapped(steps, faults, opts, None, transport)
}

/// [`execute_steps_transport`] with an optional overlapped-repartition
/// migrate stage spliced in front of the batch (DESIGN.md §6f).
///
/// The driver has already flipped `node_parts` to the new decomposition
/// when it hands the plan over, so the stage is *executed traffic*, not
/// a state change: each rank streams the node ids it surrenders as
/// [`Msg::Migrate`] messages and drains the stages it is owed before
/// its step-0 sends — with no global join, so a rank whose stage
/// arrives early pipelines straight into the batch. On the barrier
/// fallback (barrier schedule, or steps disagreeing on `k`) the stage
/// is skipped: the decomposition flip already happened driver-side, and
/// a barrier batch has no schedule to splice into.
pub fn execute_steps_overlapped<F: GlobalFilter<3> + Sync, T: Transport>(
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
    migrate: Option<&MigrationPlan>,
    transport: &T,
) -> Result<Vec<StepOutput>, BatchError> {
    let n = steps.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    debug_assert!(
        faults.is_empty() || faults.len() == n,
        "faults must be empty or one injector per step"
    );
    let filler: Vec<FaultInjector>;
    let faults: &[FaultInjector] = if faults.len() == n {
        faults
    } else {
        filler = vec![FaultInjector::none(); n];
        &filler
    };

    let k = steps[0].decomposition.k;
    let uniform = steps.iter().all(|s| s.decomposition.k == k);
    let lookahead = match opts.schedule {
        Schedule::Pipelined { lookahead } if uniform => lookahead.max(1),
        _ => 0,
    };
    if lookahead == 0 {
        return barrier_batch(steps, faults, opts, transport);
    }

    let cfg = opts.mailbox_config(&steps[0].recorder);
    let mailboxes = match transport.connect::<Msg>(k, &cfg) {
        Ok(m) => m,
        Err(e) => {
            return Err(BatchError {
                completed: Vec::new(),
                failed_step: 0,
                error: RuntimeError::from(e),
            })
        }
    };
    let joined: Vec<std::thread::Result<RankBatchOutcome>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (r, mut mb) in mailboxes.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                run_rank_pipelined(r, k, steps, faults, opts, lookahead, migrate, &mut mb)
            }));
        }
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut outcomes = Vec::with_capacity(k);
    for (r, res) in joined.into_iter().enumerate() {
        match res {
            Err(_) => {
                // A panicked rank's results are unrecoverable, so nothing
                // in the batch can be trusted to have all k contributions.
                return Err(BatchError {
                    completed: Vec::new(),
                    failed_step: 0,
                    error: RuntimeError::RankPanicked { rank: r as u32 },
                });
            }
            Ok(o) => outcomes.push(o),
        }
    }
    let recorders: Vec<Recorder> = steps.iter().map(|s| s.recorder.clone()).collect();
    collect_batch(k, &recorders, outcomes)
}

/// Folds the `k` per-rank outcomes of one batch into committed step
/// outputs (or the typed failure), exactly as the in-process executor
/// folds its joined threads — public so the multi-process driver can
/// fold the outcomes its workers report over the control channel.
/// `recorders` holds one recorder per step of the batch (they may all be
/// clones of the same one); committed steps get their traffic counters,
/// the failed step its `recovery.rank_dead` count.
pub fn collect_batch(
    k: usize,
    recorders: &[Recorder],
    outcomes: Vec<RankBatchOutcome>,
) -> Result<Vec<StepOutput>, BatchError> {
    let n = recorders.len();
    let mut killed: Vec<u32> = Vec::new();
    let mut declared: Vec<u32> = Vec::new();
    let mut done: Vec<std::vec::IntoIter<RankResult>> = Vec::with_capacity(k);
    let mut partials: Vec<Option<RankResult>> = Vec::with_capacity(k);
    let mut commit = n;
    for (r, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            RankBatchOutcome::Completed(res) => {
                commit = commit.min(res.len());
                done.push(res.into_iter());
                partials.push(None);
            }
            RankBatchOutcome::Dead { done: res } => {
                killed.push(r as u32);
                commit = commit.min(res.len());
                done.push(res.into_iter());
                partials.push(None);
            }
            RankBatchOutcome::Lost { done: res, partial, dead } => {
                declared.extend(dead);
                commit = commit.min(res.len());
                done.push(res.into_iter());
                partials.push(partial);
            }
        }
    }

    // Commit the prefix every rank finished: these steps aggregate all k
    // ranks, so their outputs are bit-identical to the barrier schedule.
    let mut outputs = Vec::with_capacity(commit);
    for rec in recorders.iter().take(commit) {
        let step_results: Vec<Option<RankResult>> = done.iter_mut().map(|it| it.next()).collect();
        let out = aggregate(k, step_results);
        rec.add("traffic.halo_units", out.traffic.phases.halo_units);
        rec.add("traffic.shipment_units", out.traffic.phases.ship_msgs);
        outputs.push(out);
    }
    if killed.is_empty() && declared.is_empty() {
        return Ok(outputs);
    }

    // Ranks the plan actually killed are authoritative; survivors' timeout
    // verdicts only stand in when no rank observed its own death (same
    // precedence as the barrier executor).
    let mut dead = killed;
    if dead.is_empty() {
        declared.sort_unstable();
        declared.dedup();
        dead = declared;
    }
    dead.sort_unstable();
    dead.dedup();
    // Salvage a partial output for the failed step from whatever each
    // rank has: a rank that progressed past `commit` contributes its full
    // result, a stalled rank its partial, a dead rank nothing.
    let salvage: Vec<Option<RankResult>> = done
        .iter_mut()
        .zip(partials.iter_mut())
        .map(|(it, p)| it.next().or_else(|| p.take()))
        .collect();
    let partial = aggregate(k, salvage);
    recorders[commit].add("recovery.rank_dead", dead.len() as u64);
    Err(BatchError {
        completed: outputs,
        failed_step: commit,
        error: RuntimeError::RankLost { dead, partial: Box::new(partial) },
    })
}

/// The barrier oracle: one [`execute_step_transport`] per step,
/// substituting the per-step injector.
fn barrier_batch<F: GlobalFilter<3> + Sync, T: Transport>(
    steps: &[StepInput<'_, F>],
    faults: &[FaultInjector],
    opts: &ExecOptions,
    transport: &T,
) -> Result<Vec<StepOutput>, BatchError> {
    let mut outputs = Vec::with_capacity(steps.len());
    for (s, input) in steps.iter().enumerate() {
        let step_opts = ExecOptions { fault: faults[s].clone(), ..opts.clone() };
        match execute_step_transport(input, &step_opts, transport) {
            Ok(out) => outputs.push(out),
            Err(error) => {
                return Err(BatchError { completed: outputs, failed_step: s, error });
            }
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, KillSpec};
    use crate::plan::{build_decomposition, Decomposition};
    use cip_contact::{BboxFilter, SurfaceElementInfo};
    use cip_geom::{Aabb, Point};
    use cip_graph::GraphBuilder;
    use cip_telemetry::Recorder;
    use std::time::Duration;

    /// Owned data for an `n_steps`-step batch over a 1D chain of nodes
    /// split across `k` ranks, with the surface boxes drifting a little
    /// each step so every step's traffic differs.
    struct Scenario {
        decomposition: Decomposition,
        positions: Vec<Vec<Point<3>>>,
        elements: Vec<Vec<SurfaceElementInfo<3>>>,
        bodies: Vec<u16>,
        filters: Vec<BboxFilter<3>>,
    }

    fn chain_scenario(k: usize, n_steps: usize) -> Scenario {
        let n = 16usize;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let asg: Vec<u32> = (0..n).map(|v| (v * k / n) as u32).collect();
        let owners = asg.clone();
        let nov: Vec<u32> = (0..n as u32).collect();
        let d = build_decomposition(&g, &nov, &asg, &owners, k);

        let bodies: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let mut positions = Vec::new();
        let mut elements = Vec::new();
        let mut filters = Vec::new();
        for s in 0..n_steps {
            let drift = s as f64 * 0.07;
            let pos: Vec<Point<3>> =
                (0..n).map(|i| Point::new([i as f64 + drift, 0.0, 0.0])).collect();
            let els: Vec<SurfaceElementInfo<3>> = (0..n)
                .map(|i| SurfaceElementInfo {
                    bbox: Aabb::new(
                        Point::new([i as f64 + drift, 0.0, 0.0]),
                        Point::new([i as f64 + drift + 1.0, 1.0, 1.0]),
                    ),
                    owner: asg[i],
                })
                .collect();
            let boxes: Vec<(u32, Aabb<3>)> = els.iter().map(|e| (e.owner, e.bbox)).collect();
            filters.push(BboxFilter::from_boxes(&boxes, k));
            positions.push(pos);
            elements.push(els);
        }
        Scenario { decomposition: d, positions, elements, bodies, filters }
    }

    fn inputs<'a>(sc: &'a Scenario, rec: &Recorder) -> Vec<StepInput<'a, BboxFilter<3>>> {
        (0..sc.positions.len())
            .map(|s| StepInput {
                decomposition: &sc.decomposition,
                positions: &sc.positions[s],
                elements: &sc.elements[s],
                bodies: &sc.bodies,
                filter: &sc.filters[s],
                tolerance: 0.2,
                recorder: rec.clone(),
            })
            .collect()
    }

    fn opts_with(schedule: Schedule) -> ExecOptions {
        ExecOptions {
            timeout: Duration::from_millis(500),
            retries: 2,
            schedule,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn pipelined_batch_is_bit_identical_to_barrier() {
        for k in [1usize, 2, 4] {
            let sc = chain_scenario(k, 5);
            let rec = Recorder::disabled();
            let steps = inputs(&sc, &rec);
            let barrier = execute_steps_with(&steps, &[], &opts_with(Schedule::Barrier))
                .expect("barrier batch executes");
            for lookahead in [1usize, 2, 3] {
                let piped =
                    execute_steps_with(&steps, &[], &opts_with(Schedule::Pipelined { lookahead }))
                        .expect("pipelined batch executes");
                assert_eq!(piped, barrier, "k={k} lookahead={lookahead}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let steps: Vec<StepInput<'_, BboxFilter<3>>> = Vec::new();
        assert!(execute_steps(&steps).expect("empty batch").is_empty());
    }

    #[test]
    fn chaos_batch_matches_barrier_and_repairs_faults() {
        let sc = chain_scenario(2, 4);
        let rec = Recorder::disabled();
        let steps = inputs(&sc, &rec);
        for seed in [7u64, 21, 1337] {
            let base = FaultPlan {
                drop_permille: 200,
                dup_permille: 100,
                delay_permille: 100,
                reorder_permille: 100,
                ..FaultPlan::quiet(seed)
            };
            let faults: Vec<FaultInjector> =
                (0..4).map(|s| FaultInjector::with_plan(base.for_step(s))).collect();
            let barrier = execute_steps_with(&steps, &faults, &opts_with(Schedule::Barrier))
                .expect("barrier chaos batch repairs");
            let piped = execute_steps_with(&steps, &faults, &opts_with(Schedule::pipelined()))
                .expect("pipelined chaos batch repairs");
            assert_eq!(piped, barrier, "seed {seed}");
            for out in &piped {
                assert_eq!(out.ghost_mismatches, 0, "seed {seed}");
            }
        }
    }

    #[test]
    fn kill_mid_batch_commits_the_prefix_and_reports_rank_lost() {
        let sc = chain_scenario(2, 4);
        let rec = Recorder::enabled();
        let steps = inputs(&sc, &rec);
        // Rank 1 dies during step 2's sends; steps 0 and 1 must commit.
        let faults: Vec<FaultInjector> = (0..4)
            .map(|s| {
                if s == 2 {
                    FaultInjector::with_plan(FaultPlan {
                        kill: Some(KillSpec { rank: 1, after_sends: 0 }),
                        ..FaultPlan::quiet(5)
                    })
                } else {
                    FaultInjector::none()
                }
            })
            .collect();
        let opts = ExecOptions {
            timeout: Duration::from_millis(100),
            retries: 1,
            schedule: Schedule::pipelined(),
            ..ExecOptions::default()
        };
        let err = execute_steps_with(&steps, &faults, &opts)
            .expect_err("a killed rank must fail the batch");
        assert_eq!(err.failed_step, 2);
        assert_eq!(err.completed.len(), 2);
        match &err.error {
            RuntimeError::RankLost { dead, partial } => {
                assert_eq!(dead, &vec![1]);
                assert_eq!(partial.traffic.sent_by(1), (0, 0), "dead rank contributes nothing");
            }
            other => panic!("expected RankLost, got {other}"),
        }
        // The committed steps match a clean barrier run of the same prefix.
        let clean = execute_steps_with(&steps[..2], &[], &opts_with(Schedule::Barrier))
            .expect("clean prefix executes");
        assert_eq!(err.completed, clean);
        assert_eq!(rec.counter_value("fault.killed_ranks"), 1);
        assert_eq!(rec.counter_value("recovery.rank_dead"), 1);
    }

    #[test]
    fn overlap_gauge_and_idle_spans_are_recorded() {
        let sc = chain_scenario(2, 4);
        let rec = Recorder::enabled();
        let steps = inputs(&sc, &rec);
        let out = execute_steps_with(&steps, &[], &opts_with(Schedule::pipelined()))
            .expect("pipelined batch executes");
        assert_eq!(out.len(), 4);
        let summary = rec.summary().expect("recorder is enabled");
        let gauge =
            summary.histogram("exec.overlap.steps_in_flight").expect("overlap gauge recorded");
        assert!(gauge.count >= 8, "one sample per send and per completion");
        // Counters mirror the per-step traffic logs.
        let halo: u64 = out.iter().map(|o| o.traffic.total_halo()).sum();
        assert_eq!(rec.counter_value("traffic.halo_units"), halo);
    }

    #[test]
    fn migrate_prologue_is_traffic_neutral_and_counted() {
        let sc = chain_scenario(2, 3);
        let quiet = Recorder::disabled();
        let steps = inputs(&sc, &quiet);
        let plain = execute_steps_with(&steps, &[], &opts_with(Schedule::pipelined()))
            .expect("plain batch executes");
        // Rank 0 surrenders nodes 3 and 4, rank 1 surrenders node 7: the
        // stage is executed, counted — and invisible in the TrafficLog.
        let plan = MigrationPlan { k: 2, moves: vec![vec![], vec![3, 4], vec![7], vec![]] };
        let rec = Recorder::enabled();
        let steps = inputs(&sc, &rec);
        let spliced = execute_steps_overlapped(
            &steps,
            &[],
            &opts_with(Schedule::pipelined()),
            Some(&plan),
            &InProcess,
        )
        .expect("spliced batch executes");
        assert_eq!(spliced, plain, "the migrate stage must not perturb step outputs");
        assert_eq!(rec.counter_value("exec.migrate.nodes_sent"), 3);
        assert_eq!(rec.counter_value("exec.migrate.nodes_received"), 3);
        let summary = rec.summary().expect("recorder is enabled");
        let span = summary.span("exec.migrate").expect("migrate span recorded");
        assert_eq!(span.count, 2, "one migrate span per rank");
    }

    #[test]
    fn migrate_prologue_rides_chaos_batches_unchanged() {
        let sc = chain_scenario(4, 3);
        let fault = |seed: u64| {
            FaultInjector::with_plan(FaultPlan {
                drop_permille: 150,
                dup_permille: 80,
                delay_permille: 80,
                reorder_permille: 80,
                ..FaultPlan::quiet(seed)
            })
        };
        let faults: Vec<FaultInjector> = (0..3).map(|s| fault(11 + s)).collect();
        let quiet = Recorder::disabled();
        let steps = inputs(&sc, &quiet);
        let plain = execute_steps_with(&steps, &faults, &opts_with(Schedule::pipelined()))
            .expect("chaotic batch converges");
        // The stage bypasses injection entirely, so the fate stream — and
        // with it every repaired payload — is unchanged.
        let plan = MigrationPlan {
            k: 4,
            moves: (0..16).map(|i| if i == 1 { vec![2, 3] } else { vec![] }).collect(),
        };
        let steps = inputs(&sc, &quiet);
        let spliced = execute_steps_overlapped(
            &steps,
            &faults,
            &opts_with(Schedule::pipelined()),
            Some(&plan),
            &InProcess,
        )
        .expect("chaotic spliced batch converges");
        assert_eq!(spliced, plain);
    }

    #[test]
    fn mismatched_rank_counts_fall_back_to_the_barrier_loop() {
        let a = chain_scenario(2, 1);
        let b = chain_scenario(4, 1);
        let rec = Recorder::disabled();
        let mut steps = inputs(&a, &rec);
        steps.extend(inputs(&b, &rec));
        let out = execute_steps_with(&steps, &[], &opts_with(Schedule::pipelined()))
            .expect("mixed-k batch executes via the barrier fallback");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].traffic.k, 2);
        assert_eq!(out[1].traffic.k, 4);
    }
}
