//! Running batches over a persistent, process-spanning mesh.
//!
//! The in-process executors build a fresh set of mailboxes per batch, so
//! a message can never leak from one batch into the next. A worker
//! process cannot afford that: its TCP mesh outlives every batch, and a
//! frame still in flight when a batch fails (a resend answered late, a
//! halo a dying rank managed to push) would otherwise be delivered into
//! the *next* batch and corrupt it.
//!
//! [`SteppedMailbox`] solves this by tagging every step-carrying message
//! with a driver-assigned **epoch base**: batch-local step `s` travels
//! as `base + s`, and the receive side drops anything tagged below the
//! current base before handing it to the executor (which already ignores
//! steps at or past the batch length). As long as the driver hands out
//! strictly increasing, non-overlapping base ranges — `base` must grow
//! by at least the *attempted* length of the previous batch, committed
//! or not — a stale frame can never alias into a live step.
//!
//! The wrapper also maps the executor's *live* rank space onto the
//! transport's fixed peer space. After a rank loss the survivors are
//! relabeled `0..live_k`, but the mesh still addresses the original
//! worker processes; `route[live]` names the transport peer that now
//! plays rank `live`. Incoming `from` fields need no translation — the
//! sender already writes its own live rank into every message.
//!
//! [`Mailbox::close_outgoing`] is a no-op: the executor calls it at the
//! end of every batch, but the mesh must stay open for the next one.

use crate::exec::Msg;
use cip_transport::{Mailbox, RecvTimeoutError, TransportStats, TryRecvError};
use std::time::{Duration, Instant};

/// A per-batch view over a persistent mailbox: epoch-tags outgoing
/// steps, drops stale inbound frames, and routes live ranks to
/// transport peers. See the module docs for the staleness argument.
pub struct SteppedMailbox<'a, MB> {
    inner: &'a mut MB,
    base: u32,
    route: &'a [u32],
}

impl<'a, MB: Mailbox<Msg>> SteppedMailbox<'a, MB> {
    /// Wrap `inner` for one batch. `base` is this batch's epoch tag;
    /// `route[live_rank]` is the transport peer playing that rank (use
    /// an identity slice when no rank has been lost).
    pub fn new(inner: &'a mut MB, base: u32, route: &'a [u32]) -> Self {
        Self { inner, base, route }
    }

    /// Re-tag an outgoing message from batch-local to global steps.
    fn lift(&self, msg: &mut Msg) {
        match msg {
            Msg::Halo { step, .. }
            | Msg::Element { step, .. }
            | Msg::Done { step, .. }
            | Msg::Resend { step, .. }
            | Msg::Migrate { step, .. } => *step += self.base,
            Msg::Complete { .. } => {}
        }
    }

    /// Map an inbound message back to batch-local steps; `None` means
    /// the frame belongs to an earlier epoch and must be dropped.
    fn lower(&self, mut msg: Msg) -> Option<Msg> {
        match &mut msg {
            Msg::Halo { step, .. }
            | Msg::Element { step, .. }
            | Msg::Done { step, .. }
            | Msg::Resend { step, .. }
            | Msg::Migrate { step, .. } => {
                if *step < self.base {
                    return None;
                }
                *step -= self.base;
            }
            Msg::Complete { .. } => {}
        }
        Some(msg)
    }
}

impl<MB: Mailbox<Msg>> Mailbox<Msg> for SteppedMailbox<'_, MB> {
    fn send(&mut self, to: usize, mut msg: Msg) {
        self.lift(&mut msg);
        // An unrouted rank cannot happen in a well-formed batch; treat
        // it as a dead peer (silent drop) rather than misdelivering.
        let Some(&peer) = self.route.get(to) else { return };
        self.inner.send(peer as usize, msg);
    }

    fn try_recv(&mut self) -> Result<Msg, TryRecvError> {
        loop {
            let msg = self.inner.try_recv()?;
            if let Some(m) = self.lower(msg) {
                return Ok(m);
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Msg, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let msg = self.inner.recv_timeout(left)?;
            if let Some(m) = self.lower(msg) {
                return Ok(m);
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    // Deliberately NOT closing the inner lanes: the mesh outlives the
    // batch. The default no-op close_outgoing is the behavior we want.

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_transport::{InProcess, MailboxConfig, Transport};

    fn mesh(k: usize) -> Vec<impl Mailbox<Msg>> {
        InProcess.connect::<Msg>(k, &MailboxConfig::default()).expect("in-process mesh")
    }

    #[test]
    fn steps_are_lifted_and_lowered_by_the_base() {
        let mut mbs = mesh(2);
        let (a, b) = mbs.split_at_mut(1);
        let route = [0u32, 1];
        let mut tx = SteppedMailbox::new(&mut a[0], 100, &route);
        tx.send(1, Msg::Done { from: 0, step: 3, sent: 5 });
        // On the wire the step is global...
        let raw = b[0].try_recv().expect("delivered");
        assert_eq!(raw, Msg::Done { from: 0, step: 103, sent: 5 });
        // ...and a wrapped receiver sees it batch-local again.
        let mut tx2 = SteppedMailbox::new(&mut a[0], 100, &route);
        tx2.send(1, Msg::Done { from: 0, step: 3, sent: 5 });
        let mut rx = SteppedMailbox::new(&mut b[0], 100, &route);
        let msg = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(msg, Msg::Done { from: 0, step: 3, sent: 5 });
    }

    #[test]
    fn stale_epochs_are_dropped_completes_pass() {
        let mut mbs = mesh(2);
        let (a, b) = mbs.split_at_mut(1);
        // A frame from epoch 40 arrives while the receiver is in epoch
        // 200: dropped. A Complete and a current-epoch frame pass.
        a[0].send(1, Msg::Done { from: 0, step: 40, sent: 1 });
        a[0].send(1, Msg::Complete { from: 0 });
        a[0].send(1, Msg::Done { from: 0, step: 207, sent: 2 });
        let route = [0u32, 1];
        let mut rx = SteppedMailbox::new(&mut b[0], 200, &route);
        assert_eq!(rx.try_recv(), Ok(Msg::Complete { from: 0 }));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(Msg::Done { from: 0, step: 7, sent: 2 })
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn migrate_stages_are_epoch_fenced_like_payload_steps() {
        let mut mbs = mesh(2);
        let (a, b) = mbs.split_at_mut(1);
        let route = [0u32, 1];
        // A migrate stage from a pre-recovery epoch must be dropped; the
        // current epoch's stage passes and lowers to batch-local step 0.
        a[0].send(1, Msg::Migrate { from: 0, step: 40, nodes: vec![7] });
        let mut tx = SteppedMailbox::new(&mut a[0], 200, &route);
        tx.send(1, Msg::Migrate { from: 0, step: 0, nodes: vec![8, 9] });
        let mut rx = SteppedMailbox::new(&mut b[0], 200, &route);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(Msg::Migrate { from: 0, step: 0, nodes: vec![8, 9] })
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn routes_live_ranks_to_surviving_peers() {
        // 3-peer mesh, peer 1 lost: live rank 1 is peer 2.
        let mut mbs = mesh(3);
        let route = [0u32, 2];
        let (a, rest) = mbs.split_at_mut(1);
        let mut tx = SteppedMailbox::new(&mut a[0], 0, &route);
        tx.send(1, Msg::Complete { from: 0 });
        // Out-of-route live ranks drop silently instead of misrouting.
        tx.send(5, Msg::Complete { from: 0 });
        assert_eq!(rest[1].try_recv(), Ok(Msg::Complete { from: 0 }));
        assert_eq!(rest[0].try_recv(), Err(TryRecvError::Empty));
        assert_eq!(rest[1].try_recv(), Err(TryRecvError::Empty));
    }
}
