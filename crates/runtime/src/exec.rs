//! The threaded step executor.
//!
//! One OS thread per rank, one crossbeam channel per rank, no shared
//! mutable state: ranks exchange halo values and surface elements as
//! explicit messages, then run their local contact search. Because the
//! element messages carry everything the receiver needs (bounding box,
//! owner, body), the halo and shipment phases need no barrier — each rank
//! streams all its sends, then drains its inbox until every peer's `Done`
//! marker has arrived.

use crate::plan::Decomposition;
use cip_contact::{find_contact_pairs, ContactPair, GlobalFilter, SurfaceElementInfo};
use cip_geom::{Aabb, Point};
use cip_telemetry::Recorder;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Inter-rank message.
enum Msg {
    /// Halo exchange: updated positions of nodes the receiver ghosts.
    Halo {
        /// Sending rank.
        from: u32,
        /// `(global node id, position)` pairs.
        values: Vec<(u32, Point<3>)>,
    },
    /// A surface element shipped for contact search.
    Element {
        /// Sending rank (the element's owner).
        from: u32,
        /// Global element index.
        id: u32,
        /// Bounding box at the current configuration.
        bbox: Aabb<3>,
        /// Body id (local search only pairs different bodies).
        body: u16,
    },
    /// The sender has finished all sends for this step.
    Done(u32),
}

/// Message counts per communication phase of one executed step.
///
/// `halo_units` counts the node values *inside* halo messages (the same
/// units as [`TrafficLog::total_halo`]); everything else counts messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// Halo messages sent (one per `(src, dst)` pair with a non-empty
    /// send-halo list).
    pub halo_msgs: u64,
    /// Node values carried inside halo messages.
    pub halo_units: u64,
    /// Element-shipment messages (one element each).
    pub ship_msgs: u64,
    /// End-of-step `Done` markers (always `k * (k - 1)`).
    pub done_msgs: u64,
}

/// Measured traffic of one executed step (row-major `k x k` matrices,
/// `[from * k + to]`).
#[derive(Debug, Clone)]
pub struct TrafficLog {
    /// Number of ranks.
    pub k: usize,
    /// Halo sends per rank pair (node values).
    pub halo: Vec<u64>,
    /// Element shipments per rank pair.
    pub shipments: Vec<u64>,
    /// Per-phase message breakdown. Invariant (asserted in the exec
    /// tests): `phases.halo_units == total_halo()` and
    /// `phases.ship_msgs == total_shipments()`.
    pub phases: PhaseTraffic,
}

impl TrafficLog {
    /// Total halo volume (the executed FEComm).
    pub fn total_halo(&self) -> u64 {
        self.halo.iter().sum()
    }

    /// Total shipments (the executed NRemote).
    pub fn total_shipments(&self) -> u64 {
        self.shipments.iter().sum()
    }

    /// `(halo, shipments)` sent from rank `from` to rank `to`.
    pub fn pair(&self, from: usize, to: usize) -> (u64, u64) {
        let i = from * self.k + to;
        (self.halo[i], self.shipments[i])
    }

    /// `(halo, shipments)` totals sent by `rank` (row sum).
    pub fn sent_by(&self, rank: usize) -> (u64, u64) {
        (0..self.k).map(|to| self.pair(rank, to)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b))
    }

    /// `(halo, shipments)` totals received by `rank` (column sum).
    pub fn received_by(&self, rank: usize) -> (u64, u64) {
        (0..self.k).map(|from| self.pair(from, rank)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b))
    }
}

/// Input of one step.
pub struct StepInput<'a, F: GlobalFilter<3> + Sync> {
    /// The decomposition plan.
    pub decomposition: &'a Decomposition,
    /// New node positions for this step (the physics oracle; indexed by
    /// global node id).
    pub positions: &'a [Point<3>],
    /// All surface elements (bounding boxes at `positions`), indexed by
    /// the ids the plan's `owned_surface` refers to.
    pub elements: &'a [SurfaceElementInfo<3>],
    /// Body id per surface element.
    pub bodies: &'a [u16],
    /// The broadcast global-search filter (every rank holds a reference,
    /// mirroring the tree broadcast in the paper).
    pub filter: &'a F,
    /// Contact capture tolerance.
    pub tolerance: f64,
    /// Telemetry sink. Disabled by default-constructed recorders; when
    /// enabled, every rank thread binds chrome-trace lane `rank` and emits
    /// `exec.halo` / `exec.ship` / `exec.drain` / `exec.search` spans plus
    /// per-message histograms (see DESIGN.md §6).
    pub recorder: Recorder,
}

/// Result of one executed step.
#[derive(Debug)]
pub struct StepOutput {
    /// Cross-body candidate pairs, global element ids, sorted, deduped.
    pub contact_pairs: Vec<ContactPair>,
    /// Measured traffic.
    pub traffic: TrafficLog,
    /// Ghost values whose received position did not match the owner's
    /// (must be 0; anything else is a halo-exchange bug).
    pub ghost_mismatches: usize,
}

/// Executes one contact/impact step across `k` rank threads.
pub fn execute_step<F: GlobalFilter<3> + Sync>(input: &StepInput<'_, F>) -> StepOutput {
    let k = input.decomposition.k;
    let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) = (0..k).map(|_| unbounded()).unzip();

    struct RankResult {
        pairs: Vec<ContactPair>,
        halo_sent: Vec<u64>,      // per destination
        shipments_sent: Vec<u64>, // per destination
        halo_msgs: u64,
        done_msgs: u64,
        ghost_mismatches: usize,
    }

    let results: Vec<RankResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        #[allow(clippy::needless_range_loop)] // r is the rank id
        for r in 0..k {
            let txs = txs.clone();
            let rx = rxs[r].clone();
            let plan = &input.decomposition.ranks[r];
            let input = &*input;
            handles.push(scope.spawn(move || {
                let me = r as u32;
                let rec = &input.recorder;
                rec.set_lane(me);
                let mut halo_sent = vec![0u64; k];
                let mut shipments_sent = vec![0u64; k];
                let mut halo_msgs = 0u64;
                let mut done_msgs = 0u64;

                // ---- Send halo values. --------------------------------
                {
                    let _span = rec.span("exec.halo").attr("rank", me);
                    for (dest, nodes) in &plan.send_halo {
                        let values: Vec<(u32, Point<3>)> =
                            nodes.iter().map(|&n| (n, input.positions[n as usize])).collect();
                        halo_sent[*dest as usize] += values.len() as u64;
                        halo_msgs += 1;
                        rec.record("exec.halo_msg_nodes", values.len() as u64);
                        txs[*dest as usize]
                            .send(Msg::Halo { from: me, values })
                            .expect("rank channel closed");
                    }
                }

                // ---- Ship owned surface elements per the filter. ------
                {
                    let mut span = rec
                        .span("exec.ship")
                        .attr("rank", me)
                        .attr("owned", plan.owned_surface.len());
                    let mut candidates = Vec::new();
                    for &e in &plan.owned_surface {
                        let el = &input.elements[e as usize];
                        debug_assert_eq!(el.owner, me);
                        input
                            .filter
                            .candidate_parts(&el.bbox.inflate(input.tolerance), &mut candidates);
                        for &dest in candidates.iter() {
                            if dest == me {
                                continue;
                            }
                            shipments_sent[dest as usize] += 1;
                            txs[dest as usize]
                                .send(Msg::Element {
                                    from: me,
                                    id: e,
                                    bbox: el.bbox,
                                    body: input.bodies[e as usize],
                                })
                                .expect("rank channel closed");
                        }
                    }
                    for (dest, tx) in txs.iter().enumerate() {
                        if dest != r {
                            tx.send(Msg::Done(me)).expect("rank channel closed");
                            done_msgs += 1;
                        }
                    }
                    span.set_attr("shipped", shipments_sent.iter().sum::<u64>());
                }
                drop(txs);

                // ---- Drain the inbox until every peer is done. --------
                let mut ghost_mismatches = 0usize;
                let mut received: Vec<(u32, Aabb<3>, u16)> = Vec::new();
                {
                    let mut span = rec.span("exec.drain").attr("rank", me);
                    let mut done = 0usize;
                    while done + 1 < k {
                        match rx.recv().expect("rank channel closed") {
                            Msg::Halo { from, values } => {
                                debug_assert_ne!(from, me, "rank sent halo to itself");
                                for (node, pos) in values {
                                    // The "physics oracle" is global in this
                                    // harness, so a correct halo exchange
                                    // delivers exactly the oracle value.
                                    if input.positions[node as usize] != pos {
                                        ghost_mismatches += 1;
                                    }
                                }
                            }
                            Msg::Element { from, id, bbox, body } => {
                                debug_assert_ne!(from, me, "rank shipped an element to itself");
                                received.push((id, bbox, body));
                            }
                            Msg::Done(from) => {
                                debug_assert_ne!(from, me, "rank signalled itself done");
                                done += 1;
                            }
                        }
                    }
                    span.set_attr("received_elements", received.len());
                    rec.record("exec.recv_elements", received.len() as u64);
                }

                // ---- Local contact search over owned + received. ------
                let _span = rec
                    .span("exec.search")
                    .attr("rank", me)
                    .attr("owned", plan.owned_surface.len())
                    .attr("received", received.len());
                let mut local_ids: Vec<u32> = plan.owned_surface.clone();
                let mut boxes: Vec<Aabb<3>> =
                    plan.owned_surface.iter().map(|&e| input.elements[e as usize].bbox).collect();
                let mut bodies: Vec<u16> =
                    plan.owned_surface.iter().map(|&e| input.bodies[e as usize]).collect();
                for (id, bbox, body) in received {
                    local_ids.push(id);
                    boxes.push(bbox);
                    bodies.push(body);
                }
                let mut pairs: Vec<ContactPair> =
                    find_contact_pairs(&boxes, &bodies, input.tolerance)
                        .into_iter()
                        .map(|p| {
                            let (a, b) = (local_ids[p.a as usize], local_ids[p.b as usize]);
                            if a < b {
                                ContactPair { a, b }
                            } else {
                                ContactPair { a: b, b: a }
                            }
                        })
                        .collect();
                pairs.sort_unstable();
                pairs.dedup();
                RankResult {
                    pairs,
                    halo_sent,
                    shipments_sent,
                    halo_msgs,
                    done_msgs,
                    ghost_mismatches,
                }
            }));
        }
        drop(txs);
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });

    // Aggregate.
    let mut traffic = TrafficLog {
        k,
        halo: vec![0; k * k],
        shipments: vec![0; k * k],
        phases: PhaseTraffic::default(),
    };
    let mut contact_pairs = Vec::new();
    let mut ghost_mismatches = 0;
    for (r, res) in results.into_iter().enumerate() {
        for dest in 0..k {
            traffic.halo[r * k + dest] += res.halo_sent[dest];
            traffic.shipments[r * k + dest] += res.shipments_sent[dest];
        }
        traffic.phases.halo_msgs += res.halo_msgs;
        traffic.phases.done_msgs += res.done_msgs;
        contact_pairs.extend(res.pairs);
        ghost_mismatches += res.ghost_mismatches;
    }
    traffic.phases.halo_units = traffic.total_halo();
    traffic.phases.ship_msgs = traffic.total_shipments();
    contact_pairs.sort_unstable();
    contact_pairs.dedup();
    // Summary counters mirror the TrafficLog exactly (added once at
    // aggregation so `summary.json` totals can never drift from the log).
    input.recorder.add("traffic.halo_units", traffic.phases.halo_units);
    input.recorder.add("traffic.shipment_units", traffic.phases.ship_msgs);
    StepOutput { contact_pairs, traffic, ghost_mismatches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_decomposition;
    use cip_contact::BboxFilter;
    use cip_graph::GraphBuilder;

    /// A 1D chain of nodes split between two ranks, with two rows of
    /// surface boxes facing each other.
    fn two_rank_setup() -> (Decomposition, Vec<Point<3>>, Vec<SurfaceElementInfo<3>>, Vec<u16>) {
        let n = 8;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let asg: Vec<u32> = (0..n as u32).map(|v| u32::from(v >= 4)).collect();
        let positions: Vec<Point<3>> = (0..n).map(|i| Point::new([i as f64, 0.0, 0.0])).collect();

        // Surface elements: one per node, two bodies stacked in z.
        let mut elements = Vec::new();
        let mut bodies = Vec::new();
        for (i, &owner) in asg.iter().enumerate() {
            let x = i as f64;
            elements.push(SurfaceElementInfo {
                bbox: Aabb::new(Point::new([x, 0.0, 0.0]), Point::new([x + 1.0, 1.0, 1.0])),
                owner,
            });
            bodies.push((i % 2) as u16);
        }
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let nov: Vec<u32> = (0..n as u32).collect();
        let d = build_decomposition(&g, &nov, &asg, &owners, 2);
        (d, positions, elements, bodies)
    }

    #[test]
    fn executed_step_matches_serial_search() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        });
        assert_eq!(out.ghost_mismatches, 0);
        let serial = cip_contact::serial_contact_pairs(&elements, &bodies, 0.2);
        assert_eq!(out.contact_pairs, serial);
        assert!(!serial.is_empty());
    }

    #[test]
    fn measured_halo_matches_plan() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        });
        assert_eq!(out.traffic.total_halo(), d.total_halo_volume());
        // The chain boundary: rank 0 sends node 3, rank 1 sends node 4.
        assert_eq!(out.traffic.halo[1], 1);
        assert_eq!(out.traffic.halo[2], 1);
        assert_eq!(out.traffic.pair(0, 1), (1, out.traffic.shipments[1]));
    }

    #[test]
    fn phase_breakdown_sums_to_totals() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        });
        let t = &out.traffic;
        // Per-phase units must agree with the pairwise matrices exactly.
        assert_eq!(t.phases.halo_units, t.total_halo());
        assert_eq!(t.phases.ship_msgs, t.total_shipments());
        assert_eq!(t.phases.done_msgs, (t.k * (t.k - 1)) as u64);
        assert!(t.phases.halo_msgs <= (t.k * (t.k - 1)) as u64);
        // Row/column accessors partition the same totals.
        let sent: (u64, u64) =
            (0..t.k).map(|r| t.sent_by(r)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b));
        let recv: (u64, u64) =
            (0..t.k).map(|r| t.received_by(r)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b));
        assert_eq!(sent, (t.total_halo(), t.total_shipments()));
        assert_eq!(recv, sent);
    }

    #[test]
    fn enabled_recorder_counters_match_traffic_log() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let rec = Recorder::enabled();
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: rec.clone(),
        });
        assert_eq!(rec.counter_value("traffic.halo_units"), out.traffic.total_halo());
        assert_eq!(rec.counter_value("traffic.shipment_units"), out.traffic.total_shipments());
        // Every per-rank phase span landed in the trace.
        let summary = rec.summary().expect("recorder is enabled");
        for name in ["exec.halo", "exec.ship", "exec.drain", "exec.search"] {
            let s = summary.span(name).unwrap_or_else(|| panic!("missing span {name}"));
            assert_eq!(s.count, 2, "{name} once per rank");
        }
    }

    #[test]
    fn single_rank_executes_without_messages() {
        let (_, positions, elements, bodies) = two_rank_setup();
        let n = positions.len();
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let nov: Vec<u32> = (0..n as u32).collect();
        let elements1: Vec<SurfaceElementInfo<3>> =
            elements.iter().map(|e| SurfaceElementInfo { bbox: e.bbox, owner: 0 }).collect();
        let owners = vec![0u32; elements1.len()];
        let d = build_decomposition(&g, &nov, &vec![0; n], &owners, 1);
        let boxes: Vec<(u32, Aabb<3>)> = elements1.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 1);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements1,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        });
        assert_eq!(out.traffic.total_halo(), 0);
        assert_eq!(out.traffic.total_shipments(), 0);
        assert_eq!(out.traffic.phases, PhaseTraffic::default());
        let serial = cip_contact::serial_contact_pairs(&elements1, &bodies, 0.2);
        assert_eq!(out.contact_pairs, serial);
    }
}
