//! The threaded step executor.
//!
//! One OS thread per rank, one crossbeam channel per rank, no shared
//! mutable state: ranks exchange halo values and surface elements as
//! explicit messages, then run their local contact search. Because the
//! element messages carry everything the receiver needs (bounding box,
//! owner, body), the halo and shipment phases need no barrier — each rank
//! streams all its sends, then drains its inbox until every peer's `Done`
//! marker has arrived.
//!
//! The executor is fault tolerant (see DESIGN.md §6c). Every payload
//! message carries a per-`(from, to)` sequence number and every `Done`
//! marker carries the count of payloads the sender first-transmitted to
//! that receiver, so a draining rank can *detect* loss and duplication
//! instead of miscounting, and repair loss with a `Resend` request served
//! from the sender's history buffer. Draining is bounded by
//! [`ExecOptions::timeout`] with [`ExecOptions::retries`] repair rounds;
//! peers still unaccounted for after that are declared dead and the step
//! returns [`RuntimeError::RankLost`] with the survivors' partial output,
//! so the driver can repartition over the survivors and re-execute. All
//! of this lives behind [`FaultInjector`]: with the injector disabled
//! (the default) the send path is byte-for-byte the old streaming loop
//! plus one `Option` discriminant test per message, and the drain loop
//! needs no history, no dedup bitmap, and no completion round.

use crate::fault::{Fate, FaultInjector};
use crate::plan::{Decomposition, RankPlan};
use crate::RuntimeError;
use cip_contact::{
    find_contact_pairs, find_contact_pairs_cached, ContactPair, GlobalFilter, SearchCache,
    SurfaceElementInfo,
};
use cip_geom::{Aabb, Point};
use cip_telemetry::Recorder;
use cip_transport::{InProcess, Mailbox, MailboxConfig, RecvTimeoutError, Transport};
use std::time::Duration;

/// Inter-rank message.
///
/// Every variant carries the batch-local `step` it belongs to, so a
/// pipelined receiver can partition one inbox by step (the barrier
/// executor runs one step at a time and always tags 0). Sequence numbers
/// are per `(from, to, step)`. The type is public because it crosses
/// process boundaries: `cip_transport::Wire` is implemented for it in
/// [`crate::wire`].
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Halo exchange: updated positions of nodes the receiver ghosts.
    Halo {
        /// Sending rank.
        from: u32,
        /// Batch-local step the payload belongs to.
        step: u32,
        /// Position in the sender's payload stream to this receiver.
        seq: u64,
        /// `(global node id, position)` pairs.
        values: Vec<(u32, Point<3>)>,
    },
    /// A surface element shipped for contact search.
    Element {
        /// Sending rank (the element's owner).
        from: u32,
        /// Batch-local step the payload belongs to.
        step: u32,
        /// Position in the sender's payload stream to this receiver.
        seq: u64,
        /// Global element index.
        id: u32,
        /// Bounding box at the current configuration.
        bbox: Aabb<3>,
        /// Body id (local search only pairs different bodies).
        body: u16,
    },
    /// The sender has finished all sends for this step; `sent` is the
    /// number of payload messages it first-transmitted to this receiver,
    /// so the receiver can detect gaps.
    Done {
        /// Sending rank.
        from: u32,
        /// Batch-local step the trailer closes.
        step: u32,
        /// First-transmission payload count for this `(from, to)` pair.
        sent: u64,
    },
    /// Repair request: "re-send me these sequence numbers of yours".
    Resend {
        /// Requesting rank (the destination of the resends).
        from: u32,
        /// Batch-local step whose history to replay from.
        step: u32,
        /// Missing sequence numbers.
        seqs: Vec<u64>,
    },
    /// Chaos-mode barrier: the sender has received everything it expects
    /// and will need no further resends (only used with an armed
    /// [`FaultInjector`]). The barrier executor runs one round per step;
    /// the pipelined executor runs one per batch.
    Complete {
        /// Sending rank.
        from: u32,
    },
    /// Overlapped-repartition hand-off (DESIGN.md §6f): the nodes this
    /// rank surrenders to the receiver under an accepted
    /// [`crate::MigrationPlan`]. Spliced in front of a pipelined batch as
    /// a tagged stage, so the decomposition flip rides the normal message
    /// schedule instead of a driver barrier. Control-plane: never routed
    /// through fault injection and never counted as payload traffic, so
    /// the fate stream stays bit-identical to the barrier oracle.
    Migrate {
        /// Sending rank (the old owner).
        from: u32,
        /// Batch-local step the stage precedes (always 0; epoch-lifted by
        /// the multi-process fence exactly like payload steps).
        step: u32,
        /// Global node ids handed to the receiver, in plan order.
        nodes: Vec<u32>,
    },
}

/// Message counts per communication phase of one executed step.
///
/// `halo_units` counts the node values *inside* halo messages (the same
/// units as [`TrafficLog::total_halo`]); everything else counts messages.
/// Under fault injection the counts cover **first transmissions only** —
/// dropped messages still count (they are logical traffic, repaired by
/// resends), duplicates and resends do not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// Halo messages sent (one per `(src, dst)` pair with a non-empty
    /// send-halo list).
    pub halo_msgs: u64,
    /// Node values carried inside halo messages.
    pub halo_units: u64,
    /// Element-shipment messages (one element each).
    pub ship_msgs: u64,
    /// End-of-step `Done` markers (always `k * (k - 1)`).
    pub done_msgs: u64,
}

/// Measured traffic of one executed step (row-major `k x k` matrices,
/// `[from * k + to]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficLog {
    /// Number of ranks.
    pub k: usize,
    /// Halo sends per rank pair (node values).
    pub halo: Vec<u64>,
    /// Element shipments per rank pair.
    pub shipments: Vec<u64>,
    /// Per-phase message breakdown. Invariant (asserted in the exec
    /// tests): `phases.halo_units == total_halo()` and
    /// `phases.ship_msgs == total_shipments()`.
    pub phases: PhaseTraffic,
}

impl TrafficLog {
    /// Total halo volume (the executed FEComm).
    pub fn total_halo(&self) -> u64 {
        self.halo.iter().sum()
    }

    /// Total shipments (the executed NRemote).
    pub fn total_shipments(&self) -> u64 {
        self.shipments.iter().sum()
    }

    /// `(halo, shipments)` sent from rank `from` to rank `to`.
    pub fn pair(&self, from: usize, to: usize) -> (u64, u64) {
        let i = from * self.k + to;
        (self.halo[i], self.shipments[i])
    }

    /// `(halo, shipments)` totals sent by `rank` (row sum).
    pub fn sent_by(&self, rank: usize) -> (u64, u64) {
        (0..self.k).map(|to| self.pair(rank, to)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b))
    }

    /// `(halo, shipments)` totals received by `rank` (column sum).
    pub fn received_by(&self, rank: usize) -> (u64, u64) {
        (0..self.k).map(|from| self.pair(from, rank)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b))
    }
}

/// Input of one step.
pub struct StepInput<'a, F: GlobalFilter<3> + Sync> {
    /// The decomposition plan.
    pub decomposition: &'a Decomposition,
    /// New node positions for this step (the physics oracle; indexed by
    /// global node id).
    pub positions: &'a [Point<3>],
    /// All surface elements (bounding boxes at `positions`), indexed by
    /// the ids the plan's `owned_surface` refers to.
    pub elements: &'a [SurfaceElementInfo<3>],
    /// Body id per surface element.
    pub bodies: &'a [u16],
    /// The broadcast global-search filter (every rank holds a reference,
    /// mirroring the tree broadcast in the paper).
    pub filter: &'a F,
    /// Contact capture tolerance.
    pub tolerance: f64,
    /// Telemetry sink. Disabled by default-constructed recorders; when
    /// enabled, every rank thread binds chrome-trace lane `rank` and emits
    /// `exec.halo` / `exec.ship` / `exec.drain` / `exec.search` spans plus
    /// per-message histograms (see DESIGN.md §6).
    pub recorder: Recorder,
}

/// Result of one executed step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutput {
    /// Cross-body candidate pairs, global element ids, sorted, deduped.
    pub contact_pairs: Vec<ContactPair>,
    /// Measured traffic.
    pub traffic: TrafficLog,
    /// Ghost values whose received position did not match the owner's
    /// (must be 0; anything else is a halo-exchange bug).
    pub ghost_mismatches: usize,
}

/// How a batch of steps is scheduled across the rank threads (see
/// [`crate::execute_steps_with`] and DESIGN.md §6d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One thread spawn + join per step: every rank waits for every other
    /// rank at every step boundary. The oracle the pipelined schedule is
    /// proven bit-identical against.
    Barrier,
    /// Dependency-driven: rank threads persist across the batch, a rank
    /// starts its step-`s` contact search as soon as *its* inbound halos
    /// and shipments for `s` have drained, and its step `s + lookahead`
    /// sends may begin while stragglers are still finishing step `s`.
    Pipelined {
        /// How many steps a rank's sends may run ahead of its completed
        /// drains (clamped to at least 1; 1–2 is the useful range).
        lookahead: usize,
    },
}

impl Schedule {
    /// The default pipelined schedule (lookahead 2).
    pub fn pipelined() -> Self {
        Self::Pipelined { lookahead: 2 }
    }
}

/// How the driver schedules periodic repartitions relative to the step
/// loop (DESIGN.md §6f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepartitionMode {
    /// Stop-the-world: drain the batch, plan the repartition serially,
    /// apply it, then start the next batch. The bit-identity oracle for
    /// the overlapped path.
    Barrier,
    /// Plan the repartition for the next boundary on a background thread
    /// while the current batch executes, and splice the executed
    /// migration into the next batch as a [`Msg::Migrate`] stage.
    #[default]
    Overlapped,
}

/// Execution policy: drain timeout, repair budget, fault injection,
/// batch schedule.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// How long a draining rank waits for any message before starting a
    /// repair round (and, once `retries` rounds are spent, declaring the
    /// unaccounted peers dead).
    pub timeout: Duration,
    /// Repair rounds before silent peers are declared dead.
    pub retries: u32,
    /// Fault injection plan; [`FaultInjector::none`] by default.
    pub fault: FaultInjector,
    /// How [`crate::execute_steps_with`] schedules a batch of steps
    /// (single-step [`execute_step_with`] is always a barrier). Defaults
    /// to [`Schedule::pipelined`].
    pub schedule: Schedule,
    /// Bounded capacity of every transport lane (clamped to ≥ 1). The
    /// mailbox send path stays deadlock-free at any capacity — see
    /// `cip_transport::mailbox` — so this is purely a memory/backpressure
    /// knob.
    pub mailbox_capacity: usize,
    /// Largest step batch the driver hands the executor at once (clamped
    /// to ≥ 1 by consumers). Batch length and repartition period tune
    /// together: a batch never spans a repartition boundary.
    pub max_batch: usize,
    /// Whether the driver plans repartitions behind the running batch
    /// ([`RepartitionMode::Overlapped`], the default) or at a full stop
    /// ([`RepartitionMode::Barrier`], the oracle).
    pub repartition_mode: RepartitionMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(5),
            retries: 3,
            fault: FaultInjector::none(),
            schedule: Schedule::pipelined(),
            mailbox_capacity: 256,
            max_batch: 8,
            repartition_mode: RepartitionMode::default(),
        }
    }
}

impl ExecOptions {
    /// The transport mailbox configuration these options imply.
    pub(crate) fn mailbox_config(&self, rec: &Recorder) -> MailboxConfig {
        MailboxConfig { capacity: self.mailbox_capacity.max(1), recorder: rec.clone() }
    }

    /// A validating builder over the defaults. Where the executors
    /// silently clamp (`max_batch`, `mailbox_capacity`, lookahead are
    /// all floored at 1 on the hot path), the builder **rejects** the
    /// out-of-range value instead, so every front end — CLI flags, job
    /// server submissions — shares one validation path and one error
    /// message per mistake.
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder { opts: Self::default() }
    }
}

/// Builder for [`ExecOptions`]; see [`ExecOptions::builder`].
#[derive(Debug, Clone)]
pub struct ExecOptionsBuilder {
    opts: ExecOptions,
}

impl ExecOptionsBuilder {
    /// Drain timeout before a repair round starts.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.opts.timeout = timeout;
        self
    }

    /// Repair rounds before silent peers are declared dead.
    pub fn retries(mut self, retries: u32) -> Self {
        self.opts.retries = retries;
        self
    }

    /// Fault injection plan.
    pub fn fault(mut self, fault: FaultInjector) -> Self {
        self.opts.fault = fault;
        self
    }

    /// Batch schedule ([`Schedule::Barrier`] or [`Schedule::Pipelined`]).
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.opts.schedule = schedule;
        self
    }

    /// Bounded capacity of every transport lane.
    pub fn mailbox_capacity(mut self, capacity: usize) -> Self {
        self.opts.mailbox_capacity = capacity;
        self
    }

    /// Largest step batch handed to the executor at once.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.opts.max_batch = max_batch;
        self
    }

    /// Repartition-boundary handling.
    pub fn repartition_mode(mut self, mode: RepartitionMode) -> Self {
        self.opts.repartition_mode = mode;
        self
    }

    /// Validates and produces the options.
    pub fn build(self) -> Result<ExecOptions, crate::ConfigError> {
        let o = &self.opts;
        if o.timeout.is_zero() {
            return Err(crate::ConfigError {
                field: "timeout",
                reason: "drain timeout must be positive".to_string(),
            });
        }
        if o.mailbox_capacity < 1 {
            return Err(crate::ConfigError {
                field: "mailbox_capacity",
                reason: "every transport lane needs capacity >= 1".to_string(),
            });
        }
        if o.max_batch < 1 {
            return Err(crate::ConfigError {
                field: "max_batch",
                reason: "a batch covers at least one step".to_string(),
            });
        }
        if let Schedule::Pipelined { lookahead } = o.schedule {
            if lookahead < 1 {
                return Err(crate::ConfigError {
                    field: "schedule",
                    reason: "pipelined lookahead must be >= 1".to_string(),
                });
            }
        }
        Ok(self.opts)
    }
}

/// Per-destination chaos bookkeeping on the send side. The barrier
/// executor holds one per step; the pipelined executor one per batch
/// step (histories are retained until the batch's completion round, so
/// any step can still be repaired).
pub(crate) struct ChaosState {
    /// Every first-transmitted payload, indexed `[dest][seq]` — the
    /// resend service replays from here, bypassing injection.
    pub(crate) history: Vec<Vec<Msg>>,
    /// One-slot reorder buffer per destination.
    pub(crate) held: Vec<Option<Msg>>,
    /// Messages delayed past the `Done` marker, per destination.
    pub(crate) delayed: Vec<Vec<Msg>>,
}

impl ChaosState {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            history: (0..k).map(|_| Vec::new()).collect(),
            held: (0..k).map(|_| None).collect(),
            delayed: (0..k).map(|_| Vec::new()).collect(),
        }
    }
}

/// Applies the injected fate of one first transmission. The message is
/// recorded in the history buffer first, whatever its fate, so a `Resend`
/// can always repair it.
pub(crate) fn chaos_send<MB: Mailbox<Msg>>(
    st: &mut ChaosState,
    mb: &mut MB,
    fault: &FaultInjector,
    rec: &Recorder,
    me: u32,
    dest: usize,
    msg: Msg,
) {
    let seq = st.history[dest].len() as u64;
    st.history[dest].push(msg.clone());
    let fate = fault.fate(me, dest as u32, seq);
    match fate {
        Fate::Deliver => {
            mb.send(dest, msg);
        }
        Fate::Drop => {
            rec.add("fault.dropped", 1);
        }
        Fate::Duplicate => {
            rec.add("fault.duplicated", 1);
            mb.send(dest, msg.clone());
            mb.send(dest, msg);
        }
        Fate::Delay => {
            rec.add("fault.delayed", 1);
            st.delayed[dest].push(msg);
        }
        Fate::Reorder => {
            rec.add("fault.reordered", 1);
            if st.held[dest].is_none() {
                st.held[dest] = Some(msg);
            } else {
                mb.send(dest, msg);
            }
        }
    }
    // A non-reorder send releases the held predecessor *after* itself —
    // the two messages swap places on the wire.
    if fate != Fate::Reorder {
        if let Some(h) = st.held[dest].take() {
            mb.send(dest, h);
        }
    }
}

/// Grows-and-marks `seq` in a per-peer dedup bitmap; returns `false` if
/// it was already seen (a duplicate or an already-repaired resend).
pub(crate) fn mark_new(seen: &mut Vec<bool>, seq: u64) -> bool {
    let i = seq as usize;
    if seen.len() <= i {
        seen.resize(i + 1, false);
    }
    if seen[i] {
        false
    } else {
        seen[i] = true;
        true
    }
}

/// Sequence numbers in `0..sent` not yet marked in `seen`.
pub(crate) fn missing_seqs(seen: &[bool], sent: u64) -> Vec<u64> {
    (0..sent).filter(|&s| !seen.get(s as usize).copied().unwrap_or(false)).collect()
}

/// Receives one message, charging any actual blocking wait to an
/// `exec.idle` span. A non-empty inbox costs one `try_recv` and no span,
/// so the gauge measures true straggler-induced idleness, not polling.
pub(crate) fn recv_or_idle<MB: Mailbox<Msg>>(
    rec: &Recorder,
    mb: &mut MB,
    timeout: Duration,
) -> Result<Msg, RecvTimeoutError> {
    use cip_transport::TryRecvError;
    match mb.try_recv() {
        Ok(m) => Ok(m),
        Err(TryRecvError::Closed) => Err(RecvTimeoutError::Closed),
        Err(TryRecvError::Empty) => {
            let _idle = rec.span("exec.idle");
            mb.recv_timeout(timeout)
        }
    }
}

/// What one rank thread produced (for one step). Public so a remote
/// worker process can ship it back to the driver for aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct RankResult {
    /// Locally found contact pairs (global ids, sorted, deduped).
    pub pairs: Vec<ContactPair>,
    /// Halo node values sent, per destination.
    pub halo_sent: Vec<u64>,
    /// Elements shipped, per destination.
    pub shipments_sent: Vec<u64>,
    /// Halo messages sent.
    pub halo_msgs: u64,
    /// `Done` trailers sent.
    pub done_msgs: u64,
    /// Received ghost values that disagreed with the oracle (must be 0).
    pub ghost_mismatches: usize,
}

/// How one rank thread ended.
enum RankOutcome {
    /// Full protocol run: all peers accounted for.
    Completed(RankResult),
    /// Killed by the fault plan mid-step; produced nothing.
    Dead,
    /// Timed out on `dead` peers after exhausting the repair budget;
    /// `partial` covers what was sent and received before giving up.
    Lost { partial: RankResult, dead: Vec<u32> },
}

/// One rank's full step: stream sends, drain with repair, local search.
fn run_rank<F: GlobalFilter<3> + Sync, MB: Mailbox<Msg>>(
    r: usize,
    k: usize,
    plan: &RankPlan,
    input: &StepInput<'_, F>,
    opts: &ExecOptions,
    mb: &mut MB,
) -> RankOutcome {
    let me = r as u32;
    let rec = &input.recorder;
    rec.set_lane(me);
    let fault = &opts.fault;
    let mut st = if fault.is_active() { Some(ChaosState::new(k)) } else { None };
    let mut halo_sent = vec![0u64; k];
    let mut shipments_sent = vec![0u64; k];
    let mut sent_to = vec![0u64; k];
    let mut halo_msgs = 0u64;
    let mut done_msgs = 0u64;
    let mut payload_sends = 0u64;

    // ---- Send halo values. --------------------------------------------
    {
        let _span = rec.span("exec.halo").attr("rank", me);
        for (dest, nodes) in &plan.send_halo {
            if fault.should_kill(me, payload_sends) {
                rec.add("fault.killed_ranks", 1);
                return RankOutcome::Dead;
            }
            let dest = *dest as usize;
            let values: Vec<(u32, Point<3>)> =
                nodes.iter().map(|&n| (n, input.positions[n as usize])).collect();
            halo_sent[dest] += values.len() as u64;
            halo_msgs += 1;
            rec.record("exec.halo_msg_nodes", values.len() as u64);
            let msg = Msg::Halo { from: me, step: 0, seq: sent_to[dest], values };
            sent_to[dest] += 1;
            payload_sends += 1;
            match st.as_mut() {
                None => mb.send(dest, msg),
                Some(st) => chaos_send(st, mb, fault, rec, me, dest, msg),
            }
        }
    }

    // ---- Ship owned surface elements per the filter. ------------------
    {
        let mut span =
            rec.span("exec.ship").attr("rank", me).attr("owned", plan.owned_surface.len());
        let mut candidates = Vec::new();
        for &e in &plan.owned_surface {
            let el = &input.elements[e as usize];
            debug_assert_eq!(el.owner, me);
            input.filter.candidate_parts(&el.bbox.inflate(input.tolerance), &mut candidates);
            for &dest in candidates.iter() {
                if dest == me {
                    continue;
                }
                if fault.should_kill(me, payload_sends) {
                    rec.add("fault.killed_ranks", 1);
                    return RankOutcome::Dead;
                }
                let dest = dest as usize;
                shipments_sent[dest] += 1;
                let msg = Msg::Element {
                    from: me,
                    step: 0,
                    seq: sent_to[dest],
                    id: e,
                    bbox: el.bbox,
                    body: input.bodies[e as usize],
                };
                sent_to[dest] += 1;
                payload_sends += 1;
                match st.as_mut() {
                    None => mb.send(dest, msg),
                    Some(st) => chaos_send(st, mb, fault, rec, me, dest, msg),
                }
            }
        }
        // A kill scheduled past the rank's last payload fires here, so
        // the `Done` markers go out all-or-nothing: survivors always see
        // a dead rank as "no trailer", never a half-announced one.
        if fault.should_kill(me, payload_sends) {
            rec.add("fault.killed_ranks", 1);
            return RankOutcome::Dead;
        }
        if let Some(st) = st.as_mut() {
            for dest in 0..k {
                if let Some(m) = st.held[dest].take() {
                    mb.send(dest, m);
                }
            }
        }
        for (dest, &sent) in sent_to.iter().enumerate() {
            if dest != r {
                mb.send(dest, Msg::Done { from: me, step: 0, sent });
                done_msgs += 1;
            }
        }
        // Delayed messages go out *after* the trailers: the receiver sees
        // the gap first, then the late arrival (or its requested resend,
        // whichever lands first — the dedup bitmap absorbs the other).
        if let Some(st) = st.as_mut() {
            for dest in 0..k {
                for m in st.delayed[dest].drain(..) {
                    mb.send(dest, m);
                }
            }
        }
        span.set_attr("shipped", shipments_sent.iter().sum::<u64>());
    }

    // ---- Drain the inbox until every peer is accounted for. -----------
    let mut ghost_mismatches = 0usize;
    let mut received: Vec<(u32, Aabb<3>, u16)> = Vec::new();
    let mut lost: Option<Vec<u32>> = None;
    {
        let mut span = rec.span("exec.drain").attr("rank", me);
        match st.as_mut() {
            None => {
                // Fast path: nothing is ever dropped, so payloads precede
                // their sender's `Done` (per-sender FIFO) and a silent
                // peer is a dead peer — no repair round can help.
                let mut done_from = vec![false; k];
                done_from[r] = true;
                let mut done = 1usize;
                while done < k {
                    match recv_or_idle(rec, mb, opts.timeout) {
                        Ok(Msg::Halo { from, values, .. }) => {
                            debug_assert_ne!(from, me, "rank sent halo to itself");
                            for (node, pos) in values {
                                // The "physics oracle" is global in this
                                // harness, so a correct halo exchange
                                // delivers exactly the oracle value.
                                if input.positions[node as usize] != pos {
                                    ghost_mismatches += 1;
                                }
                            }
                        }
                        Ok(Msg::Element { from, id, bbox, body, .. }) => {
                            debug_assert_ne!(from, me, "rank shipped an element to itself");
                            received.push((id, bbox, body));
                        }
                        Ok(Msg::Done { from, .. }) => {
                            debug_assert_ne!(from, me, "rank signalled itself done");
                            let from = from as usize;
                            if !done_from[from] {
                                done_from[from] = true;
                                done += 1;
                            }
                        }
                        // A barrier step has no migrate stage to serve
                        // (DESIGN.md §6f): the decomposition flip
                        // already happened driver-side.
                        Ok(Msg::Resend { .. } | Msg::Complete { .. } | Msg::Migrate { .. }) => {}
                        Err(_) => {
                            let dead: Vec<u32> =
                                (0..k).filter(|&p| !done_from[p]).map(|p| p as u32).collect();
                            lost = Some(dead);
                            break;
                        }
                    }
                }
            }
            Some(st) => {
                // Chaos path: count trailers + sequence gaps + resend
                // repair, closed by a completion round so no rank leaves
                // while a peer might still need its history.
                let mut exp: Vec<Option<u64>> = vec![None; k];
                let mut got = vec![0u64; k];
                let mut seen: Vec<Vec<bool>> = vec![Vec::new(); k];
                let mut completed = vec![false; k];
                exp[r] = Some(0);
                completed[r] = true;
                let mut complete_sent = false;
                let mut retries_left = opts.retries;
                loop {
                    let data_ok = (0..k).all(|p| matches!(exp[p], Some(e) if got[p] >= e));
                    if data_ok && !complete_sent {
                        for dest in 0..k {
                            if dest != r {
                                mb.send(dest, Msg::Complete { from: me });
                            }
                        }
                        complete_sent = true;
                    }
                    if complete_sent && completed.iter().all(|&c| c) {
                        break;
                    }
                    match recv_or_idle(rec, mb, opts.timeout) {
                        Ok(Msg::Halo { from, seq, values, .. }) => {
                            if mark_new(&mut seen[from as usize], seq) {
                                got[from as usize] += 1;
                                for (node, pos) in values {
                                    if input.positions[node as usize] != pos {
                                        ghost_mismatches += 1;
                                    }
                                }
                            } else {
                                rec.add("recovery.dup_dropped", 1);
                            }
                        }
                        Ok(Msg::Element { from, seq, id, bbox, body, .. }) => {
                            if mark_new(&mut seen[from as usize], seq) {
                                got[from as usize] += 1;
                                received.push((id, bbox, body));
                            } else {
                                rec.add("recovery.dup_dropped", 1);
                            }
                        }
                        Ok(Msg::Done { from, sent, .. }) => {
                            let f = from as usize;
                            exp[f] = Some(sent);
                            if got[f] < sent {
                                rec.add("recovery.resend_requests", 1);
                                let seqs = missing_seqs(&seen[f], sent);
                                mb.send(f, Msg::Resend { from: me, step: 0, seqs });
                            }
                        }
                        Ok(Msg::Resend { from, seqs, .. }) => {
                            let f = from as usize;
                            for s in seqs {
                                if let Some(m) = st.history[f].get(s as usize).cloned() {
                                    rec.add("recovery.resent", 1);
                                    mb.send(f, m);
                                }
                            }
                        }
                        Ok(Msg::Complete { from }) => {
                            completed[from as usize] = true;
                        }
                        // Control-plane migrate stages are outside the
                        // payload sequence space and a barrier step has
                        // no stage to serve (DESIGN.md §6f).
                        Ok(Msg::Migrate { .. }) => {}
                        Err(_) => {
                            if retries_left == 0 {
                                let mut dead: Vec<u32> = (0..k)
                                    .filter(|&p| !matches!(exp[p], Some(e) if got[p] >= e))
                                    .map(|p| p as u32)
                                    .collect();
                                if dead.is_empty() {
                                    // Data-satisfied but the completion
                                    // round stalled: the uncompleted peers
                                    // are the ones in trouble.
                                    dead = (0..k)
                                        .filter(|&p| !completed[p])
                                        .map(|p| p as u32)
                                        .collect();
                                }
                                lost = Some(dead);
                                break;
                            }
                            retries_left -= 1;
                            rec.add("recovery.retries", 1);
                            for p in 0..k {
                                if p == r {
                                    continue;
                                }
                                if let Some(e) = exp[p] {
                                    if got[p] < e {
                                        rec.add("recovery.resend_requests", 1);
                                        let seqs = missing_seqs(&seen[p], e);
                                        mb.send(p, Msg::Resend { from: me, step: 0, seqs });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        span.set_attr("received_elements", received.len());
        rec.record("exec.recv_elements", received.len() as u64);
    }
    mb.close_outgoing();

    // ---- Local contact search over owned + received. ------------------
    let _span = rec
        .span("exec.search")
        .attr("rank", me)
        .attr("owned", plan.owned_surface.len())
        .attr("received", received.len());
    let pairs = search_rank(plan, input, &received, None);
    let res =
        RankResult { pairs, halo_sent, shipments_sent, halo_msgs, done_msgs, ghost_mismatches };
    match lost {
        None => RankOutcome::Completed(res),
        Some(dead) => RankOutcome::Lost { partial: res, dead },
    }
}

/// One rank's local contact search over its owned surface plus the
/// elements shipped to it, mapped back to sorted, deduped global ids.
///
/// With a [`SearchCache`] the broad-phase grid from the previous step is
/// updated in place instead of rebuilt (the pipelined executor holds one
/// per rank across a batch); the pair set is identical either way because
/// grid queries are exact for any cell layout.
pub(crate) fn search_rank<F: GlobalFilter<3> + Sync>(
    plan: &RankPlan,
    input: &StepInput<'_, F>,
    received: &[(u32, Aabb<3>, u16)],
    cache: Option<&mut SearchCache<3>>,
) -> Vec<ContactPair> {
    let mut local_ids: Vec<u32> = plan.owned_surface.clone();
    let mut boxes: Vec<Aabb<3>> =
        plan.owned_surface.iter().map(|&e| input.elements[e as usize].bbox).collect();
    let mut bodies: Vec<u16> =
        plan.owned_surface.iter().map(|&e| input.bodies[e as usize]).collect();
    for &(id, bbox, body) in received {
        local_ids.push(id);
        boxes.push(bbox);
        bodies.push(body);
    }
    let raw = match cache {
        None => find_contact_pairs(&boxes, &bodies, input.tolerance),
        Some(cache) => find_contact_pairs_cached(cache, &boxes, &bodies, input.tolerance),
    };
    let mut pairs: Vec<ContactPair> = raw
        .into_iter()
        .map(|p| {
            let (a, b) = (local_ids[p.a as usize], local_ids[p.b as usize]);
            if a < b {
                ContactPair { a, b }
            } else {
                ContactPair { a: b, b: a }
            }
        })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Folds the per-rank results (dead ranks contribute nothing) into one
/// [`StepOutput`].
pub(crate) fn aggregate(k: usize, partials: Vec<Option<RankResult>>) -> StepOutput {
    let mut traffic = TrafficLog {
        k,
        halo: vec![0; k * k],
        shipments: vec![0; k * k],
        phases: PhaseTraffic::default(),
    };
    let mut contact_pairs = Vec::new();
    let mut ghost_mismatches = 0;
    for (r, res) in partials.into_iter().enumerate() {
        let Some(res) = res else { continue };
        for dest in 0..k {
            traffic.halo[r * k + dest] += res.halo_sent[dest];
            traffic.shipments[r * k + dest] += res.shipments_sent[dest];
        }
        traffic.phases.halo_msgs += res.halo_msgs;
        traffic.phases.done_msgs += res.done_msgs;
        contact_pairs.extend(res.pairs);
        ghost_mismatches += res.ghost_mismatches;
    }
    traffic.phases.halo_units = traffic.total_halo();
    traffic.phases.ship_msgs = traffic.total_shipments();
    contact_pairs.sort_unstable();
    contact_pairs.dedup();
    StepOutput { contact_pairs, traffic, ghost_mismatches }
}

/// Executes one contact/impact step across `k` rank threads with default
/// options (no fault injection, generous timeout).
pub fn execute_step<F: GlobalFilter<3> + Sync>(
    input: &StepInput<'_, F>,
) -> Result<StepOutput, RuntimeError> {
    execute_step_with(input, &ExecOptions::default())
}

/// Executes one contact/impact step across `k` rank threads under `opts`.
///
/// Errors:
/// * [`RuntimeError::RankPanicked`] — a rank thread panicked (the lowest
///   offending rank is named);
/// * [`RuntimeError::RankLost`] — one or more ranks died mid-step; the
///   boxed partial output covers the survivors, and the caller is
///   expected to repartition over them and re-execute.
pub fn execute_step_with<F: GlobalFilter<3> + Sync>(
    input: &StepInput<'_, F>,
    opts: &ExecOptions,
) -> Result<StepOutput, RuntimeError> {
    execute_step_transport(input, opts, &InProcess)
}

/// [`execute_step_with`] over an explicit transport backend. The
/// in-process backend is the oracle; any other backend must produce
/// bit-identical [`StepOutput`]s (the transport tests assert this for
/// TCP).
pub fn execute_step_transport<F: GlobalFilter<3> + Sync, T: Transport>(
    input: &StepInput<'_, F>,
    opts: &ExecOptions,
    transport: &T,
) -> Result<StepOutput, RuntimeError> {
    let k = input.decomposition.k;
    let cfg = opts.mailbox_config(&input.recorder);
    let mailboxes = transport.connect::<Msg>(k, &cfg)?;

    let joined: Vec<std::thread::Result<RankOutcome>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (r, mut mb) in mailboxes.into_iter().enumerate() {
            let plan = &input.decomposition.ranks[r];
            let input = &*input;
            handles.push(scope.spawn(move || run_rank(r, k, plan, input, opts, &mut mb)));
        }
        // Join manually so a panicking rank is attributed, not re-thrown.
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut panicked: Option<u32> = None;
    let mut killed: Vec<u32> = Vec::new();
    let mut declared: Vec<u32> = Vec::new();
    let mut partials: Vec<Option<RankResult>> = Vec::with_capacity(k);
    for (r, outcome) in joined.into_iter().enumerate() {
        match outcome {
            Err(_) => {
                if panicked.is_none() {
                    panicked = Some(r as u32);
                }
                partials.push(None);
            }
            Ok(RankOutcome::Completed(res)) => partials.push(Some(res)),
            Ok(RankOutcome::Dead) => {
                killed.push(r as u32);
                partials.push(None);
            }
            Ok(RankOutcome::Lost { partial, dead }) => {
                declared.extend(dead);
                partials.push(Some(partial));
            }
        }
    }
    if let Some(rank) = panicked {
        return Err(RuntimeError::RankPanicked { rank });
    }
    // Ranks the plan actually killed are authoritative; survivors' timeout
    // verdicts (which can falsely accuse a merely slow peer) only stand in
    // when no rank observed its own death. Either way a step with any
    // `Lost` rank must fail: that rank's drain was incomplete, so its
    // partial result cannot be trusted as a full step.
    let mut dead = killed;
    if dead.is_empty() && !declared.is_empty() {
        declared.sort_unstable();
        declared.dedup();
        dead = declared;
    }
    let output = aggregate(k, partials);
    if dead.is_empty() {
        // Summary counters mirror the TrafficLog exactly (added once at
        // aggregation so `summary.json` totals can never drift from the
        // log). Deliberately skipped on the partial path: the driver
        // re-executes a lost step, and only the successful run counts.
        input.recorder.add("traffic.halo_units", output.traffic.phases.halo_units);
        input.recorder.add("traffic.shipment_units", output.traffic.phases.ship_msgs);
        Ok(output)
    } else {
        input.recorder.add("recovery.rank_dead", dead.len() as u64);
        Err(RuntimeError::RankLost { dead, partial: Box::new(output) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, KillSpec};
    use crate::plan::build_decomposition;
    use cip_contact::BboxFilter;
    use cip_graph::GraphBuilder;

    /// A 1D chain of nodes split between two ranks, with two rows of
    /// surface boxes facing each other.
    fn two_rank_setup() -> (Decomposition, Vec<Point<3>>, Vec<SurfaceElementInfo<3>>, Vec<u16>) {
        let n = 8;
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let asg: Vec<u32> = (0..n as u32).map(|v| u32::from(v >= 4)).collect();
        let positions: Vec<Point<3>> = (0..n).map(|i| Point::new([i as f64, 0.0, 0.0])).collect();

        // Surface elements: one per node, two bodies stacked in z.
        let mut elements = Vec::new();
        let mut bodies = Vec::new();
        for (i, &owner) in asg.iter().enumerate() {
            let x = i as f64;
            elements.push(SurfaceElementInfo {
                bbox: Aabb::new(Point::new([x, 0.0, 0.0]), Point::new([x + 1.0, 1.0, 1.0])),
                owner,
            });
            bodies.push((i % 2) as u16);
        }
        let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
        let nov: Vec<u32> = (0..n as u32).collect();
        let d = build_decomposition(&g, &nov, &asg, &owners, 2);
        (d, positions, elements, bodies)
    }

    fn chaos_opts(fault: FaultInjector) -> ExecOptions {
        ExecOptions {
            timeout: Duration::from_millis(200),
            retries: 2,
            fault,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn executed_step_matches_serial_search() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        })
        .expect("step executes");
        assert_eq!(out.ghost_mismatches, 0);
        let serial = cip_contact::serial_contact_pairs(&elements, &bodies, 0.2);
        assert_eq!(out.contact_pairs, serial);
        assert!(!serial.is_empty());
    }

    #[test]
    fn measured_halo_matches_plan() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        })
        .expect("step executes");
        assert_eq!(out.traffic.total_halo(), d.total_halo_volume());
        // The chain boundary: rank 0 sends node 3, rank 1 sends node 4.
        assert_eq!(out.traffic.halo[1], 1);
        assert_eq!(out.traffic.halo[2], 1);
        assert_eq!(out.traffic.pair(0, 1), (1, out.traffic.shipments[1]));
    }

    #[test]
    fn phase_breakdown_sums_to_totals() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        })
        .expect("step executes");
        let t = &out.traffic;
        // Per-phase units must agree with the pairwise matrices exactly.
        assert_eq!(t.phases.halo_units, t.total_halo());
        assert_eq!(t.phases.ship_msgs, t.total_shipments());
        assert_eq!(t.phases.done_msgs, (t.k * (t.k - 1)) as u64);
        assert!(t.phases.halo_msgs <= (t.k * (t.k - 1)) as u64);
        // Row/column accessors partition the same totals.
        let sent: (u64, u64) =
            (0..t.k).map(|r| t.sent_by(r)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b));
        let recv: (u64, u64) =
            (0..t.k).map(|r| t.received_by(r)).fold((0, 0), |(h, s), (a, b)| (h + a, s + b));
        assert_eq!(sent, (t.total_halo(), t.total_shipments()));
        assert_eq!(recv, sent);
    }

    #[test]
    fn enabled_recorder_counters_match_traffic_log() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let rec = Recorder::enabled();
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: rec.clone(),
        })
        .expect("step executes");
        assert_eq!(rec.counter_value("traffic.halo_units"), out.traffic.total_halo());
        assert_eq!(rec.counter_value("traffic.shipment_units"), out.traffic.total_shipments());
        // Every per-rank phase span landed in the trace.
        let summary = rec.summary().expect("recorder is enabled");
        for name in ["exec.halo", "exec.ship", "exec.drain", "exec.search"] {
            let s = summary.span(name).unwrap_or_else(|| panic!("missing span {name}"));
            assert_eq!(s.count, 2, "{name} once per rank");
        }
    }

    #[test]
    fn single_rank_executes_without_messages() {
        let (_, positions, elements, bodies) = two_rank_setup();
        let n = positions.len();
        let mut b = GraphBuilder::new(n, 1);
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let nov: Vec<u32> = (0..n as u32).collect();
        let elements1: Vec<SurfaceElementInfo<3>> =
            elements.iter().map(|e| SurfaceElementInfo { bbox: e.bbox, owner: 0 }).collect();
        let owners = vec![0u32; elements1.len()];
        let d = build_decomposition(&g, &nov, &vec![0; n], &owners, 1);
        let boxes: Vec<(u32, Aabb<3>)> = elements1.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 1);
        let out = execute_step(&StepInput {
            decomposition: &d,
            positions: &positions,
            elements: &elements1,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.2,
            recorder: Recorder::disabled(),
        })
        .expect("step executes");
        assert_eq!(out.traffic.total_halo(), 0);
        assert_eq!(out.traffic.total_shipments(), 0);
        assert_eq!(out.traffic.phases, PhaseTraffic::default());
        let serial = cip_contact::serial_contact_pairs(&elements1, &bodies, 0.2);
        assert_eq!(out.contact_pairs, serial);
    }

    #[test]
    fn quiet_armed_plan_is_bit_identical_to_disabled() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let mk = |opts: &ExecOptions| {
            execute_step_with(
                &StepInput {
                    decomposition: &d,
                    positions: &positions,
                    elements: &elements,
                    bodies: &bodies,
                    filter: &filter,
                    tolerance: 0.2,
                    recorder: Recorder::disabled(),
                },
                opts,
            )
            .expect("step executes")
        };
        let plain = mk(&ExecOptions::default());
        let armed = mk(&chaos_opts(FaultInjector::with_plan(FaultPlan::quiet(42))));
        assert_eq!(plain, armed, "arming a quiet plan must not change the output");
    }

    #[test]
    fn message_faults_are_repaired_and_invariants_hold() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let serial = cip_contact::serial_contact_pairs(&elements, &bodies, 0.2);
        for seed in 0..20u64 {
            let plan = FaultPlan {
                drop_permille: 250,
                dup_permille: 120,
                delay_permille: 120,
                reorder_permille: 120,
                ..FaultPlan::quiet(seed)
            };
            let out = execute_step_with(
                &StepInput {
                    decomposition: &d,
                    positions: &positions,
                    elements: &elements,
                    bodies: &bodies,
                    filter: &filter,
                    tolerance: 0.2,
                    recorder: Recorder::disabled(),
                },
                &chaos_opts(FaultInjector::with_plan(plan)),
            )
            .expect("message-level faults must be repaired");
            assert_eq!(out.contact_pairs, serial, "seed {seed}");
            assert_eq!(out.ghost_mismatches, 0, "seed {seed}");
            assert_eq!(out.traffic.total_halo(), d.total_halo_volume(), "seed {seed}");
            assert_eq!(out.traffic.phases.done_msgs, 2, "seed {seed}");
        }
    }

    #[test]
    fn killed_rank_reports_rank_lost_with_partial_output() {
        let (d, positions, elements, bodies) = two_rank_setup();
        let boxes: Vec<(u32, Aabb<3>)> = elements.iter().map(|e| (e.owner, e.bbox)).collect();
        let filter = BboxFilter::from_boxes(&boxes, 2);
        let rec = Recorder::enabled();
        let plan =
            FaultPlan { kill: Some(KillSpec { rank: 1, after_sends: 0 }), ..FaultPlan::quiet(5) };
        let err = execute_step_with(
            &StepInput {
                decomposition: &d,
                positions: &positions,
                elements: &elements,
                bodies: &bodies,
                filter: &filter,
                tolerance: 0.2,
                recorder: rec.clone(),
            },
            &ExecOptions {
                timeout: Duration::from_millis(100),
                retries: 1,
                fault: FaultInjector::with_plan(plan),
                ..ExecOptions::default()
            },
        )
        .expect_err("a killed rank must surface as an error");
        match err {
            RuntimeError::RankLost { dead, partial } => {
                assert_eq!(dead, vec![1]);
                // The survivor's row of the traffic matrix is intact; the
                // dead rank's row is empty.
                assert!(partial.traffic.sent_by(0).0 > 0, "survivor halo row missing");
                assert_eq!(partial.traffic.sent_by(1), (0, 0), "dead rank must contribute nothing");
            }
            other => panic!("expected RankLost, got {other}"),
        }
        assert_eq!(rec.counter_value("fault.killed_ranks"), 1);
        assert_eq!(rec.counter_value("recovery.rank_dead"), 1);
        // The failed step must not pollute the traffic counters the
        // driver reconciles against successful steps.
        assert_eq!(rec.counter_value("traffic.halo_units"), 0);
    }
}
