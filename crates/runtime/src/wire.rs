//! [`Wire`] implementation for the executor's [`Msg`] — the payload
//! layouts of wire format version 1.
//!
//! The frame header ([`cip_transport::frame`]) already carries `tag`,
//! `from`, `step`, and `seq`, so payloads hold only what is left:
//!
//! | variant    | tag | payload |
//! |------------|-----|---------|
//! | `Halo`     | 1   | `u32` count, then per value `u32` node + 3×`f64` position |
//! | `Element`  | 2   | `u32` id, 6×`f64` bbox (min then max), `u16` body |
//! | `Done`     | 3   | `u64` sent |
//! | `Resend`   | 4   | `u32` count, then count×`u64` seqs |
//! | `Complete` | 5   | empty |
//! | `Migrate`  | 6   | `u32` count, then count×`u32` node ids |
//!
//! All integers little-endian; `f64` as IEEE-754 bit patterns, so every
//! position round-trips bit-exactly (signed zeros and NaNs included) and
//! the TCP backend stays bit-identical to the in-process oracle. Decode
//! validates counts against the bytes actually present *before*
//! allocating, so a corrupt length cannot balloon memory.

use crate::exec::Msg;
use cip_geom::{Aabb, Point};
use cip_transport::{ByteReader, ByteWriter, Wire, WireError};

/// Frame tag of [`Msg::Halo`].
pub const TAG_HALO: u8 = 1;
/// Frame tag of [`Msg::Element`].
pub const TAG_ELEMENT: u8 = 2;
/// Frame tag of [`Msg::Done`].
pub const TAG_DONE: u8 = 3;
/// Frame tag of [`Msg::Resend`].
pub const TAG_RESEND: u8 = 4;
/// Frame tag of [`Msg::Complete`].
pub const TAG_COMPLETE: u8 = 5;
/// Frame tag of [`Msg::Migrate`].
pub const TAG_MIGRATE: u8 = 6;

/// Bytes of one halo value: node id + 3 coordinates.
const HALO_VALUE_LEN: usize = 4 + 3 * 8;

impl Wire for Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Halo { .. } => TAG_HALO,
            Msg::Element { .. } => TAG_ELEMENT,
            Msg::Done { .. } => TAG_DONE,
            Msg::Resend { .. } => TAG_RESEND,
            Msg::Complete { .. } => TAG_COMPLETE,
            Msg::Migrate { .. } => TAG_MIGRATE,
        }
    }

    fn src_rank(&self) -> u32 {
        match self {
            Msg::Halo { from, .. }
            | Msg::Element { from, .. }
            | Msg::Done { from, .. }
            | Msg::Resend { from, .. }
            | Msg::Complete { from }
            | Msg::Migrate { from, .. } => *from,
        }
    }

    fn step(&self) -> u32 {
        match self {
            Msg::Halo { step, .. }
            | Msg::Element { step, .. }
            | Msg::Done { step, .. }
            | Msg::Resend { step, .. }
            | Msg::Migrate { step, .. } => *step,
            Msg::Complete { .. } => 0,
        }
    }

    fn seq(&self) -> u64 {
        match self {
            Msg::Halo { seq, .. } | Msg::Element { seq, .. } => *seq,
            Msg::Done { .. } | Msg::Resend { .. } | Msg::Complete { .. } | Msg::Migrate { .. } => 0,
        }
    }

    fn encode_payload(&self, w: &mut ByteWriter<'_>) {
        match self {
            Msg::Halo { values, .. } => {
                w.u32(values.len() as u32);
                for (node, pos) in values {
                    w.u32(*node);
                    for d in 0..3 {
                        w.f64(pos.coords[d]);
                    }
                }
            }
            Msg::Element { id, bbox, body, .. } => {
                w.u32(*id);
                for d in 0..3 {
                    w.f64(bbox.min.coords[d]);
                }
                for d in 0..3 {
                    w.f64(bbox.max.coords[d]);
                }
                w.u16(*body);
            }
            Msg::Done { sent, .. } => w.u64(*sent),
            Msg::Resend { seqs, .. } => {
                w.u32(seqs.len() as u32);
                for s in seqs {
                    w.u64(*s);
                }
            }
            Msg::Complete { .. } => {}
            Msg::Migrate { nodes, .. } => {
                w.u32(nodes.len() as u32);
                for n in nodes {
                    w.u32(*n);
                }
            }
        }
    }

    fn decode_payload(
        tag: u8,
        from: u32,
        step: u32,
        seq: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError> {
        match tag {
            TAG_HALO => {
                let count = r.u32()? as usize;
                if count * HALO_VALUE_LEN > r.remaining() {
                    return Err(WireError::Malformed { what: "halo count exceeds payload" });
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let node = r.u32()?;
                    let mut coords = [0.0f64; 3];
                    for c in &mut coords {
                        *c = r.f64()?;
                    }
                    values.push((node, Point { coords }));
                }
                Ok(Msg::Halo { from, step, seq, values })
            }
            TAG_ELEMENT => {
                let id = r.u32()?;
                let mut min = [0.0f64; 3];
                for c in &mut min {
                    *c = r.f64()?;
                }
                let mut max = [0.0f64; 3];
                for c in &mut max {
                    *c = r.f64()?;
                }
                let body = r.u16()?;
                // `Aabb::new` debug-asserts min <= max; a corrupt frame
                // must decode to a value, not a panic, so build it raw.
                let bbox = Aabb { min: Point { coords: min }, max: Point { coords: max } };
                Ok(Msg::Element { from, step, seq, id, bbox, body })
            }
            TAG_DONE => Ok(Msg::Done { from, step, sent: r.u64()? }),
            TAG_RESEND => {
                let count = r.u32()? as usize;
                if count * 8 > r.remaining() {
                    return Err(WireError::Malformed { what: "resend count exceeds payload" });
                }
                let mut seqs = Vec::with_capacity(count);
                for _ in 0..count {
                    seqs.push(r.u64()?);
                }
                Ok(Msg::Resend { from, step, seqs })
            }
            TAG_COMPLETE => Ok(Msg::Complete { from }),
            TAG_MIGRATE => {
                let count = r.u32()? as usize;
                if count * 4 > r.remaining() {
                    return Err(WireError::Malformed { what: "migrate count exceeds payload" });
                }
                let mut nodes = Vec::with_capacity(count);
                for _ in 0..count {
                    nodes.push(r.u32()?);
                }
                Ok(Msg::Migrate { from, step, nodes })
            }
            got => Err(WireError::BadTag { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_transport::frame::{decode_frame, encode_frame};

    fn round_trip(msg: &Msg) {
        let mut buf = Vec::new();
        encode_frame(msg, 3, &mut buf);
        let (back, to, consumed) = decode_frame::<Msg>(&buf).expect("frame decodes");
        assert_eq!(&back, msg);
        assert_eq!(to, 3);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(&Msg::Halo {
            from: 2,
            step: 5,
            seq: 9,
            values: vec![
                (7, Point::new([1.5, -0.0, f64::MIN_POSITIVE])),
                (8, Point::new([-3.25, 1e300, 0.1])),
            ],
        });
        round_trip(&Msg::Halo { from: 0, step: 0, seq: 0, values: Vec::new() });
        round_trip(&Msg::Element {
            from: 1,
            step: 2,
            seq: 3,
            id: 40,
            bbox: Aabb::new(Point::new([0.0, 1.0, 2.0]), Point::new([1.0, 2.0, 3.0])),
            body: 6,
        });
        round_trip(&Msg::Done { from: 3, step: 7, sent: u64::MAX });
        round_trip(&Msg::Resend { from: 1, step: 4, seqs: vec![0, 5, 1 << 40] });
        round_trip(&Msg::Resend { from: 1, step: 4, seqs: Vec::new() });
        round_trip(&Msg::Complete { from: 9 });
        round_trip(&Msg::Migrate { from: 2, step: 0, nodes: vec![1, 9, u32::MAX] });
        round_trip(&Msg::Migrate { from: 0, step: 3, nodes: Vec::new() });
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocating() {
        // A Halo frame claiming 2^32 - 1 values in an 8-byte payload.
        let msg = Msg::Halo { from: 0, step: 0, seq: 0, values: Vec::new() };
        let mut buf = Vec::new();
        encode_frame(&msg, 1, &mut buf);
        // Patch the count field (first 4 payload bytes) and fix the CRC
        // by re-deriving it the way the encoder does.
        let hdr = cip_transport::HEADER_LEN;
        buf[hdr..hdr + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = cip_transport::wire::crc32(&[&buf[..26], &buf[cip_transport::HEADER_LEN..]]);
        buf[26..30].copy_from_slice(&crc.to_le_bytes());
        let err = decode_frame::<Msg>(&buf).expect_err("hostile count rejected");
        assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn nan_positions_survive_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let msg = Msg::Halo {
            from: 0,
            step: 1,
            seq: 2,
            values: vec![(3, Point::new([weird, 0.0, 0.0]))],
        };
        let mut buf = Vec::new();
        encode_frame(&msg, 1, &mut buf);
        let (back, _, _) = decode_frame::<Msg>(&buf).expect("frame decodes");
        match back {
            Msg::Halo { values, .. } => {
                assert_eq!(values[0].1.coords[0].to_bits(), weird.to_bits());
            }
            other => panic!("expected Halo, got {other:?}"),
        }
    }
}
