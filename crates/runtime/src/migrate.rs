//! Data migration between decompositions.
//!
//! When the partition changes (§4.3 repartitioning, or ML+RCB's per-step
//! RCB update), every node whose owner changed must ship its state to the
//! new owner. This module builds that migration plan and its traffic
//! matrix; the tests validate it against
//! `cip_partition::repart::migration_count`.

use cip_telemetry::Recorder;

/// A migration plan: per (from, to) rank pair, the nodes that move.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Number of ranks.
    pub k: usize,
    /// `moves[from * k + to]` = global node ids moving from -> to.
    pub moves: Vec<Vec<u32>>,
}

impl MigrationPlan {
    /// True when no node migrates — the common steady-state case, which
    /// lets callers skip the shipping phase entirely.
    pub fn is_empty(&self) -> bool {
        self.moves.iter().all(|v| v.is_empty())
    }

    /// Applies the plan to an assignment: every planned move re-labels its
    /// node with the destination rank. Applying the plan built from
    /// `(old, new)` onto `old` reproduces `new` on every node both
    /// assignments cover.
    pub fn apply(&self, asg: &mut [u32]) {
        for (pair, nodes) in self.moves.iter().enumerate() {
            let to = (pair % self.k) as u32;
            for &n in nodes {
                asg[n as usize] = to;
            }
        }
    }
    /// Row-major `k x k` traffic matrix (node counts).
    pub fn traffic_matrix(&self) -> Vec<u64> {
        self.moves.iter().map(|v| v.len() as u64).collect()
    }

    /// Total nodes migrated (the UpdComm-style metric).
    pub fn total_moved(&self) -> u64 {
        self.moves.iter().map(|v| v.len() as u64).sum()
    }

    /// The busiest rank's send+recv migration volume.
    pub fn max_rank_volume(&self) -> u64 {
        let k = self.k;
        (0..k)
            .map(|r| {
                let sent: u64 = (0..k).map(|t| self.moves[r * k + t].len() as u64).sum();
                let recv: u64 = (0..k).map(|f| self.moves[f * k + r].len() as u64).sum();
                sent + recv
            })
            .max()
            .unwrap_or(0)
    }
}

/// Builds the migration plan between two node-indexed assignments
/// (`u32::MAX` entries — dead or unassigned nodes — never migrate).
pub fn build_migration(old: &[u32], new: &[u32], k: usize) -> MigrationPlan {
    build_migration_recorded(old, new, k, &Recorder::disabled())
}

/// [`build_migration`] with a telemetry sink: emits a `migrate.plan` span
/// (node count, ranks, moved total) and a `traffic.migrated_units`
/// counter that mirrors [`MigrationPlan::total_moved`].
pub fn build_migration_recorded(
    old: &[u32],
    new: &[u32],
    k: usize,
    rec: &Recorder,
) -> MigrationPlan {
    assert_eq!(old.len(), new.len(), "assignments must cover the same nodes");
    let mut span = rec.span("migrate.plan").attr("nodes", old.len()).attr("k", k);
    let mut moves = vec![Vec::new(); k * k];
    for (n, (&o, &w)) in old.iter().zip(new.iter()).enumerate() {
        if o == u32::MAX || w == u32::MAX || o == w {
            continue;
        }
        // After a rank loss the live rank count shrinks; a stale label
        // must fail loudly here, not as an opaque slice-index panic.
        assert!(
            (o as usize) < k && (w as usize) < k,
            "node {n}: migration {o} -> {w} is outside the {k} live ranks"
        );
        moves[o as usize * k + w as usize].push(n as u32);
    }
    let plan = MigrationPlan { k, moves };
    span.set_attr("moved", plan.total_moved());
    rec.add("traffic.migrated_units", plan.total_moved());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_migrates_nothing() {
        let asg = vec![0u32, 1, 2, 1];
        let plan = build_migration(&asg, &asg, 3);
        assert_eq!(plan.total_moved(), 0);
        assert_eq!(plan.max_rank_volume(), 0);
    }

    #[test]
    fn moves_are_recorded_per_pair() {
        let old = vec![0u32, 0, 1, 1, u32::MAX];
        let new = vec![0u32, 1, 1, 0, 0];
        let plan = build_migration(&old, &new, 2);
        assert_eq!(plan.moves[1], vec![1]);
        assert_eq!(plan.moves[2], vec![3]);
        assert_eq!(plan.total_moved(), 2);
        // Node 4 was unassigned before: not a migration.
        assert_eq!(plan.traffic_matrix(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn matches_partition_migration_count() {
        let old: Vec<u32> = (0..100).map(|v| v % 4).collect();
        let new: Vec<u32> = (0..100).map(|v| (v + 1) % 4).collect();
        let plan = build_migration(&old, &new, 4);
        assert_eq!(plan.total_moved(), cip_partition::repart::migration_count(&old, &new) as u64);
    }

    #[test]
    fn max_rank_volume_counts_both_directions() {
        // All traffic converges on rank 0.
        let old = vec![1u32, 2, 3];
        let new = vec![0u32, 0, 0];
        let plan = build_migration(&old, &new, 4);
        assert_eq!(plan.total_moved(), 3);
        assert_eq!(plan.max_rank_volume(), 3, "rank 0 receives everything");
    }

    #[test]
    fn apply_round_trips_old_to_new() {
        // Pseudo-random but deterministic assignments over 6 ranks.
        let old: Vec<u32> = (0..500u32).map(|v| (v * 7 + 3) % 6).collect();
        let new: Vec<u32> = (0..500u32).map(|v| (v * 13 + 1) % 6).collect();
        let plan = build_migration(&old, &new, 6);
        let mut applied = old.clone();
        plan.apply(&mut applied);
        assert_eq!(applied, new, "applying the plan must reproduce the target assignment");
    }

    #[test]
    fn apply_skips_unassigned_nodes() {
        let old = vec![0u32, u32::MAX, 1, 2];
        let new = vec![1u32, 0, u32::MAX, 2];
        let plan = build_migration(&old, &new, 3);
        let mut applied = old.clone();
        plan.apply(&mut applied);
        // Only node 0 had a real move; MAX-labeled endpoints stay put.
        assert_eq!(applied, vec![1, u32::MAX, 1, 2]);
    }

    #[test]
    fn empty_migration_fast_path() {
        let asg: Vec<u32> = (0..64u32).map(|v| v % 4).collect();
        let plan = build_migration(&asg, &asg, 4);
        assert!(plan.is_empty());
        assert_eq!(plan.traffic_matrix(), vec![0u64; 16]);
        let mut applied = asg.clone();
        plan.apply(&mut applied);
        assert_eq!(applied, asg, "applying an empty plan is a no-op");
    }

    #[test]
    fn agrees_with_updcomm_prediction_per_rank() {
        // The UpdComm prediction (cip_partition::repart::migration_count)
        // counts relabeled nodes; the executable plan must agree in total
        // and per-rank: each rank sends exactly the nodes it lost.
        let old: Vec<u32> = (0..200u32).map(|v| (v / 50) % 4).collect();
        let mut new = old.clone();
        for n in (0..200).step_by(9) {
            new[n] = (old[n] + 1) % 4;
        }
        let plan = build_migration(&old, &new, 4);
        assert_eq!(plan.total_moved(), cip_partition::repart::migration_count(&old, &new) as u64);
        for r in 0..4u32 {
            let sent: u64 = (0..4).map(|t| plan.moves[r as usize * 4 + t].len() as u64).sum();
            let lost =
                old.iter().zip(new.iter()).filter(|&(&o, &w)| o == r && w != r).count() as u64;
            assert_eq!(sent, lost, "rank {r} send volume");
        }
    }

    #[test]
    fn recorded_migration_emits_span_and_counter() {
        let old = vec![0u32, 0, 1, 1];
        let new = vec![1u32, 0, 1, 0];
        let rec = Recorder::enabled();
        let plan = build_migration_recorded(&old, &new, 2, &rec);
        assert_eq!(rec.counter_value("traffic.migrated_units"), plan.total_moved());
        let summary = rec.summary().expect("recorder is enabled");
        assert_eq!(summary.span("migrate.plan").map(|s| s.count), Some(1));
    }
}
