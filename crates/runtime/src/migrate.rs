//! Data migration between decompositions.
//!
//! When the partition changes (§4.3 repartitioning, or ML+RCB's per-step
//! RCB update), every node whose owner changed must ship its state to the
//! new owner. This module builds that migration plan and its traffic
//! matrix; the tests validate it against
//! [`cip_partition::repart::migration_count`].

/// A migration plan: per (from, to) rank pair, the nodes that move.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Number of ranks.
    pub k: usize,
    /// `moves[from * k + to]` = global node ids moving from -> to.
    pub moves: Vec<Vec<u32>>,
}

impl MigrationPlan {
    /// Row-major `k x k` traffic matrix (node counts).
    pub fn traffic_matrix(&self) -> Vec<u64> {
        self.moves.iter().map(|v| v.len() as u64).collect()
    }

    /// Total nodes migrated (the UpdComm-style metric).
    pub fn total_moved(&self) -> u64 {
        self.moves.iter().map(|v| v.len() as u64).sum()
    }

    /// The busiest rank's send+recv migration volume.
    pub fn max_rank_volume(&self) -> u64 {
        let k = self.k;
        (0..k)
            .map(|r| {
                let sent: u64 = (0..k).map(|t| self.moves[r * k + t].len() as u64).sum();
                let recv: u64 = (0..k).map(|f| self.moves[f * k + r].len() as u64).sum();
                sent + recv
            })
            .max()
            .unwrap_or(0)
    }
}

/// Builds the migration plan between two node-indexed assignments
/// (`u32::MAX` entries — dead or unassigned nodes — never migrate).
pub fn build_migration(old: &[u32], new: &[u32], k: usize) -> MigrationPlan {
    assert_eq!(old.len(), new.len(), "assignments must cover the same nodes");
    let mut moves = vec![Vec::new(); k * k];
    for (n, (&o, &w)) in old.iter().zip(new.iter()).enumerate() {
        if o == u32::MAX || w == u32::MAX || o == w {
            continue;
        }
        moves[o as usize * k + w as usize].push(n as u32);
    }
    MigrationPlan { k, moves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_migrates_nothing() {
        let asg = vec![0u32, 1, 2, 1];
        let plan = build_migration(&asg, &asg, 3);
        assert_eq!(plan.total_moved(), 0);
        assert_eq!(plan.max_rank_volume(), 0);
    }

    #[test]
    fn moves_are_recorded_per_pair() {
        let old = vec![0u32, 0, 1, 1, u32::MAX];
        let new = vec![0u32, 1, 1, 0, 0];
        let plan = build_migration(&old, &new, 2);
        assert_eq!(plan.moves[1], vec![1]);
        assert_eq!(plan.moves[2], vec![3]);
        assert_eq!(plan.total_moved(), 2);
        // Node 4 was unassigned before: not a migration.
        assert_eq!(plan.traffic_matrix(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn matches_partition_migration_count() {
        let old: Vec<u32> = (0..100).map(|v| v % 4).collect();
        let new: Vec<u32> = (0..100).map(|v| (v + 1) % 4).collect();
        let plan = build_migration(&old, &new, 4);
        assert_eq!(plan.total_moved(), cip_partition::repart::migration_count(&old, &new) as u64);
    }

    #[test]
    fn max_rank_volume_counts_both_directions() {
        // All traffic converges on rank 0.
        let old = vec![1u32, 2, 3];
        let new = vec![0u32, 0, 0];
        let plan = build_migration(&old, &new, 4);
        assert_eq!(plan.total_moved(), 3);
        assert_eq!(plan.max_rank_volume(), 3, "rank 0 receives everything");
    }
}
