//! Background repartition planning (DESIGN.md §6f).
//!
//! Under [`crate::RepartitionMode::Overlapped`] the driver computes the
//! diffusion repartition and [`crate::MigrationPlan`] for the *next*
//! boundary on a planner thread while the executor is still running the
//! current batch against the old decomposition. [`Replanner`] owns that
//! thread's lifecycle: one plan in flight at a time, keyed by the
//! boundary step it targets and a driver-maintained **version** that is
//! bumped whenever the rank space changes (a `RankLost` recovery). A
//! take with a mismatched key discards the stale plan instead of
//! applying a repartition computed over dead ranks.
//!
//! The planner is generic over the plan payload `P` because this crate
//! sits below the driver in the dependency order: the closure that
//! actually calls the partitioner lives in `cip::trace`, and the
//! runtime only schedules it.
//!
//! Telemetry contract (read by `summary.json` consumers):
//!
//! * `repartition.stall` span — the wall time the driver was actually
//!   blocked waiting for a plan at a boundary (the Barrier oracle wraps
//!   its whole synchronous plan in the same span, so the two modes are
//!   directly comparable);
//! * `repartition.overlap.hidden_ms` counter — planning time that
//!   overlapped batch execution: `compute - stall`, clamped at zero;
//! * `repartition.overlap.planned` / `repartition.plan.discarded`
//!   counters — accepted vs invalidated background plans.

use cip_telemetry::Recorder;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One in-flight background plan.
struct Pending<P> {
    /// Boundary step the plan targets (it may only be applied there).
    boundary: usize,
    /// Rank-space version the plan was computed under.
    version: u64,
    /// The planner thread; returns the plan and its compute time.
    handle: JoinHandle<(P, Duration)>,
}

/// Owns at most one background planning thread. See the module docs.
pub struct Replanner<P: Send + 'static> {
    pending: Option<Pending<P>>,
}

impl<P: Send + 'static> Default for Replanner<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Send + 'static> Replanner<P> {
    /// A planner with nothing in flight.
    pub fn new() -> Self {
        Self { pending: None }
    }

    /// Whether a background plan is currently in flight.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Starts planning for `boundary` under rank-space `version` on a
    /// background thread. Any previously pending plan is discarded
    /// first (there is one boundary ahead at most, so an older plan can
    /// never be applied again).
    pub fn submit<F>(&mut self, boundary: usize, version: u64, rec: &Recorder, job: F)
    where
        F: FnOnce() -> P + Send + 'static,
    {
        self.discard(rec);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let plan = job();
            (plan, t0.elapsed())
        });
        self.pending = Some(Pending { boundary, version, handle });
    }

    /// Claims the pending plan at a boundary. Returns `None` — and the
    /// caller must plan synchronously — when nothing is in flight, when
    /// the pending plan targets a different boundary or rank-space
    /// version (it is discarded), or when the planner thread panicked.
    /// On success the join wait is charged to a `repartition.stall`
    /// span and the overlapped share of the compute time to the
    /// `repartition.overlap.hidden_ms` counter.
    pub fn take(&mut self, boundary: usize, version: u64, rec: &Recorder) -> Option<P> {
        let p = self.pending.take()?;
        if p.boundary != boundary || p.version != version {
            rec.add("repartition.plan.discarded", 1);
            let _ = p.handle.join();
            return None;
        }
        let mut span = rec.span("repartition.stall").attr("boundary", boundary as u64);
        let waited = Instant::now();
        match p.handle.join() {
            Ok((plan, compute)) => {
                let stall = waited.elapsed();
                let hidden = compute.saturating_sub(stall);
                span.set_attr("stall_us", stall.as_micros() as u64);
                span.set_attr("hidden_us", hidden.as_micros() as u64);
                rec.add("repartition.overlap.hidden_ms", hidden.as_millis() as u64);
                rec.add("repartition.overlap.planned", 1);
                Some(plan)
            }
            Err(_) => {
                // A panicked planner degrades to the synchronous path.
                rec.add("repartition.plan.discarded", 1);
                None
            }
        }
    }

    /// Drops any in-flight plan (joining its thread) without applying
    /// it. Used when the rank space changes mid-batch.
    pub fn discard(&mut self, rec: &Recorder) {
        if let Some(p) = self.pending.take() {
            rec.add("repartition.plan.discarded", 1);
            let _ = p.handle.join();
        }
    }
}

impl<P: Send + 'static> Drop for Replanner<P> {
    fn drop(&mut self) {
        if let Some(p) = self.pending.take() {
            let _ = p.handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submitted_plan_is_taken_at_its_boundary() {
        let rec = Recorder::enabled();
        let mut rp: Replanner<u32> = Replanner::new();
        assert!(!rp.has_pending());
        rp.submit(8, 0, &rec, || 42);
        assert!(rp.has_pending());
        assert_eq!(rp.take(8, 0, &rec), Some(42));
        assert!(!rp.has_pending());
        let summary = rec.summary().expect("enabled recorder");
        assert_eq!(summary.counter("repartition.overlap.planned"), Some(1));
        assert!(summary.span("repartition.stall").is_some(), "stall span must be charged");
    }

    #[test]
    fn boundary_or_version_mismatch_discards() {
        let rec = Recorder::enabled();
        let mut rp: Replanner<u32> = Replanner::new();
        rp.submit(8, 0, &rec, || 1);
        assert_eq!(rp.take(16, 0, &rec), None, "wrong boundary");
        rp.submit(8, 0, &rec, || 2);
        assert_eq!(rp.take(8, 1, &rec), None, "stale rank-space version");
        assert_eq!(rp.take(8, 1, &rec), None, "nothing left in flight");
        let summary = rec.summary().expect("enabled recorder");
        assert_eq!(summary.counter("repartition.plan.discarded"), Some(2));
        assert_eq!(summary.counter("repartition.overlap.planned"), None);
    }

    #[test]
    fn resubmit_discards_the_previous_plan() {
        let rec = Recorder::enabled();
        let mut rp: Replanner<u32> = Replanner::new();
        rp.submit(8, 0, &rec, || 1);
        rp.submit(8, 1, &rec, || 2);
        assert_eq!(rp.take(8, 1, &rec), Some(2));
        let summary = rec.summary().expect("enabled recorder");
        assert_eq!(summary.counter("repartition.plan.discarded"), Some(1));
    }

    #[test]
    fn panicked_planner_degrades_to_none() {
        let rec = Recorder::enabled();
        let mut rp: Replanner<u32> = Replanner::new();
        rp.submit(4, 0, &rec, || panic!("planner bug"));
        assert_eq!(rp.take(4, 0, &rec), None);
        let summary = rec.summary().expect("enabled recorder");
        assert_eq!(summary.counter("repartition.plan.discarded"), Some(1));
    }
}
