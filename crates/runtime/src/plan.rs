//! Per-rank decomposition plans.
//!
//! Given a mesh, its nodal graph, and a node partition, derive what each
//! rank owns and what it must exchange:
//!
//! * **owned nodes** — the nodes assigned to the rank;
//! * **ghost nodes** — remote nodes adjacent (in the nodal graph) to an
//!   owned node; their values arrive via the halo exchange each step;
//! * **halo send lists** — for each neighbor rank, the owned nodes it
//!   needs (the union over its owned nodes' adjacencies), so the total
//!   number of (node, destination) sends equals exactly the paper's
//!   FEComm metric;
//! * **owned surface elements** — contact faces whose majority node lives
//!   on the rank (the same ownership rule the metrics use).

use cip_graph::Graph;

/// What one rank owns and exchanges.
#[derive(Debug, Clone, Default)]
pub struct RankPlan {
    /// Global ids of owned mesh nodes.
    pub owned_nodes: Vec<u32>,
    /// Global ids of remote nodes this rank needs copies of.
    pub ghost_nodes: Vec<u32>,
    /// Halo sends: `(neighbor_rank, owned nodes to send)`, sorted by rank.
    pub send_halo: Vec<(u32, Vec<u32>)>,
    /// Indices (into the caller's surface-element array) of elements this
    /// rank owns.
    pub owned_surface: Vec<u32>,
}

impl RankPlan {
    /// Total number of (node, destination) halo sends from this rank.
    pub fn halo_send_count(&self) -> usize {
        self.send_halo.iter().map(|(_, v)| v.len()).sum()
    }
}

/// The full decomposition plan.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Number of ranks.
    pub k: usize,
    /// Per-rank plans.
    pub ranks: Vec<RankPlan>,
}

impl Decomposition {
    /// Total halo volume (must equal the FEComm metric).
    pub fn total_halo_volume(&self) -> u64 {
        self.ranks.iter().map(|r| r.halo_send_count() as u64).sum()
    }
}

/// Builds the decomposition plan.
///
/// * `graph` — the nodal graph (vertices = live mesh nodes),
/// * `node_of_vertex` — graph vertex -> global mesh node id,
/// * `assignment` — graph vertex -> rank,
/// * `surface_owner` — owner rank of each surface element.
pub fn build_decomposition(
    graph: &Graph,
    node_of_vertex: &[u32],
    assignment: &[u32],
    surface_owner: &[u32],
    k: usize,
) -> Decomposition {
    assert_eq!(assignment.len(), graph.nv());
    assert_eq!(node_of_vertex.len(), graph.nv());
    let mut ranks: Vec<RankPlan> = vec![RankPlan::default(); k];

    // Owned nodes. After a rank loss the live rank count shrinks; a stale
    // label must fail loudly here, not as an opaque slice-index panic.
    for v in 0..graph.nv() {
        let r = assignment[v] as usize;
        assert!(r < k, "vertex {v} assigned to rank {r}, but only {k} ranks are live");
        ranks[r].owned_nodes.push(node_of_vertex[v]);
    }

    // Ghosts and send lists: for every vertex v, every *distinct* remote
    // part among its neighbors receives one copy of v.
    // needs[(owner, needer)] -> nodes
    let mut seen: Vec<u32> = Vec::with_capacity(16);
    let mut sends: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); k]; k];
    for v in 0..graph.nv() as u32 {
        let pv = assignment[v as usize];
        seen.clear();
        for (u, _) in graph.neighbors(v) {
            let pu = assignment[u as usize];
            if pu != pv && !seen.contains(&pu) {
                seen.push(pu);
                sends[pv as usize][pu as usize].push(node_of_vertex[v as usize]);
            }
        }
    }
    for (owner, row) in sends.into_iter().enumerate() {
        for (needer, mut nodes) in row.into_iter().enumerate() {
            if nodes.is_empty() {
                continue;
            }
            nodes.sort_unstable();
            ranks[needer].ghost_nodes.extend_from_slice(&nodes);
            ranks[owner].send_halo.push((needer as u32, nodes));
        }
    }
    for plan in ranks.iter_mut() {
        plan.owned_nodes.sort_unstable();
        plan.ghost_nodes.sort_unstable();
        plan.send_halo.sort_by_key(|(r, _)| *r);
    }

    // Surface ownership.
    for (e, &owner) in surface_owner.iter().enumerate() {
        assert!((owner as usize) < k, "surface element {e} owned by dead rank {owner}");
        ranks[owner as usize].owned_surface.push(e as u32);
    }

    Decomposition { k, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_graph::{total_comm_volume, GraphBuilder};

    /// Path 0-1-2-3-4-5 split in thirds.
    fn setup() -> (Graph, Vec<u32>, Vec<u32>) {
        let mut b = GraphBuilder::new(6, 1);
        for v in 0..6u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..5u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let node_of_vertex: Vec<u32> = (0..6).collect();
        let asg = vec![0, 0, 1, 1, 2, 2];
        (g, node_of_vertex, asg)
    }

    #[test]
    fn owned_and_ghost_nodes() {
        let (g, nov, asg) = setup();
        let d = build_decomposition(&g, &nov, &asg, &[], 3);
        assert_eq!(d.ranks[0].owned_nodes, vec![0, 1]);
        assert_eq!(d.ranks[1].owned_nodes, vec![2, 3]);
        // Rank 1 needs node 1 (from rank 0) and node 4 (from rank 2).
        assert_eq!(d.ranks[1].ghost_nodes, vec![1, 4]);
        // Rank 0 sends node 1 to rank 1 only.
        assert_eq!(d.ranks[0].send_halo, vec![(1, vec![1])]);
    }

    #[test]
    fn halo_volume_equals_fe_comm() {
        let (g, nov, asg) = setup();
        let d = build_decomposition(&g, &nov, &asg, &[], 3);
        assert_eq!(d.total_halo_volume(), total_comm_volume(&g, &asg));
    }

    #[test]
    fn ghosts_are_exactly_the_remote_neighbors() {
        let (g, nov, asg) = setup();
        let d = build_decomposition(&g, &nov, &asg, &[], 3);
        for (r, plan) in d.ranks.iter().enumerate() {
            for &ghost in &plan.ghost_nodes {
                // Ghost is remote...
                assert_ne!(asg[ghost as usize] as usize, r);
                // ...and adjacent to an owned node.
                let adjacent = g.adj(ghost).iter().any(|&u| asg[u as usize] as usize == r);
                assert!(adjacent, "rank {r} ghost {ghost} has no owned neighbor");
            }
        }
    }

    #[test]
    fn surface_elements_distributed_by_owner() {
        let (g, nov, asg) = setup();
        let d = build_decomposition(&g, &nov, &asg, &[2, 0, 1, 1], 3);
        assert_eq!(d.ranks[0].owned_surface, vec![1]);
        assert_eq!(d.ranks[1].owned_surface, vec![2, 3]);
        assert_eq!(d.ranks[2].owned_surface, vec![0]);
    }

    #[test]
    fn single_rank_has_no_exchange() {
        let (g, nov, _) = setup();
        let d = build_decomposition(&g, &nov, &[0; 6], &[], 1);
        assert_eq!(d.total_halo_volume(), 0);
        assert!(d.ranks[0].ghost_nodes.is_empty());
        assert_eq!(d.ranks[0].owned_nodes.len(), 6);
    }
}
