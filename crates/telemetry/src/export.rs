//! Exporters: chrome://tracing JSON and the flat summary.

use crate::json::{validate, write_f64, write_str};
use crate::{AttrValue, EventKind, Registry, SpanEvent, HIST_BUCKETS};
use std::collections::HashMap;

fn write_attrs(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        match v {
            AttrValue::Int(x) => out.push_str(&x.to_string()),
            AttrValue::Float(x) => write_f64(out, *x),
            AttrValue::Str(x) => write_str(out, x),
        }
    }
    out.push('}');
}

/// Renders all completed events as a chrome://tracing "JSON object
/// format" document: complete (`"X"`) events for spans, instant (`"i"`)
/// events for markers, plus `thread_name` metadata naming each lane
/// `rank <n>`. Timestamps are microseconds (fractional; nanosecond
/// resolution survives).
pub(crate) fn chrome_trace(reg: &Registry) -> String {
    let events = reg.events.lock().unwrap();
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.lane, e.start_ns, e.id));

    let mut lanes: Vec<u32> = sorted.iter().map(|e| e.lane).collect();
    lanes.dedup();

    let mut out = String::with_capacity(256 + 128 * sorted.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    let lane_names = reg.lane_names.lock().unwrap();
    for lane in lanes {
        push_sep(&mut out);
        let label = lane_names.get(&lane).map_or_else(|| format!("rank {lane}"), |n| n.to_string());
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":"
        ));
        write_str(&mut out, &label);
        out.push_str("}}");
    }
    for e in sorted {
        push_sep(&mut out);
        let ts = e.start_ns as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"name\":",
            match e.kind {
                EventKind::Span => 'X',
                EventKind::Instant => 'i',
            },
            e.lane
        ));
        write_str(&mut out, e.name);
        out.push_str(&format!(",\"ts\":{ts:.3}"));
        if e.kind == EventKind::Span {
            out.push_str(&format!(",\"dur\":{:.3}", e.dur_ns as f64 / 1000.0));
        } else {
            // Thread-scoped instant marker.
            out.push_str(",\"s\":\"t\"");
        }
        if !e.attrs.is_empty() {
            out.push_str(",\"args\":");
            write_attrs(&mut out, &e.attrs);
        }
        out.push('}');
    }
    out.push_str("\n]}");
    debug_assert!(validate(&out).is_ok(), "exporter produced malformed JSON");
    out
}

/// Aggregate of all spans with one name.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Total nanoseconds minus time spent in child spans.
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Aggregate of one histogram.
#[derive(Debug, Clone)]
pub struct HistSummary {
    /// Histogram name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(lo, hi, count)`, covering
    /// `lo <= value <= hi`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Flat aggregation of a recorder's spans, counters, and histograms —
/// the `summary.json` schema.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-name span aggregates, sorted by descending total time.
    pub spans: Vec<SpanSummary>,
    /// Counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistSummary>,
}

impl Summary {
    /// The value of counter `name`, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// The aggregate of spans named `name`, if any completed.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The aggregate of histogram `name`, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes to the `summary.json` schema. Counter values are exact
    /// integers; durations are fractional microseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            write_str(&mut out, s.name);
            out.push_str(&format!(
                ",\"count\":{},\"total_us\":{:.3},\"self_us\":{:.3},\"max_us\":{:.3}}}",
                s.count,
                s.total_ns as f64 / 1000.0,
                s.self_ns as f64 / 1000.0,
                s.max_ns as f64 / 1000.0
            ));
        }
        out.push_str("],\n\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\n\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_str(&mut out, h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("}\n}");
        debug_assert!(validate(&out).is_ok(), "summary produced malformed JSON");
        out
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if !self.spans.is_empty() {
            s.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
                "span", "count", "total", "self", "max"
            ));
            for sp in &self.spans {
                s.push_str(&format!(
                    "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
                    sp.name,
                    sp.count,
                    fmt_dur(sp.total_ns),
                    fmt_dur(sp.self_ns),
                    fmt_dur(sp.max_ns)
                ));
            }
        }
        if !self.counters.is_empty() {
            s.push_str(&format!("{:<28} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                s.push_str(&format!("{name:<28} {v:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>8} {:>8}\n",
                "histogram", "count", "sum", "min", "max"
            ));
            for h in &self.histograms {
                s.push_str(&format!(
                    "{:<28} {:>8} {:>10} {:>8} {:>8}\n",
                    h.name, h.count, h.sum, h.min, h.max
                ));
            }
        }
        s
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Builds the [`Summary`] of everything recorded so far.
pub(crate) fn summarize(reg: &Registry) -> Summary {
    let events = reg.events.lock().unwrap();

    // Attribute each span's duration to its parent to compute self time.
    let mut child_dur: HashMap<u32, u64> = HashMap::new();
    for e in events.iter() {
        if e.kind == EventKind::Span {
            if let Some(p) = e.parent {
                *child_dur.entry(p).or_insert(0) += e.dur_ns;
            }
        }
    }
    let mut by_name: HashMap<&'static str, SpanSummary> = HashMap::new();
    for e in events.iter() {
        if e.kind != EventKind::Span {
            continue;
        }
        let sf = e.dur_ns.saturating_sub(child_dur.get(&e.id).copied().unwrap_or(0));
        let entry = by_name.entry(e.name).or_insert(SpanSummary {
            name: e.name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
        });
        entry.count += 1;
        entry.total_ns += e.dur_ns;
        entry.self_ns += sf;
        entry.max_ns = entry.max_ns.max(e.dur_ns);
    }
    drop(events);
    let mut spans: Vec<SpanSummary> = by_name.into_values().collect();
    spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));

    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(name, v)| (*name, v.load(std::sync::atomic::Ordering::Relaxed)))
        .collect();

    let histograms = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(name, h)| {
            let h = h.lock().unwrap();
            let buckets = (0..HIST_BUCKETS)
                .filter(|&b| h.buckets[b] > 0)
                .map(|b| {
                    let (lo, hi) = if b == 0 {
                        (0, 0)
                    } else {
                        (1u64 << (b - 1), if b == 64 { u64::MAX } else { (1u64 << b) - 1 })
                    };
                    (lo, hi, h.buckets[b])
                })
                .collect();
            HistSummary {
                name,
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
                buckets,
            }
        })
        .collect();

    Summary { spans, counters, histograms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    /// Pushes a synthetic completed span so timing assertions are exact.
    fn push_span(
        rec: &Recorder,
        name: &'static str,
        id: u32,
        parent: Option<u32>,
        lane: u32,
        start_ns: u64,
        dur_ns: u64,
    ) {
        let reg = rec.inner.as_ref().unwrap();
        reg.events.lock().unwrap().push(SpanEvent {
            kind: EventKind::Span,
            name,
            id,
            parent,
            lane,
            start_ns,
            dur_ns,
            attrs: vec![("nv", AttrValue::Int(42))],
        });
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lane_metadata() {
        let rec = Recorder::enabled();
        push_span(&rec, "halo", 0, None, 0, 1000, 500);
        push_span(&rec, "search", 1, None, 1, 2000, 700);
        rec.instant_at("migrate", 1, &[("moved", AttrValue::Int(3))]);
        let trace = rec.chrome_trace().unwrap();
        validate(&trace).unwrap_or_else(|e| panic!("{e}\n{trace}"));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"rank 0\""));
        assert!(trace.contains("\"rank 1\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ts\":1.000"));
        assert!(trace.contains("\"dur\":0.500"));
        assert!(trace.contains("\"nv\":42"));
    }

    #[test]
    fn named_lanes_override_the_rank_label() {
        let rec = Recorder::enabled();
        push_span(&rec, "work", 0, None, 0, 0, 100);
        push_span(&rec, "orchestrate", 1, None, 1, 0, 100);
        rec.name_lane(1, "driver");
        let trace = rec.chrome_trace().unwrap();
        validate(&trace).unwrap_or_else(|e| panic!("{e}\n{trace}"));
        assert!(trace.contains("\"rank 0\""));
        assert!(trace.contains("\"driver\""));
        assert!(!trace.contains("\"rank 1\""));
    }

    #[test]
    fn summary_self_time_excludes_children() {
        let rec = Recorder::enabled();
        // parent [0, 1000), child [100, 400) -> parent self = 700.
        push_span(&rec, "parent", 0, None, 0, 0, 1000);
        push_span(&rec, "child", 1, Some(0), 0, 100, 300);
        let s = rec.summary().unwrap();
        let p = s.span("parent").unwrap();
        assert_eq!(p.total_ns, 1000);
        assert_eq!(p.self_ns, 700);
        assert_eq!(p.max_ns, 1000);
        let c = s.span("child").unwrap();
        assert_eq!(c.self_ns, 300);
        // Spans sorted by total time, descending.
        assert_eq!(s.spans[0].name, "parent");
    }

    #[test]
    fn summary_json_and_table_are_well_formed() {
        let rec = Recorder::enabled();
        push_span(&rec, "phase", 0, None, 0, 0, 1500);
        rec.add("traffic.halo_units", 123);
        rec.record("msg", 7);
        rec.record("msg", 0);
        let s = rec.summary().unwrap();
        let j = s.to_json();
        validate(&j).unwrap_or_else(|e| panic!("{e}\n{j}"));
        assert!(j.contains("\"traffic.halo_units\":123"));
        assert!(j.contains("\"sum\":7"));
        let t = s.render();
        assert!(t.contains("phase"));
        assert!(t.contains("traffic.halo_units"));
        assert!(t.contains("msg"));
        assert_eq!(s.counter("traffic.halo_units"), Some(123));
        assert_eq!(s.counter("absent"), None);
        let h = s.histogram("msg").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![(0, 0, 1), (4, 7, 1)]);
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let rec = Recorder::enabled();
        let trace = rec.chrome_trace().unwrap();
        validate(&trace).unwrap();
        let s = rec.summary().unwrap();
        assert!(s.spans.is_empty());
        let j = s.to_json();
        validate(&j).unwrap();
        assert_eq!(s.render(), "");
    }

    #[test]
    fn durations_format_human_readable() {
        assert_eq!(fmt_dur(12), "12ns");
        assert_eq!(fmt_dur(1_500), "1.5us");
        assert_eq!(fmt_dur(2_500_000), "2.50ms");
        assert_eq!(fmt_dur(3_200_000_000), "3.20s");
    }
}
