//! Minimal JSON utilities: string escaping for the exporters and a
//! strict well-formedness checker used by tests (this crate takes no
//! dependencies, so it cannot lean on `serde_json`).

/// Appends `raw` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, raw: &str) {
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in a JSON-legal form (`NaN`/`Inf` become `null`, as
/// JSON has no representation for them).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` never prints a bare exponent sign or trailing dot, and
        // round-trips; integral values gain ".0" to stay unambiguous.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

/// Validates that `s` is one well-formed JSON value. Strict on structure
/// (balanced braces, comma placement, string escapes, number syntax);
/// returns a byte offset + message on the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            if p.pos == start {
                Err(p.err("expected digit"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_validation() {
        let mut s = String::new();
        write_str(&mut s, "a \"quoted\"\nline\t\\ \u{1} end");
        validate(&s).unwrap();
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn floats_are_json_legal() {
        for (v, want) in [(1.0, "1.0"), (0.5, "0.5"), (-3.0, "-3.0")] {
            let mut s = String::new();
            write_f64(&mut s, v);
            assert_eq!(s, want);
            validate(&s).unwrap();
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut tiny = String::new();
        write_f64(&mut tiny, 1e-7);
        validate(&tiny).unwrap();
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":null,"e":true}"#,
            " { \"x\" : [ 1 , 2 ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1.2.3",
            "{} {}",
            "{\"a\":1,}",
            "[1 2]",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }
}
