//! Zero-dependency tracing and metrics for the partitioning stack.
//!
//! The paper's argument is quantitative — communication volumes and phase
//! costs — so the library must be able to say *where* time and traffic go
//! inside a multilevel partition or a threaded time step, not just report
//! end-of-run aggregates. This crate provides the plumbing:
//!
//! * [`Recorder`] — the handle threaded through configuration structs.
//!   `Recorder::disabled()` (the `Default`) is a `None` inside; every
//!   event API checks that option and returns — the instrumented hot
//!   paths pay one predictable branch per event when telemetry is off.
//! * **Spans** — [`Recorder::span`] returns an RAII guard that records a
//!   named, wall-clock interval when dropped. Spans nest: a thread-local
//!   stack links each span to its parent, and each span lands on a *lane*
//!   (one per logical rank/thread, see [`Recorder::set_lane`]) so the
//!   chrome trace shows one row per rank.
//! * **Counters** — monotonic `u64` counters ([`Recorder::add`], or a
//!   pre-resolved [`Counter`] handle for hot loops).
//! * **Histograms** — power-of-two-bucket histograms for message-size
//!   style distributions ([`Recorder::record`]).
//! * **Exporters** ([`export`]) — `chrome://tracing` / Perfetto JSON with
//!   one lane per rank, and a flat machine-readable summary
//!   ([`export::Summary`]) with a pretty-table form.
//!
//! Everything is thread-safe; the crate deliberately has **no external
//! dependencies** so even the innermost crates can link it.
//!
//! ```
//! use cip_telemetry::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let _step = rec.span("step").attr("k", 4);
//!     let _halo = rec.span("halo"); // nested under "step"
//!     rec.add("traffic.halo_units", 17);
//!     rec.record("halo.msg_nodes", 17);
//! }
//! let summary = rec.summary().unwrap();
//! assert_eq!(summary.counter("traffic.halo_units"), Some(17));
//! let trace = rec.chrome_trace().unwrap();
//! assert!(trace.contains("\"ph\":\"X\""));
//! ```

pub mod export;
pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Distinguishes registries so thread-local lane/stack state never leaks
/// between two `Recorder::enabled()` instances (e.g. parallel tests).
static REGISTRY_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Lane assigned to this thread, per registry id.
    static LANES: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
    /// Stack of open spans on this thread: `(registry id, span id)`.
    static STACK: RefCell<Vec<(usize, u32)>> = const { RefCell::new(Vec::new()) };
}

/// A span/instant attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (counts, sizes, levels).
    Int(i64),
    /// Floating-point attribute (ratios, imbalances).
    Float(f64),
    /// Static string attribute (phase kind, algorithm name).
    Str(&'static str),
}

macro_rules! attr_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> Self {
                AttrValue::Int(v as i64)
            }
        }
    )*};
}
attr_from_int!(i64, i32, u64, u32, usize);

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Str(if v { "true" } else { "false" })
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

/// What kind of trace event a [`SpanEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// A completed interval (chrome `"X"` event).
    Span,
    /// A point-in-time marker (chrome `"i"` event).
    Instant,
}

/// One completed span (or instant marker), as stored in the registry.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub kind: EventKind,
    pub name: &'static str,
    /// Unique id within the registry (chrome trace does not need it, but
    /// the summary uses it to attribute child time to parents).
    pub id: u32,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u32>,
    /// Logical rank/thread row in the trace.
    pub lane: u32,
    /// Nanoseconds since the registry was created.
    pub start_ns: u64,
    /// Span duration (0 for instants).
    pub dur_ns: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b`
/// (1..=64) holds values in `[2^(b-1), 2^b)`.
pub(crate) const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucket histogram.
#[derive(Debug, Clone)]
pub(crate) struct Hist {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Hist {
    fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index of `v`: 0 for 0, else `floor(log2(v)) + 1`.
    pub(crate) fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// The shared state behind an enabled [`Recorder`].
pub(crate) struct Registry {
    id: usize,
    start: Instant,
    next_span: AtomicU32,
    next_lane: AtomicU32,
    pub(crate) events: Mutex<Vec<SpanEvent>>,
    pub(crate) counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, Arc<Mutex<Hist>>>>,
    /// Custom lane labels (e.g. "driver"); unnamed lanes render `rank <n>`.
    pub(crate) lane_names: Mutex<BTreeMap<u32, &'static str>>,
}

impl Registry {
    fn new() -> Self {
        Self {
            id: REGISTRY_IDS.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            next_span: AtomicU32::new(0),
            next_lane: AtomicU32::new(0),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            lane_names: Mutex::new(BTreeMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The lane of the current thread, assigning the next free one on
    /// first use.
    fn lane(self: &Arc<Self>) -> u32 {
        LANES.with(|l| {
            let mut l = l.borrow_mut();
            if let Some(&(_, lane)) = l.iter().find(|(id, _)| *id == self.id) {
                return lane;
            }
            let lane = self.next_lane.fetch_add(1, Ordering::Relaxed);
            l.push((self.id, lane));
            lane
        })
    }

    /// The innermost open span of the current thread, if any.
    fn parent(&self) -> Option<u32> {
        STACK.with(|s| s.borrow().iter().rev().find(|(id, _)| *id == self.id).map(|&(_, sp)| sp))
    }
}

/// The telemetry handle.
///
/// Cheap to clone (an `Option<Arc>`), `Send + Sync`, and **disabled by
/// default**: a disabled recorder's event methods are a branch and a
/// return. Thread one through your configuration struct and flip it to
/// [`Recorder::enabled`] only when a trace is wanted.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() { "Recorder(enabled)" } else { "Recorder(disabled)" })
    }
}

impl Recorder {
    /// The no-op recorder (the `Default`). All event calls reduce to a
    /// branch on a `None`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recorder that collects events into a fresh registry.
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Registry::new())) }
    }

    /// Whether events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Binds the current thread to lane `lane` (one lane per logical
    /// rank). Threads that never call this get the next free lane on
    /// their first event.
    pub fn set_lane(&self, lane: u32) {
        let Some(reg) = &self.inner else { return };
        reg.next_lane.fetch_max(lane + 1, Ordering::Relaxed);
        LANES.with(|l| {
            let mut l = l.borrow_mut();
            match l.iter_mut().find(|(id, _)| *id == reg.id) {
                Some(entry) => entry.1 = lane,
                None => l.push((reg.id, lane)),
            }
        });
    }

    /// Labels lane `lane` in the chrome trace (e.g. `"driver"` for the
    /// orchestrating thread). Unnamed lanes render as `rank <n>`.
    pub fn name_lane(&self, lane: u32, name: &'static str) {
        let Some(reg) = &self.inner else { return };
        reg.lane_names.lock().unwrap().insert(lane, name);
    }

    /// Opens a span on the current thread's lane. The returned guard
    /// records the interval when dropped; further spans opened on this
    /// thread before the drop become its children.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(reg) => Span::open(reg.clone(), name, reg.lane()),
        }
    }

    /// Opens a span on an explicit lane (without rebinding the thread).
    #[inline]
    pub fn span_at(&self, name: &'static str, lane: u32) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(reg) => {
                reg.next_lane.fetch_max(lane + 1, Ordering::Relaxed);
                Span::open(reg.clone(), name, lane)
            }
        }
    }

    /// Records a point-in-time marker on lane `lane`.
    pub fn instant_at(&self, name: &'static str, lane: u32, attrs: &[(&'static str, AttrValue)]) {
        let Some(reg) = &self.inner else { return };
        reg.next_lane.fetch_max(lane + 1, Ordering::Relaxed);
        let ev = SpanEvent {
            kind: EventKind::Instant,
            name,
            id: reg.next_span.fetch_add(1, Ordering::Relaxed),
            parent: None,
            lane,
            start_ns: reg.now_ns(),
            dur_ns: 0,
            attrs: attrs.to_vec(),
        };
        reg.events.lock().unwrap().push(ev);
    }

    /// Resolves a counter handle. Hot loops should resolve once and call
    /// [`Counter::add`] (a relaxed atomic add) per event.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            None => Counter { cell: None },
            Some(reg) => {
                let mut counters = reg.counters.lock().unwrap();
                let cell = counters.entry(name).or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter { cell: Some(cell.clone()) }
            }
        }
    }

    /// Adds `delta` to counter `name` (resolving it each call; prefer
    /// [`Recorder::counter`] in loops).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if self.inner.is_some() {
            self.counter(name).add(delta);
        }
    }

    /// The current value of counter `name` (0 if absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(reg) = &self.inner else { return 0 };
        let counters = reg.counters.lock().unwrap();
        counters.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Resolves a histogram handle for hot loops.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.inner {
            None => Histogram { cell: None },
            Some(reg) => {
                let mut hists = reg.histograms.lock().unwrap();
                let cell = hists.entry(name).or_insert_with(|| Arc::new(Mutex::new(Hist::new())));
                Histogram { cell: Some(cell.clone()) }
            }
        }
    }

    /// Records `value` into the power-of-two histogram `name`.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).record(value);
        }
    }

    /// Exports all completed spans as chrome://tracing JSON (load the
    /// string in `about:tracing` or Perfetto), one row (`tid`) per lane.
    /// `None` when disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner.as_ref().map(|reg| export::chrome_trace(reg))
    }

    /// Aggregates spans/counters/histograms into a flat [`export::Summary`].
    /// `None` when disabled.
    pub fn summary(&self) -> Option<export::Summary> {
        self.inner.as_ref().map(|reg| export::summarize(reg))
    }
}

/// RAII span guard; records the interval when dropped.
#[must_use = "a span records its interval when dropped; binding it to _ drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    reg: Arc<Registry>,
    name: &'static str,
    id: u32,
    parent: Option<u32>,
    lane: u32,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    fn open(reg: Arc<Registry>, name: &'static str, lane: u32) -> Span {
        let id = reg.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = reg.parent();
        STACK.with(|s| s.borrow_mut().push((reg.id, id)));
        let start_ns = reg.now_ns();
        Span {
            active: Some(ActiveSpan { reg, name, id, parent, lane, start_ns, attrs: Vec::new() }),
        }
    }

    /// Attaches an attribute (builder style, for use at the open site).
    #[inline]
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Attaches an attribute to an already-open span (for values only
    /// known once the work is done, e.g. a coarse vertex count).
    #[inline]
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = a.reg.now_ns().saturating_sub(a.start_ns);
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Normally the top of the stack; search from the end so an
            // out-of-LIFO drop cannot corrupt unrelated entries.
            if let Some(pos) = s.iter().rposition(|&(id, sp)| id == a.reg.id && sp == a.id) {
                s.remove(pos);
            }
        });
        let ev = SpanEvent {
            kind: EventKind::Span,
            name: a.name,
            id: a.id,
            parent: a.parent,
            lane: a.lane,
            start_ns: a.start_ns,
            dur_ns,
            attrs: a.attrs,
        };
        a.reg.events.lock().unwrap().push(ev);
    }
}

/// Pre-resolved counter handle: one relaxed atomic add per event.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Pre-resolved histogram handle.
#[derive(Clone)]
pub struct Histogram {
    cell: Option<Arc<Mutex<Hist>>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.cell {
            h.lock().unwrap().record(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let mut s = rec.span("noop").attr("x", 1);
            s.set_attr("y", 2.0);
        }
        rec.add("c", 5);
        rec.record("h", 9);
        rec.instant_at("i", 0, &[]);
        assert_eq!(rec.counter_value("c"), 0);
        assert!(rec.chrome_trace().is_none());
        assert!(rec.summary().is_none());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
        assert_eq!(format!("{:?}", Recorder::default()), "Recorder(disabled)");
        assert_eq!(format!("{:?}", Recorder::enabled()), "Recorder(enabled)");
    }

    #[test]
    fn spans_nest_via_thread_local_stack() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let reg = rec.inner.as_ref().unwrap();
        let events = reg.events.lock().unwrap();
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].parent, Some(events[1].id));
        assert_eq!(events[1].parent, None);
        assert!(events[1].dur_ns >= events[0].dur_ns);
    }

    #[test]
    fn sibling_recorders_do_not_share_state() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        let _sa = a.span("a");
        {
            let _sb = b.span("b");
        }
        let reg_b = b.inner.as_ref().unwrap();
        let events = reg_b.events.lock().unwrap();
        // b's span must not claim a's open span as parent.
        assert_eq!(events[0].parent, None);
    }

    #[test]
    fn lanes_are_per_thread_and_overridable() {
        let rec = Recorder::enabled();
        rec.set_lane(3);
        {
            let _s = rec.span("main");
        }
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            let _s = rec2.span("worker");
        })
        .join()
        .unwrap();
        let reg = rec.inner.as_ref().unwrap();
        let events = reg.events.lock().unwrap();
        let main = events.iter().find(|e| e.name == "main").unwrap();
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(main.lane, 3);
        // The worker thread auto-allocated a fresh lane above the override.
        assert_eq!(worker.lane, 4);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let rec = Recorder::enabled();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = rec.counter("hits");
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counter_value("hits"), 4000);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(1023), 10);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        let rec = Recorder::enabled();
        for v in [0u64, 1, 3, 3, 8] {
            rec.record("sizes", v);
        }
        let s = rec.summary().unwrap();
        let h = s.histograms.iter().find(|h| h.name == "sizes").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 8);
    }

    #[test]
    fn out_of_lifo_drop_keeps_stack_consistent() {
        let rec = Recorder::enabled();
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        drop(outer); // wrong order on purpose
        let sibling = rec.span("sibling");
        drop(sibling);
        drop(inner);
        let reg = rec.inner.as_ref().unwrap();
        let events = reg.events.lock().unwrap();
        assert_eq!(events.len(), 3);
        // The sibling's parent is the still-open "inner", not garbage.
        let sib = events.iter().find(|e| e.name == "sibling").unwrap();
        let inn = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(sib.parent, Some(inn.id));
    }

    /// The overhead contract: a disabled recorder's span open+drop is a
    /// branch, not a measurable cost. The bound here is deliberately loose
    /// (shared CI machines) — the criterion bench in `cip-bench` measures
    /// the real figure.
    #[test]
    fn disabled_span_costs_nanoseconds() {
        let rec = Recorder::disabled();
        let n = 1_000_000u64;
        let t = Instant::now();
        for i in 0..n {
            let _s = rec.span("noop").attr("i", i);
        }
        let per_event = t.elapsed().as_nanos() as f64 / n as f64;
        assert!(per_event < 1000.0, "disabled span cost {per_event:.1} ns/event");
    }
}
