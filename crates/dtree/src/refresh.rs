//! Incremental tree maintenance.
//!
//! §4.3 of the paper keeps the partition fixed between repartitionings and
//! re-induces the search tree every time step as the contact points move.
//! A full re-induction re-sorts and re-sweeps everything; but between
//! adjacent steps most points barely move, so most leaves stay pure.
//! [`refresh`] exploits that: it re-locates every point in the existing
//! tree, keeps the leaves that are still pure (just updating their counts
//! and tight bounds), and re-induces **only the subtrees of leaves that
//! became impure**. The result is a fully valid purity tree — the same
//! contract as [`crate::induce()`] — at a fraction of the work, and it
//! directly measures the paper's observation that trees degrade as the
//! simulation drifts away from the geometry they were built for
//! (`grown_nodes` tracks the degradation).

use crate::induce::{induce_recorded, DtreeConfig};
use crate::tree::{DecisionTree, DtNode};
use cip_geom::{Aabb, Point};
use cip_telemetry::Recorder;

/// Statistics of one refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshStats {
    /// Leaves that stayed pure (kept verbatim, counts updated).
    pub kept_leaves: usize,
    /// Leaves that became impure and were re-induced as subtrees.
    pub reinduced_leaves: usize,
    /// Points that now live in a re-induced subtree (the work actually
    /// redone; compare against the total to see the savings).
    pub reinduced_points: usize,
    /// Node-count growth relative to the incoming tree (the paper's
    /// tree-degradation effect: staircase subtrees accumulate as the
    /// points drift).
    pub grown_nodes: isize,
}

/// Refreshes a purity-stopped search tree for moved/changed points.
///
/// Returns a tree satisfying the same purity contract as a fresh
/// [`crate::induce()`] over `points`/`labels`, reusing every still-pure leaf of
/// `tree`.
///
/// ```
/// use cip_dtree::{induce, refresh, DtreeConfig};
/// use cip_geom::Point;
///
/// let pts = vec![Point::new([0.0, 0.0]), Point::new([10.0, 0.0])];
/// let labels = vec![0, 1];
/// let tree = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
///
/// // Points drift but stay on their own side of the decision
/// // hyperplane (x <= 0): nothing re-induces.
/// let moved = vec![Point::new([-1.0, 0.5]), Point::new([9.0, -0.5])];
/// let (fresh, stats) = refresh(&tree, &moved, &labels, 2, &DtreeConfig::search_tree());
/// assert_eq!(stats.reinduced_leaves, 0);
/// assert_eq!(fresh.locate(&moved[0]), 0);
/// assert_eq!(fresh.locate(&moved[1]), 1);
/// ```
///
/// # Panics
/// Panics if any label is `>= k`.
pub fn refresh<const D: usize>(
    tree: &DecisionTree<D>,
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
) -> (DecisionTree<D>, RefreshStats) {
    refresh_recorded(tree, points, labels, k, cfg, &Recorder::disabled())
}

/// [`refresh`] with a telemetry sink: emits a `dtree.refresh` span whose
/// attributes record how much work was actually redone (kept vs.
/// re-induced leaves, re-induced points). Subtree re-inductions nest
/// `dtree.induce` spans underneath it.
pub fn refresh_recorded<const D: usize>(
    tree: &DecisionTree<D>,
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
    rec: &Recorder,
) -> (DecisionTree<D>, RefreshStats) {
    assert_eq!(points.len(), labels.len(), "one label per point");
    assert!(labels.iter().all(|&l| (l as usize) < k), "label out of range");

    let mut span = rec.span("dtree.refresh").attr("n", points.len()).attr("k", k);

    // Assign every point to its arena leaf.
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); tree.num_nodes()];
    for (i, p) in points.iter().enumerate() {
        membership[locate_arena(tree, p) as usize].push(i as u32);
    }

    let mut stats =
        RefreshStats { kept_leaves: 0, reinduced_leaves: 0, reinduced_points: 0, grown_nodes: 0 };
    let mut nodes: Vec<DtNode<D>> = Vec::with_capacity(tree.num_nodes());
    rebuild(tree, 0, &membership, points, labels, k, cfg, &mut nodes, &mut stats, rec);
    stats.grown_nodes = nodes.len() as isize - tree.num_nodes() as isize;
    span.set_attr("kept_leaves", stats.kept_leaves);
    span.set_attr("reinduced_leaves", stats.reinduced_leaves);
    span.set_attr("reinduced_points", stats.reinduced_points);
    (DecisionTree::from_nodes(nodes), stats)
}

/// Locates the *arena index* of the leaf containing `p`.
fn locate_arena<const D: usize>(tree: &DecisionTree<D>, p: &Point<D>) -> u32 {
    let mut at = 0u32;
    loop {
        match &tree.nodes()[at as usize] {
            DtNode::Leaf { .. } => return at,
            DtNode::Internal { plane, left, right } => {
                at = match plane.point_side(p) {
                    cip_geom::Side::Left => *left,
                    _ => *right,
                };
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rebuild<const D: usize>(
    tree: &DecisionTree<D>,
    at: u32,
    membership: &[Vec<u32>],
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
    out: &mut Vec<DtNode<D>>,
    stats: &mut RefreshStats,
    rec: &Recorder,
) -> u32 {
    let slot = out.len() as u32;
    match &tree.nodes()[at as usize] {
        DtNode::Internal { plane, left, right } => {
            out.push(DtNode::Internal { plane: *plane, left: 0, right: 0 });
            let l = rebuild(tree, *left, membership, points, labels, k, cfg, out, stats, rec);
            let r = rebuild(tree, *right, membership, points, labels, k, cfg, out, stats, rec);
            if let DtNode::Internal { left: lf, right: rf, .. } = &mut out[slot as usize] {
                *lf = l;
                *rf = r;
            }
        }
        DtNode::Leaf { .. } => {
            let members = &membership[at as usize];
            let mut counts = vec![0u32; k];
            for &i in members {
                counts[labels[i as usize] as usize] += 1;
            }
            let distinct = counts.iter().filter(|&&c| c > 0).count();
            if distinct <= 1 {
                // Still pure (or empty): keep the leaf with fresh metadata.
                stats.kept_leaves += 1;
                let part = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, c)| *c)
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                let mut bounds = Aabb::empty();
                for &i in members {
                    bounds.grow(&points[i as usize]);
                }
                out.push(DtNode::Leaf {
                    part,
                    count: members.len() as u32,
                    pure: true,
                    others: Vec::new(),
                    bounds,
                });
            } else {
                // Impure: re-induce a subtree over just these points.
                stats.reinduced_leaves += 1;
                stats.reinduced_points += members.len();
                let sub_pts: Vec<Point<D>> = members.iter().map(|&i| points[i as usize]).collect();
                let sub_labels: Vec<u32> = members.iter().map(|&i| labels[i as usize]).collect();
                let sub = induce_recorded(&sub_pts, &sub_labels, k, cfg, rec);
                splice(sub.nodes(), 0, out);
            }
        }
    }
    slot
}

/// Copies a sub-arena into `out`, fixing up child indices.
fn splice<const D: usize>(sub: &[DtNode<D>], at: u32, out: &mut Vec<DtNode<D>>) -> u32 {
    let slot = out.len() as u32;
    match &sub[at as usize] {
        DtNode::Leaf { part, count, pure, others, bounds } => {
            out.push(DtNode::Leaf {
                part: *part,
                count: *count,
                pure: *pure,
                others: others.clone(),
                bounds: *bounds,
            });
        }
        DtNode::Internal { plane, left, right } => {
            out.push(DtNode::Internal { plane: *plane, left: 0, right: 0 });
            let l = splice(sub, *left, out);
            let r = splice(sub, *right, out);
            if let DtNode::Internal { left: lf, right: rf, .. } = &mut out[slot as usize] {
                *lf = l;
                *rf = r;
            }
        }
    }
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induce::induce;

    fn banded(offset: f64) -> (Vec<Point<2>>, Vec<u32>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for band in 0..3u32 {
            for i in 0..10 {
                pts.push(Point::new([i as f64 + offset, band as f64 * 10.0]));
                labels.push(band);
            }
        }
        (pts, labels)
    }

    #[test]
    fn refresh_of_unmoved_points_is_identity_shaped() {
        let (pts, labels) = banded(0.0);
        let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        let (fresh, stats) = refresh(&tree, &pts, &labels, 3, &DtreeConfig::search_tree());
        assert_eq!(stats.reinduced_leaves, 0);
        assert_eq!(stats.grown_nodes, 0);
        assert_eq!(fresh.num_nodes(), tree.num_nodes());
        for (p, &l) in pts.iter().zip(labels.iter()) {
            assert_eq!(fresh.locate(p), l);
        }
    }

    #[test]
    fn refresh_after_small_drift_stays_pure_and_valid() {
        let (pts, labels) = banded(0.0);
        let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        // Drift within the bands: leaves stay pure.
        let (moved, _) = banded(0.3);
        let (fresh, stats) = refresh(&tree, &moved, &labels, 3, &DtreeConfig::search_tree());
        assert_eq!(stats.reinduced_leaves, 0, "{stats:?}");
        for (p, &l) in moved.iter().zip(labels.iter()) {
            assert_eq!(fresh.locate(p), l);
        }
    }

    #[test]
    fn refresh_reinduces_where_points_cross_boundaries() {
        let (pts, labels) = banded(0.0);
        let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        // Move band 2 down into band 1's region: those leaves go impure.
        let mut moved = pts.clone();
        for (i, p) in moved.iter_mut().enumerate() {
            if labels[i] == 2 {
                p[1] -= 10.0; // band 2 lands on band 1
            }
        }
        let (fresh, stats) = refresh(&tree, &moved, &labels, 3, &DtreeConfig::search_tree());
        assert!(stats.reinduced_leaves > 0);
        // The refreshed tree must still satisfy the purity contract for
        // uniquely-positioned points.
        for (i, p) in moved.iter().enumerate() {
            let clash = moved.iter().zip(labels.iter()).any(|(q, &l)| q == p && l != labels[i]);
            if !clash {
                assert_eq!(fresh.locate(p), labels[i], "point {i}");
            }
        }
    }

    #[test]
    fn refresh_handles_point_count_changes() {
        let (pts, labels) = banded(0.0);
        let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        // Drop a third of the points and add some new ones.
        let mut new_pts: Vec<Point<2>> = pts.iter().step_by(2).copied().collect();
        let mut new_labels: Vec<u32> = labels.iter().step_by(2).copied().collect();
        new_pts.push(Point::new([50.0, 0.0]));
        new_labels.push(0);
        let (fresh, _) = refresh(&tree, &new_pts, &new_labels, 3, &DtreeConfig::search_tree());
        for (p, &l) in new_pts.iter().zip(new_labels.iter()) {
            assert_eq!(fresh.locate(p), l);
        }
    }

    #[test]
    fn empty_leaves_survive_refresh() {
        let (pts, labels) = banded(0.0);
        let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        // Remove band 0 entirely: its leaf goes empty but the tree remains
        // valid for the others.
        let keep: Vec<usize> = (0..pts.len()).filter(|&i| labels[i] != 0).collect();
        let new_pts: Vec<Point<2>> = keep.iter().map(|&i| pts[i]).collect();
        let new_labels: Vec<u32> = keep.iter().map(|&i| labels[i]).collect();
        let (fresh, stats) = refresh(&tree, &new_pts, &new_labels, 3, &DtreeConfig::search_tree());
        assert_eq!(stats.reinduced_leaves, 0);
        for (p, &l) in new_pts.iter().zip(new_labels.iter()) {
            assert_eq!(fresh.locate(p), l);
        }
        // Box queries never report the emptied band's label.
        let mut out = Vec::new();
        fresh.query_box(&Aabb::from_points(&new_pts), &mut out);
        assert!(!out.contains(&0), "emptied part must not be reported: {out:?}");
    }
}
