//! C4.5-style decision-tree induction over partitioned point sets.
//!
//! This crate implements §4.1 of the paper: given a `k`-way partitioning of
//! a set of 2D/3D points, build a small binary tree of axis-parallel
//! *decision hyperplanes* whose leaves contain points from a single
//! partition. The tree then serves as the **geometric descriptor** of every
//! subdomain during the global contact-search phase — each subdomain's
//! territory is the union of the leaf boxes labeled with it, which
//! approximates the subdomain's actual shape far more tightly than a
//! bounding box and thus eliminates most false-positive element shipments.
//!
//! * [`induce()`] — tree induction with the paper's modified gini splitting
//!   index (Equation 1), the incremental `O(1)`-per-position sweep over
//!   pre-sorted dimensions the paper describes, and the two stopping rules:
//!   purity (for search trees) and `max_p`/`max_i` (for the DT-friendly
//!   partition-correction tree of §4.2),
//! * [`tree`] — the tree structure and its queries: point location, box
//!   traversal (the global-search filter), and leaf-region enumeration,
//! * a **margin-aware** splitting-index variant implementing the paper's
//!   §6 suggestion that hyperplanes passing through sparsely populated
//!   space should be preferred.
//!
//! Induction is parallel (rayon) across independent subtrees. Between
//! adjacent time steps, [`refresh()`] maintains an existing tree
//! incrementally — only the subtrees whose leaves went impure are
//! re-induced — which is the efficient form of the paper's §4.3
//! "re-induce the tree every step" update policy.

pub mod export;
pub mod induce;
mod proptests;
pub mod refresh;
pub mod tree;

pub use export::TreeStats;
pub use induce::{induce, induce_recorded, DtreeConfig, Splitter, StopRule};
pub use refresh::{refresh, refresh_recorded, RefreshStats};
pub use tree::{DecisionTree, LeafInfo};
